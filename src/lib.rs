//! # The Sharing Architecture — reproduction facade
//!
//! This crate re-exports the whole Sharing Architecture reproduction
//! (Zhou & Wentzlaff, ASPLOS 2014) behind one dependency:
//!
//! * [`isa`] — generic RISC-like ISA and the reference interpreter;
//! * [`trace`] — synthetic workloads standing in for GEM5 traces of
//!   SPEC CINT2006 / Apache / PARSEC;
//! * [`noc`] — the switched 2D on-chip networks (scalar operand network,
//!   load/store sorting, global rename);
//! * [`cache`] — L1s, the sea of 64 KB L2 banks, and directory coherence;
//! * [`core`] — SSim, the cycle-level Virtual-Core simulator (the paper's
//!   primary contribution);
//! * [`area`] — the 45 nm area model behind the paper's Figures 10/11;
//! * [`hv`] — the hypervisor-level chip allocator (Slice contiguity,
//!   fragmentation, reconfiguration costs);
//! * [`market`] — the IaaS economic model: utility functions, sub-core
//!   markets, and the market-efficiency studies;
//! * [`dc`] — the discrete-event datacenter simulator: seeded tenant
//!   arrivals, epoch market clearing, placement, reconfiguration costs
//!   and revenue metering (see `examples/dc_scenario.rs`);
//! * [`server`] — ssimd, the simulation-as-a-service daemon: a TCP job
//!   server with a bounded queue, worker pool, and result cache (see
//!   `examples/serve_jobs.rs`);
//! * [`obs`] — zero-dependency tracing and metrics: wall-clock and
//!   logical-cycle spans, global counters/gauges, a Chrome `trace_event`
//!   exporter (Perfetto-loadable) and Prometheus text exposition (see
//!   `examples/trace_a_run.rs` and DESIGN.md §observability).
//!
//! # Quick start
//!
//! ```
//! use sharing_arch::core::{RunOptions, SimConfig, Simulator};
//! use sharing_arch::trace::{Benchmark, TraceSpec};
//!
//! // A 2-Slice Virtual Core with 128 KB of L2 (two 64 KB banks), running
//! // a synthetic gcc-like workload.
//! let config = SimConfig::builder().slices(2).l2_banks(2).build()?;
//! let trace = Benchmark::Gcc.generate(&TraceSpec::new(5_000, 42));
//! let result = Simulator::new(config)?.run_with(&trace, RunOptions::new()).result;
//! println!("IPC = {:.2}", result.ipc());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use sharing_area as area;
pub use sharing_cache as cache;
pub use sharing_core as core;
pub use sharing_dc as dc;
pub use sharing_hv as hv;
pub use sharing_isa as isa;
pub use sharing_json as json;
pub use sharing_market as market;
pub use sharing_noc as noc;
pub use sharing_obs as obs;
pub use sharing_server as server;
pub use sharing_trace as trace;
