#!/usr/bin/env bash
# Tier-1 gate for the sharing-arch workspace. Everything runs offline:
# the workspace has zero external dependencies by design (see DESIGN.md §5).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings denied; tier-1.5 gate) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace --offline

echo "== cargo test =="
cargo test -q --workspace --offline

echo "== examples (build all, smoke-run one per crate) =="
cargo build --release --offline --examples
# One representative example per crate layer, so examples can't silently
# rot. Each prints to stdout; CI only cares that it exits 0.
EXAMPLES=(
  handwritten_kernel # isa: hand-assembled kernel on the reference interpreter
  quickstart         # core + trace: SSim on a synthetic benchmark
  pipeline_view      # noc + cache: per-stage pipeline statistics
  autotune           # area: area-constrained configuration search
  datacenter_mix     # hv: chip allocator under a tenant mix
  iaas_market        # market: the §5.6 sub-core market end to end
  spot_prices        # market + json: spot-price series serialization
  dc_scenario        # dc: discrete-event datacenter, sharing vs fixed
  serve_jobs         # server: ssimd daemon end to end
  trace_a_run        # obs: two-clock tracing + Prometheus counters
)
for ex in "${EXAMPLES[@]}"; do
  echo "-- example: $ex"
  cargo run --release --offline --example "$ex" >/dev/null
done

echo "== trace smoke: ssim --trace-out emits a valid Chrome trace =="
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP"' EXIT
cargo run --release --offline -p sharing-ssim --bin ssim -- \
  run --benchmark gcc --len 2000 --trace-out "$TRACE_TMP/run.trace.json" >/dev/null
cargo run --release --offline --example validate_trace -- "$TRACE_TMP/run.trace.json"

echo "== parallel sweep smoke: --jobs 4 byte-identical to --jobs 1 =="
SSIM="target/release/ssim"
"$SSIM" sweep --benchmark gcc --len 2000 --seed 9 --jobs 1 > "$TRACE_TMP/sweep_j1.txt"
"$SSIM" sweep --benchmark gcc --len 2000 --seed 9 --jobs 4 > "$TRACE_TMP/sweep_j4.txt"
diff "$TRACE_TMP/sweep_j1.txt" "$TRACE_TMP/sweep_j4.txt"

echo "== profile smoke: cycle attribution conserves and is byte-identical =="
"$SSIM" profile --benchmark gcc --slices 2 --len 2000 --seed 9 > "$TRACE_TMP/prof_a.txt"
"$SSIM" profile --benchmark gcc --slices 2 --len 2000 --seed 9 > "$TRACE_TMP/prof_b.txt"
diff "$TRACE_TMP/prof_a.txt" "$TRACE_TMP/prof_b.txt"
grep -q 'conserved true' "$TRACE_TMP/prof_a.txt"

echo "== engine smoke: event-driven byte-identical to legacy =="
"$SSIM" run --benchmark gcc --len 2000 --seed 9 --json \
  --engine legacy > "$TRACE_TMP/run_legacy.json"
"$SSIM" run --benchmark gcc --len 2000 --seed 9 --json \
  --engine event > "$TRACE_TMP/run_event.json"
diff "$TRACE_TMP/run_legacy.json" "$TRACE_TMP/run_event.json"

echo "== sharded smoke: 4 worker shards byte-identical to the event engine =="
# The sharded engine's worker count must be unobservable (DESIGN.md §14):
# a single-trace run and a 4-thread PARSEC VM, both at --threads 4, must
# match the event engine's bytes exactly.
"$SSIM" run --benchmark gcc --len 2000 --seed 9 --json \
  --engine sharded --threads 4 > "$TRACE_TMP/run_sharded.json"
diff "$TRACE_TMP/run_event.json" "$TRACE_TMP/run_sharded.json"
"$SSIM" run --benchmark dedup --len 2000 --seed 9 --json \
  --engine event > "$TRACE_TMP/vm_event.json"
"$SSIM" run --benchmark dedup --len 2000 --seed 9 --json \
  --engine sharded --threads 4 > "$TRACE_TMP/vm_sharded.json"
diff "$TRACE_TMP/vm_event.json" "$TRACE_TMP/vm_sharded.json"

echo "== perf guard: sweep throughput must beat the 1.9M cycles/sec seed =="
# A short-trace suite sweep (all 15 benchmarks x 72 shapes). The seed
# repo measured 1.9M simulated cycles/sec on the standard sweep; the
# event-driven engine must never regress below that floor. If the
# single-worker sharded VM path also clears the seed floor — i.e. the
# barrier/fork/replay machinery is not the bottleneck — hold the event
# engine to the stricter 2.5M floor it has delivered since the sharded
# engine landed.
cargo run --release --offline -p sharing-market --example bench_sweep -- \
  --len 10000 --out "$TRACE_TMP/sweep_perf.json"
CPS="$(grep -o '"cycles_per_sec": *[0-9.e+-]*' "$TRACE_TMP/sweep_perf.json" \
  | head -n1 | sed 's/.*: *//')"
VM_CPS="$(grep -o '"vm_cycles_per_sec_single": *[0-9.e+-]*' "$TRACE_TMP/sweep_perf.json" \
  | head -n1 | sed 's/.*: *//')"
awk -v cps="$CPS" -v vm_cps="$VM_CPS" 'BEGIN {
  floor = 1900000
  if (vm_cps + 0 >= 1900000) floor = 2500000
  if (cps + 0 < floor) {
    printf "perf guard FAILED: %.0f cycles/sec < %.1fM/s floor\n", cps, floor / 1e6
    exit 1
  }
  printf "perf guard ok: %.2fM cycles/sec (floor %.1fM, sharded 1-worker %.2fM)\n", \
    cps / 1e6, floor / 1e6, vm_cps / 1e6
}'

echo "== multi-node smoke: 2 workers + 1 coordinator, byte-identical sweep =="
"$SSIM" serve --addr 127.0.0.1:42115 --workers 2 &
W1=$!
"$SSIM" serve --addr 127.0.0.1:42116 --workers 2 &
W2=$!
COORD=""
HTTP_DAEMON=""
cleanup_daemons() {
  kill "$W1" "$W2" ${COORD:+"$COORD"} ${HTTP_DAEMON:+"$HTTP_DAEMON"} 2>/dev/null || true
  rm -rf "$TRACE_TMP"
}
trap cleanup_daemons EXIT
# The coordinator registers its workers at startup, so they go first.
for port in 42115 42116; do
  for _ in $(seq 1 50); do
    "$SSIM" submit --addr "127.0.0.1:$port" --ping >/dev/null 2>&1 && break
    sleep 0.2
  done
done
"$SSIM" serve --addr 127.0.0.1:42117 --workers 2 \
  --worker 127.0.0.1:42115 --worker 127.0.0.1:42116 \
  --trace-out "$TRACE_TMP/fleet.trace.jsonl" &
COORD=$!
for _ in $(seq 1 50); do
  "$SSIM" submit --addr 127.0.0.1:42117 --ping >/dev/null 2>&1 && break
  sleep 0.2
done
"$SSIM" submit --addr 127.0.0.1:42117 --hello
# The same sweep in-process and through the coordinator must agree on
# every byte of the table (the daemon run appends a provenance line).
"$SSIM" sweep --benchmark gcc --len 2000 --seed 9 > "$TRACE_TMP/local.txt"
"$SSIM" sweep --benchmark gcc --len 2000 --seed 9 \
  --daemon 127.0.0.1:42117 > "$TRACE_TMP/fanout.txt"
diff "$TRACE_TMP/local.txt" <(grep -v '^served by' "$TRACE_TMP/fanout.txt")
"$SSIM" submit --addr 127.0.0.1:42117 --metrics | grep -q '^ssimd_dispatched_total 72'
"$SSIM" submit --addr 127.0.0.1:42117 --metrics | grep -q '^ssimd_workers_healthy 2'
# One coordinator scrape federates every worker's exposition under an
# instance label; the coordinator's own samples stay bare (greps above).
"$SSIM" submit --addr 127.0.0.1:42117 --metrics > "$TRACE_TMP/fed.txt"
grep -q 'instance="worker:0"' "$TRACE_TMP/fed.txt"
grep -q 'instance="worker:1"' "$TRACE_TMP/fed.txt"
grep -q '^ssimd_build_info{' "$TRACE_TMP/fed.txt"
# A traced job streams its spans into the coordinator's .jsonl sink:
# dispatch spans (track 1000+) and relayed worker spans (track 2000+)
# merged under the one trace id.
"$SSIM" submit --addr 127.0.0.1:42117 --benchmark gcc --len 2000 --seed 7 \
  --trace 42 >/dev/null
"$SSIM" submit --addr 127.0.0.1:42117 --shutdown >/dev/null
"$SSIM" submit --addr 127.0.0.1:42115 --shutdown >/dev/null
"$SSIM" submit --addr 127.0.0.1:42116 --shutdown >/dev/null
wait "$W1" "$W2" "$COORD"
grep -q '"trace":42' "$TRACE_TMP/fleet.trace.jsonl"
grep -q '"tid":200[01]' "$TRACE_TMP/fleet.trace.jsonl"
"$SSIM" trace-pack "$TRACE_TMP/fleet.trace.jsonl" "$TRACE_TMP/fleet.trace.json"
cargo run --release --offline --example validate_trace -- "$TRACE_TMP/fleet.trace.json"

echo "== chaos smoke: fixed-seed fault plan, replayed schedule and output =="
# Two invocations of the same seeded plan (partition + sigkill + conn
# drops over a 2-worker fleet) must inject the identical fault schedule
# and print the identical report — replayable chaos, not noise.
"$SSIM" chaos --seed 2014 --len 2000 \
  --schedule-out "$TRACE_TMP/sched_a.txt" > "$TRACE_TMP/chaos_a.txt"
"$SSIM" chaos --seed 2014 --len 2000 \
  --schedule-out "$TRACE_TMP/sched_b.txt" > "$TRACE_TMP/chaos_b.txt"
diff "$TRACE_TMP/sched_a.txt" "$TRACE_TMP/sched_b.txt"
# The report names its schedule file; everything else must match.
diff <(grep -v '^chaos: wrote schedule' "$TRACE_TMP/chaos_a.txt") \
     <(grep -v '^chaos: wrote schedule' "$TRACE_TMP/chaos_b.txt")
test -s "$TRACE_TMP/sched_a.txt"
grep -q '^chaos: all invariants held' "$TRACE_TMP/chaos_a.txt"

echo "== http smoke: serve --http + --pidfile, jobs over HTTP, SIGTERM drain =="
PIDFILE="$TRACE_TMP/ssimd.pid"
URL="http://127.0.0.1:42119"
"$SSIM" serve --addr 127.0.0.1:42118 --http 127.0.0.1:42119 --workers 2 \
  --pidfile "$PIDFILE" &
HTTP_DAEMON=$!
for _ in $(seq 1 50); do
  "$SSIM" submit --url "$URL" --ping >/dev/null 2>&1 && break
  sleep 0.2
done
test -f "$PIDFILE"
# Prometheus text with at least one histogram family, a job end to end
# over POST /jobs + polling, and the JSON status snapshot.
"$SSIM" submit --url "$URL" --benchmark gcc --len 2000 | grep -q '"ok": true'
"$SSIM" submit --url "$URL" --metrics | grep -q '_bucket{le="+Inf"}'
"$SSIM" submit --url "$URL" --stats | grep -q '"draining": false'
# SIGTERM must drain gracefully and remove the pidfile.
kill -TERM "$HTTP_DAEMON"
wait "$HTTP_DAEMON"
test ! -f "$PIDFILE"
HTTP_DAEMON=""

echo "ci: all green"
