#!/usr/bin/env bash
# Tier-1 gate for the sharing-arch workspace. Everything runs offline:
# the workspace has zero external dependencies by design (see DESIGN.md §5).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings denied) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace --offline

echo "== cargo test =="
cargo test -q --workspace --offline

echo "ci: all green"
