#!/usr/bin/env bash
# Tier-1 gate for the sharing-arch workspace. Everything runs offline:
# the workspace has zero external dependencies by design (see DESIGN.md §5).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings denied; tier-1.5 gate) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace --offline

echo "== cargo test =="
cargo test -q --workspace --offline

echo "== examples (build all, smoke-run one per crate) =="
cargo build --release --offline --examples
# One representative example per crate layer, so examples can't silently
# rot. Each prints to stdout; CI only cares that it exits 0.
EXAMPLES=(
  handwritten_kernel # isa: hand-assembled kernel on the reference interpreter
  quickstart         # core + trace: SSim on a synthetic benchmark
  pipeline_view      # noc + cache: per-stage pipeline statistics
  autotune           # area: area-constrained configuration search
  datacenter_mix     # hv: chip allocator under a tenant mix
  iaas_market        # market: the §5.6 sub-core market end to end
  spot_prices        # market + json: spot-price series serialization
  dc_scenario        # dc: discrete-event datacenter, sharing vs fixed
  serve_jobs         # server: ssimd daemon end to end
  trace_a_run        # obs: two-clock tracing + Prometheus counters
)
for ex in "${EXAMPLES[@]}"; do
  echo "-- example: $ex"
  cargo run --release --offline --example "$ex" >/dev/null
done

echo "== trace smoke: ssim --trace-out emits a valid Chrome trace =="
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP"' EXIT
cargo run --release --offline -p sharing-ssim --bin ssim -- \
  run --benchmark gcc --len 2000 --trace-out "$TRACE_TMP/run.trace.json" >/dev/null
cargo run --release --offline --example validate_trace -- "$TRACE_TMP/run.trace.json"

echo "ci: all green"
