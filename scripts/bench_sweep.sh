#!/usr/bin/env bash
# Times a cold (sequential and parallel) and warm full-suite sweep and
# writes BENCH_sweep.json, seeding the perf trajectory for the sharing
# architecture's Equation 3 grid. Everything runs offline.
#
# Usage: scripts/bench_sweep.sh [OUT.json]
# Knobs: SSIM_BENCH_LEN (trace length, default: the standard 60000)
#        SSIM_BENCH_JOBS (workers, default: all cores)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_sweep.json}"
LEN="${SSIM_BENCH_LEN:-60000}"
JOBS="${SSIM_BENCH_JOBS:-$(nproc)}"

cargo build --release --offline -p sharing-market --example bench_sweep
cargo run --release --offline -p sharing-market --example bench_sweep -- \
  --len "$LEN" --jobs "$JOBS" --out "$OUT"
cat "$OUT"
