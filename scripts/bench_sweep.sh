#!/usr/bin/env bash
# Times a cold (sequential and parallel) and warm full-suite sweep and
# writes BENCH_sweep.json, seeding the perf trajectory for the sharing
# architecture's Equation 3 grid. Everything runs offline.
#
# Each run also appends one line to BENCH_history.jsonl (git SHA,
# timestamp, trace length, jobs, cycles/sec) so the perf trajectory
# across commits is greppable instead of being overwritten in place.
#
# Usage: scripts/bench_sweep.sh [OUT.json]
# Knobs: SSIM_BENCH_LEN (trace length, default: the standard 60000)
#        SSIM_BENCH_JOBS (workers, default: all cores)
#        SSIM_BENCH_HISTORY (history file, default BENCH_history.jsonl)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_sweep.json}"
LEN="${SSIM_BENCH_LEN:-60000}"
JOBS="${SSIM_BENCH_JOBS:-$(nproc)}"
HISTORY="${SSIM_BENCH_HISTORY:-BENCH_history.jsonl}"

cargo build --release --offline -p sharing-market --example bench_sweep
cargo run --release --offline -p sharing-market --example bench_sweep -- \
  --len "$LEN" --jobs "$JOBS" --out "$OUT"
cat "$OUT"

# One compact history line per run. The report is pretty-printed JSON
# with one "key": value pair per line, so grab scalars by key.
field() { grep -o "\"$1\": *[0-9.e+-]*" "$OUT" | head -n1 | sed 's/.*: *//'; }
SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
STAMP="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
printf '{"sha":"%s","utc":"%s","trace_len":%s,"jobs":%s,"cold_parallel_secs":%s,"cycles_per_sec_cold_parallel":%s,"cycles_per_sec_cold_sequential":%s,"event_cycles_per_sec":%s,"event_speedup_vs_legacy":%s,"sharded_vm_cycles_per_sec":%s,"sharded_speedup_vs_single_worker":%s}\n' \
  "$SHA" "$STAMP" \
  "$(field trace_len)" "$(field jobs)" \
  "$(field cold_parallel_secs)" \
  "$(field cycles_per_sec_cold_parallel)" \
  "$(field cycles_per_sec_cold_sequential)" \
  "$(field cycles_per_sec)" \
  "$(field speedup_vs_legacy)" \
  "$(field vm_cycles_per_sec_sharded)" \
  "$(field speedup_vs_single_worker)" \
  >> "$HISTORY"
echo "bench: appended $SHA to $HISTORY"
