//! Watch the Sharing Architecture's pipeline at work.
//!
//! Renders a gem5-pipeview-style timeline for the same instruction window
//! on a 1-Slice and a 4-Slice VCore. Side by side, the architecture's
//! mechanics are visible: interleaved fetch spreads the window across
//! Slices, remote operands stretch dispatch→issue (`.`), loads sort to a
//! home Slice and return late (`=`), and commits stay in order (`c`).
//!
//! ```text
//! cargo run --release --example pipeline_view
//! ```

use sharing_arch::core::{timeline, RunOptions, SimConfig, Simulator};
use sharing_arch::trace::{Benchmark, TraceSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = Benchmark::Gcc.generate(&TraceSpec::new(400, 7));
    let window = 180..204; // a steady-state stretch past warmup

    for slices in [1usize, 4] {
        let cfg = SimConfig::with_shape(slices, 2)?;
        let out = Simulator::new(cfg)?.run_with(&trace, RunOptions::new().record_timings());
        let (result, timings) = (out.result, out.timings.expect("timings requested"));
        println!(
            "===== {slices}-Slice VCore (IPC {:.2}) — legend: f fetch, d dispatch, \
             i issue, e exec, c commit =====",
            result.ipc()
        );
        println!(
            "{}",
            timeline::render(&timings[window.clone()], &trace.insts()[window.clone()], 96)
        );
    }
    println!(
        "Note how the 4-Slice chart fetches four pairs per cycle (the `f` column \
         stacks) and spreads work across slice ids, while dependent instructions \
         pay operand-network hops between Slices."
    );
    Ok(())
}
