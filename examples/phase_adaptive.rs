//! Phase-adaptive Virtual Cores: resize the core as the program's phases
//! change (paper §5.10).
//!
//! gcc is split into ten phases; a meta-program (the paper's suggested
//! client-side agent) schedules each phase's VCore shape to maximize
//! `perf³/area` — the objective of a customer who pays per Slice and per
//! bank — accounting for the 10 000-cycle cache / 500-cycle Slice
//! reconfiguration costs. The schedule is then *executed* with
//! [`run_phased_with`] and compared against the best single static shape.
//!
//! ```text
//! cargo run --release --example phase_adaptive
//! ```

use sharing_arch::area::AreaModel;
use sharing_arch::core::{run_phased_with, EngineKind, ReconfigCosts, SimConfig, VCoreShape};
use sharing_arch::market::phases::run_study_with;
use sharing_arch::trace::{gcc_phase_trace, TraceSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Phases long enough that a 10 000-cycle cache reconfiguration can pay
    // for itself, as in the paper's full-length phases.
    let spec = TraceSpec::new(60_000, 7);
    let area = AreaModel::paper();
    let candidates: Vec<VCoreShape> = [
        (1, 1),
        (1, 4),
        (1, 16),
        (2, 2),
        (2, 8),
        (2, 16),
        (3, 8),
        (4, 16),
    ]
    .into_iter()
    .map(|(s, b)| VCoreShape::new(s, b))
    .collect::<Result<_, _>>()?;

    // The meta-program: profile each phase on the candidate shapes and
    // solve for the reconfiguration-aware optimal schedule.
    println!(
        "profiling 10 gcc phases on {} candidate shapes…",
        candidates.len()
    );
    let study = run_study_with(&spec, 10, &candidates, ReconfigCosts::paper(), &area);
    let row = study
        .rows
        .iter()
        .find(|r| r.k == 3)
        .expect("k=3 row exists");

    println!("\nchosen schedule (perf³/area, reconfiguration-aware):");
    for (phase, shape) in row.per_phase.iter().enumerate() {
        println!("  phase {:>2}: {shape}", phase + 1);
    }
    println!(
        "static best single shape: {}   dynamic metric gain: {:+.1}%",
        row.static_best,
        100.0 * row.gain
    );

    // Execute both schedules end-to-end through the simulator.
    let dynamic_schedule: Vec<_> = (1..=10)
        .map(|p| {
            let shape = row.per_phase[p - 1];
            let cfg = SimConfig::with_shape(shape.slices, shape.l2_banks)
                .expect("schedule shapes are valid");
            (gcc_phase_trace(p, &spec), cfg)
        })
        .collect();
    let static_schedule: Vec<_> = (1..=10)
        .map(|p| {
            let cfg = SimConfig::with_shape(row.static_best.slices, row.static_best.l2_banks)
                .expect("static shape is valid");
            (gcc_phase_trace(p, &spec), cfg)
        })
        .collect();
    let dynamic = run_phased_with(
        &dynamic_schedule,
        ReconfigCosts::paper(),
        EngineKind::default(),
    )?;
    let fixed = run_phased_with(
        &static_schedule,
        ReconfigCosts::paper(),
        EngineKind::default(),
    )?;

    let avg_area = |shapes: &[VCoreShape]| -> f64 {
        shapes
            .iter()
            .map(|s| area.vcore_mm2(s.slices, s.l2_banks))
            .sum::<f64>()
            / shapes.len() as f64
    };
    let dyn_area = avg_area(&row.per_phase);
    let static_area = area.vcore_mm2(row.static_best.slices, row.static_best.l2_banks);

    println!(
        "\nexecuted: dynamic {} cycles on {:.2} mm² (average)  |  static {} cycles on {:.2} mm²",
        dynamic.cycles, dyn_area, fixed.cycles, static_area
    );
    println!(
        "the dynamic schedule trades {:+.1}% cycles for {:+.1}% silicon — the per-area \
         efficiency win the paper's Table 7 reports (gains up to 19.4%)",
        100.0 * (dynamic.cycles as f64 / fixed.cycles as f64 - 1.0),
        100.0 * (dyn_area / static_area - 1.0),
    );
    Ok(())
}
