//! Sub-core spot pricing over time (paper §1/§2).
//!
//! The Sharing Architecture lets a provider "price sub-core resources
//! dynamically and based on instantaneous market demand". This example
//! simulates a chip's spot market for a few dozen periods: customers with
//! measured performance surfaces arrive and depart, each period's per-Slice
//! and per-bank prices come from clearing an auction over the current
//! population, and the price series is printed as a sparkline.
//!
//! ```text
//! cargo run --release --example spot_prices
//! ```

use sharing_arch::market::spot::{price_summary, DemandProcess, SpotMarket};
use sharing_arch::market::{ExperimentSpec, SuiteSurfaces};
use sharing_arch::trace::Benchmark;

fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(f64::MIN, f64::max).max(1e-9);
    values
        .iter()
        .map(|&v| BARS[((v / max) * 7.0).round() as usize])
        .collect()
}

fn main() {
    println!("measuring customer workload surfaces…");
    let workloads = [Benchmark::H264ref, Benchmark::Omnetpp, Benchmark::Hmmer];
    let suite = SuiteSurfaces::build_subset(ExperimentSpec::quick(), &workloads);
    let catalog: Vec<(String, _)> = workloads
        .iter()
        .map(|&b| (b.name().to_string(), suite.surface(b).clone()))
        .collect();

    let market = SpotMarket::new(48.0, 48.0, catalog, DemandProcess::default());
    let ticks = market.run(48, 2014);

    println!("\nperiod-by-period market (48 Slices + 48 banks on offer):\n");
    let slice_prices: Vec<f64> = ticks.iter().map(|t| t.slice_price).collect();
    let bank_prices: Vec<f64> = ticks.iter().map(|t| t.bank_price).collect();
    let tenants: Vec<f64> = ticks.iter().map(|t| t.tenants as f64).collect();
    println!("tenants     {}", sparkline(&tenants));
    println!("slice price {}", sparkline(&slice_prices));
    println!("bank price  {}", sparkline(&bank_prices));

    let (min, mean, max) = price_summary(&ticks);
    println!("\nslice price (busy periods): min {min:.3}  mean {mean:.3}  max {max:.3}");
    let peak = ticks
        .iter()
        .max_by(|a, b| a.slice_price.total_cmp(&b.slice_price))
        .expect("non-empty series");
    println!(
        "peak period {}: {} tenants pushed the slice price to {:.3} \
         (equal-area baseline would charge a flat 2.0)",
        peak.period, peak.tenants, peak.slice_price
    );
    println!(
        "\nThe provider resells the same silicon at demand-driven prices — the \
         market §2.3 proposes — because VCores can be re-synthesized each period."
    );
}
