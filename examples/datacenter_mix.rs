//! Why static heterogeneity is not enough (paper §5.9, Figure 17).
//!
//! A datacenter of fixed silicon must serve a shifting mix of hmmer-like
//! (small-core-friendly) and gobmk-like (big-core-friendly) jobs. For each
//! mix, a different big:small core ratio is optimal — so any fixed ratio
//! leaves utility on the table, while the Sharing Architecture simply
//! re-synthesizes its cores.
//!
//! ```text
//! cargo run --release --example datacenter_mix
//! ```

use sharing_arch::area::AreaModel;
use sharing_arch::market::datacenter;
use sharing_arch::market::{ExperimentSpec, SuiteSurfaces};
use sharing_arch::trace::Benchmark;

fn main() {
    let spec = ExperimentSpec::quick();
    println!("measuring hmmer and gobmk performance surfaces…");
    let suite = SuiteSurfaces::build_subset(spec, &[Benchmark::Hmmer, Benchmark::Gobmk]);
    let study = datacenter::run_study(
        &suite,
        Benchmark::Hmmer,
        Benchmark::Gobmk,
        &AreaModel::paper(),
    );

    println!(
        "\nbig core = {} ({} KB)   small core = {} ({} KB)\n",
        datacenter::big_core(),
        datacenter::big_core().l2_kb(),
        datacenter::small_core(),
        datacenter::small_core().l2_kb()
    );
    print!("{:>12}", "hmmer share");
    for bf in &study.big_fracs {
        print!("{:>10}", format!("big={bf:.2}"));
    }
    println!();
    for row in &study.points {
        let best = row
            .iter()
            .map(|p| p.throughput_per_area)
            .fold(f64::MIN, f64::max);
        print!("{:>12.2}", row[0].app_a_frac);
        for p in row {
            let mark = if p.throughput_per_area == best {
                '*'
            } else {
                ' '
            };
            print!("{:>9.4}{mark}", p.throughput_per_area);
        }
        println!();
    }
    println!("\n(*) the best core ratio for that application mix");
    for (mix, ratio) in study.optimal_ratio_per_mix() {
        println!("hmmer share {mix:.2} → optimal big-core area fraction {ratio:.2}");
    }
    if study.no_single_ratio_is_optimal() {
        println!(
            "\nNo single big:small ratio is optimal across mixes — the paper's argument \
             for sub-core reconfigurability over static heterogeneity."
        );
    }
}
