//! A day in the life of a Sharing Architecture datacenter.
//!
//! `sharing-dc` runs the paper's IaaS market as a living cloud: a seeded
//! discrete-event simulation where tenants arrive with budgets and
//! workloads, an epoch auction clears Slice/bank prices, the hypervisor
//! places Virtual Cores across a multi-chip fleet, and the ledger meters
//! revenue. This example walks the built-in bursty flash-crowd scenario:
//!
//! 1. the scenario JSON schema (what `ssim dc --scenario <file>` reads);
//! 2. a sharing-vs-fixed comparison over the identical arrival trace;
//! 3. the spot-price response to the burst;
//! 4. bit-for-bit determinism of the event log.
//!
//! ```text
//! cargo run --release --example dc_scenario
//! ```

use sharing_arch::dc::{BillingMode, DcSim, Scenario};
use sharing_arch::json::to_string_pretty;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The scenario is plain JSON; `ssim dc --emit-example` prints this
    // same document as a starting point for custom scenarios.
    let scenario = Scenario::example_bursty();
    let text = to_string_pretty(&scenario);
    println!("== scenario ({} bytes of JSON) ==", text.len());
    for line in text.lines().take(12) {
        println!("  {line}");
    }
    println!("  … (full schema in the top-level README)\n");
    assert_eq!(Scenario::parse(&text)?, scenario, "schema round-trips");

    // 2. Same seed, same arrivals, two billing modes.
    let sim = DcSim::new(scenario.clone())?;
    let seed = 0xA5_2014;
    let cmp = sim.run_comparison(seed);
    println!("== sharing vs fixed-instance billing (seed {seed:#x}) ==");
    println!("{}", cmp.summary());

    // 3. The burst epochs are where the spot market earns its keep: the
    // clearing price rises with demand instead of turning tenants away.
    println!("== spot-price response to the flash crowd ==");
    let burst =
        scenario.arrivals.burst_start..scenario.arrivals.burst_start + scenario.arrivals.burst_len;
    for r in &cmp.sharing.records {
        if burst.contains(&r.epoch) {
            println!(
                "  epoch {:>2}: {:>3} tenants, Slice price {:>6.2}, denied {:>2}",
                r.epoch, r.tenants, r.slice_price, r.denied_vcores
            );
        }
    }

    // 4. Determinism: the event log replays bit-for-bit.
    let again = sim.run(BillingMode::Sharing, seed);
    assert_eq!(again.log_hash(), cmp.sharing.log_hash());
    assert_eq!(again.csv(), cmp.sharing.csv());
    println!(
        "\ndeterminism: event-log hash {} replayed",
        again.log_hash()
    );
    Ok(())
}
