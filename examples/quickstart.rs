//! Quickstart: compose a Virtual Core and run a workload on it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sharing_arch::core::{RunOptions, SimConfig, Simulator};
use sharing_arch::trace::{Benchmark, TraceSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic gcc-like workload, standing in for a GEM5 trace.
    let trace = Benchmark::Gcc.generate(&TraceSpec::new(30_000, 42));
    println!("workload: {}", trace.stats());

    // The Sharing Architecture's whole point: the "core" is a knob.
    // Sweep a few Virtual Core shapes over the same binary.
    println!(
        "\n{:<22} {:>8} {:>10} {:>12}",
        "VCore", "IPC", "cycles", "L1D miss"
    );
    for (slices, banks) in [(1, 0), (1, 2), (2, 2), (4, 8), (8, 16)] {
        let config = SimConfig::with_shape(slices, banks)?;
        let result = Simulator::new(config)?
            .run_with(&trace, RunOptions::new())
            .result;
        println!(
            "{:<22} {:>8.3} {:>10} {:>11.1}%",
            format!("{} slices / {}KB L2", slices, banks * 64),
            result.ipc(),
            result.cycles,
            100.0 * result.mem.l1d.miss_rate(),
        );
    }

    println!(
        "\nEvery row ran the same instruction stream — no recompilation — \
         on a differently synthesized core, which is what an IaaS provider \
         would lease on a per-Slice / per-bank basis."
    );
    Ok(())
}
