//! Online auto-tuning of a live Virtual Core (paper §4).
//!
//! A customer without a performance model lets an auto-tuner resize their
//! VCore: the tuner probes neighbouring configurations with a live
//! heartbeat (here: a short simulator run of the customer's own workload),
//! scores each probe with the customer's utility under the market's
//! prices, and walks uphill. Compare the handful of probes it needs
//! against the 72-shape exhaustive sweep.
//!
//! ```text
//! cargo run --release --example autotune
//! ```

use sharing_arch::core::{RunOptions, SimConfig, Simulator, VCoreShape};
use sharing_arch::market::autotuner::{AutoTuner, Objective};
use sharing_arch::market::{optimize, ExperimentSpec, Market, SuiteSurfaces, UtilityFn};
use sharing_arch::trace::{Benchmark, TraceSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Benchmark::Gcc;
    let heartbeat_spec = TraceSpec::new(12_000, 2026);
    let market = Market::MARKET2;
    let utility = UtilityFn::Balanced;
    let budget = 48.0;

    // The heartbeat: run a profiling slice of the workload on a candidate
    // shape and report IPC — the paper's "performance feedback".
    let trace = workload.generate(&heartbeat_spec);
    let mut heartbeat = |shape: VCoreShape| -> f64 {
        let cfg =
            SimConfig::with_shape(shape.slices, shape.l2_banks).expect("lattice shapes are valid");
        Simulator::new(cfg)
            .expect("valid")
            .run_with(&trace, RunOptions::new())
            .result
            .ipc()
    };

    let mut tuner = AutoTuner::new(
        VCoreShape::new(1, 0)?,
        Objective::Utility {
            utility,
            market,
            budget,
        },
    );
    println!("tuning {workload} for {utility} under {market} (budget {budget})…\n");
    let mut step = 0;
    while !tuner.converged() && tuner.probes().len() < 40 {
        step += 1;
        let rec = tuner.step(&mut heartbeat);
        println!(
            "step {step}: {} probes so far, recommending {rec}",
            tuner.probes().len()
        );
    }
    let tuned = tuner.current();
    let tuned_score = tuner
        .probes()
        .iter()
        .find(|p| p.shape == tuned)
        .map(|p| p.score)
        .unwrap_or_default();

    // Ground truth: the exhaustive sweep the provider could run offline.
    println!("\nmeasuring the exhaustive 72-shape surface for comparison…");
    let suite = SuiteSurfaces::build_subset(
        ExperimentSpec {
            trace_len: heartbeat_spec.len,
            seed: heartbeat_spec.seed,
            ..ExperimentSpec::standard()
        },
        &[workload],
    );
    let exhaustive = optimize::best_utility(suite.surface(workload), utility, &market, budget);

    println!(
        "\nauto-tuner : {tuned} with utility {tuned_score:.4} after {} probes",
        tuner.probes().len()
    );
    println!(
        "exhaustive : {} with utility {:.4} after 72 measurements",
        exhaustive.shape, exhaustive.value
    );
    println!(
        "the tuner reached {:.0}% of the exhaustive optimum with {:.0}% of the probes",
        100.0 * tuned_score / exhaustive.value,
        100.0 * tuner.probes().len() as f64 / 72.0
    );
    Ok(())
}
