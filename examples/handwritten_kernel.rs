//! Hand-write a kernel, watch it run.
//!
//! The tiny assembler in `sharing_isa::asm` lets you write committed-path
//! programs directly — here, a pointer-ish reduction loop — and the
//! timeline renderer shows exactly how the Sharing Architecture executes
//! it at different VCore widths.
//!
//! ```text
//! cargo run --release --example handwritten_kernel
//! ```

use sharing_arch::core::{timeline, RunOptions, SimConfig, Simulator};
use sharing_arch::isa::asm::assemble;
use sharing_arch::trace::Trace;

const KERNEL: &str = "
    # One iteration of a reduction: two independent loads feed an
    # accumulate chain; a flag store publishes the partial sum.
    ld   r1, [0x1000]
    ld   r2, [0x1040]
    alu  r3, r3, r1
    alu  r3, r3, r2
    mul  r4, r3
    st   r4, [0x2000]
    alu  r26, r26          # induction update
    br.nt 0x0, r26         # loop test (falls through; harness loops us)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let block = assemble(KERNEL, 0x1_0000)?;
    // Repeat the kernel into a steady-state trace, closed by a back jump.
    let mut insts = Vec::new();
    let mut body = block.clone();
    body.push(sharing_arch::isa::DynInst::jump(
        body.last().expect("non-empty").pc + 4,
        body[0].pc,
    ));
    while insts.len() < 600 {
        insts.extend(body.iter().copied());
    }
    insts.truncate(600);
    let trace = Trace::from_insts("reduction", insts);

    for slices in [1usize, 4] {
        let cfg = SimConfig::with_shape(slices, 2)?;
        let out = Simulator::new(cfg)?.run_with(&trace, RunOptions::new().record_timings());
        let (result, timings) = (out.result, out.timings.expect("timings requested"));
        println!(
            "===== {slices}-Slice VCore: IPC {:.2}, {} cycles =====",
            result.ipc(),
            result.cycles
        );
        let window = 300..318; // steady state
        println!(
            "{}",
            timeline::render(&timings[window.clone()], &trace.insts()[window], 90)
        );
    }
    println!(
        "The two loads are independent and overlap; the accumulate chain \
         serializes through r3; more Slices help exactly as much as the \
         kernel's dataflow allows — the paper's core resource-fit argument."
    );
    Ok(())
}
