//! Observability quickstart: trace simulator runs on both clocks and
//! render the global counters as Prometheus text.
//!
//! ```text
//! cargo run --release --example trace_a_run
//! ```
//!
//! Writes a Chrome `trace_event` file next to the system temp dir; open
//! it in Perfetto (<https://ui.perfetto.dev>) or `about://tracing` to see
//! one wall-clock track (real microseconds) and one logical track
//! (simulated cycles) side by side.

use sharing_arch::core::{RunOptions, SimConfig, Simulator};
use sharing_arch::obs::TraceBuffer;
use sharing_arch::trace::{Benchmark, TraceSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let obs = TraceBuffer::new();

    // Each shape gets a wall-clock span (how long the host took) and,
    // via `RunOptions::trace_to`, a logical span (how many cycles were simulated,
    // with IPC and shape in the span args).
    for (slices, banks) in [(1, 2), (2, 4), (4, 8)] {
        let _phase = obs.span(format!("simulate {slices}s/{banks}b"), "example", 0);
        let trace = Benchmark::Gcc.generate(&TraceSpec::new(20_000, 42));
        let config = SimConfig::with_shape(slices, banks)?;
        let result = Simulator::new(config)?
            .run_with(&trace, RunOptions::new().trace_to(&obs))
            .result;
        println!(
            "{slices} slices / {:>3} KB L2: IPC {:.3} over {} cycles",
            banks * 64,
            result.ipc(),
            result.cycles
        );
    }

    let path = std::env::temp_dir().join("trace_a_run.trace.json");
    obs.save_chrome(path.to_str().expect("temp path is UTF-8"))?;
    println!("\nwrote {} ({} spans)", path.display(), obs.len());
    println!("open it in Perfetto or about://tracing");

    // The simulator also bumps process-global counters on every run;
    // this is the same registry ssimd serves over its `metrics` request.
    println!("\n{}", sharing_arch::obs::prometheus_text());
    Ok(())
}
