//! Validate a Chrome `trace_event` file produced by `--trace-out`.
//!
//! ```text
//! cargo run --release --example validate_trace -- path/to/trace.json
//! ```
//!
//! Checks that the file is valid JSON with a `traceEvents` array and
//! that every complete ("X") span has non-negative `ts` and `dur`.
//! Exits non-zero on any violation — `scripts/ci.sh` runs this against a
//! fresh `ssim run --trace-out` artifact.

use sharing_arch::json::Json;
use std::process::ExitCode;

fn validate(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let v = Json::parse(&text).map_err(|e| format!("{path}: not valid JSON: {e}"))?;
    let events = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing `traceEvents` array"))?;

    let mut spans = 0usize;
    for e in events {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        spans += 1;
        let name = e.get("name").and_then(Json::as_str).unwrap_or("<unnamed>");
        let ts = e
            .get("ts")
            .and_then(Json::as_int)
            .ok_or_else(|| format!("span `{name}`: missing integer `ts`"))?;
        let dur = e
            .get("dur")
            .and_then(Json::as_int)
            .ok_or_else(|| format!("span `{name}`: missing integer `dur`"))?;
        if ts < 0 || dur < 0 {
            return Err(format!("span `{name}`: negative ts/dur ({ts}/{dur})"));
        }
    }
    if spans == 0 {
        return Err(format!("{path}: no complete (`X`) spans"));
    }
    Ok(format!(
        "{path}: ok — {} events, {spans} spans, ts/dur all non-negative",
        events.len()
    ))
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: validate_trace <trace.json>");
        return ExitCode::FAILURE;
    };
    match validate(&path) {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("validate_trace: {msg}");
            ExitCode::FAILURE
        }
    }
}
