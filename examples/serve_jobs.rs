//! Simulation-as-a-service: the ssimd daemon end to end.
//!
//! The sweeps and market studies behind the paper's figures re-run the
//! simulator over the same `(benchmark, shape, trace)` points again and
//! again. ssimd amortizes that: a daemon owns a worker pool and a result
//! cache, and clients submit jobs over newline-delimited JSON. This
//! example starts a daemon in-process and walks through the acceptance
//! checklist:
//!
//! 1. several clients submitting concurrently;
//! 2. a repeated job served from the cache, byte-identical to the fresh
//!    run;
//! 3. the server metrics (`stats`) after the burst;
//! 4. graceful shutdown that drains in-flight work.
//!
//! ```text
//! cargo run --release --example serve_jobs
//! ```

use sharing_arch::json::Json;
use sharing_arch::server::{Client, Job, JobWorkload, RunJob, Server, ServerConfig};
use sharing_arch::trace::Benchmark;

fn gcc_run(slices: usize, banks: usize, len: usize, seed: u64) -> Job {
    Job::Run(RunJob {
        workload: JobWorkload::Benchmark(Benchmark::Gcc),
        slices,
        banks,
        len,
        seed,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(), // ephemeral port: no collisions
        workers: 4,
        queue_capacity: 16,
        cache_capacity: 64,
        ..ServerConfig::default()
    })?;
    let addr = handle.local_addr();
    println!("ssimd listening on {addr}\n");

    // 1. Four clients, four different Virtual-Core shapes, concurrently.
    println!("== concurrent clients ==");
    let clients: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || -> std::io::Result<(usize, f64)> {
                let slices = 1 + i;
                let mut c = Client::connect(addr)?;
                c.hello()?; // negotiate the protocol version up front
                let reply = c.submit(gcc_run(slices, 2, 20_000, 7))?;
                let r = reply.get("result").expect("result");
                let ipc = r.get("instructions").and_then(Json::as_int).unwrap() as f64
                    / r.get("cycles").and_then(Json::as_int).unwrap() as f64;
                Ok((slices, ipc))
            })
        })
        .collect();
    for t in clients {
        let (slices, ipc) = t.join().expect("client thread")?;
        println!("  gcc on {slices} slice(s): IPC {ipc:.3}");
    }

    // 2. Submit one of those jobs again: a cache hit, byte-identical.
    println!("\n== cache replay ==");
    let mut c = Client::connect(addr)?;
    let again = c.submit(gcc_run(2, 2, 20_000, 7))?;
    println!(
        "  repeated job: cached = {}",
        again.get("cached").and_then(Json::as_bool).unwrap()
    );

    // 3. What the server saw.
    println!("\n== server metrics ==");
    let stats = c.stats()?;
    for key in [
        "jobs_submitted",
        "jobs_completed",
        "cache_hits",
        "cache_misses",
        "cache_hit_rate",
        "worker_utilization",
        "latency_p50_us",
        "latency_p99_us",
    ] {
        println!("  {key:>18}: {}", stats.get(key).expect(key));
    }

    // 4. Graceful shutdown: a job is still in flight when we ask the
    // daemon to stop; the drain finishes it first.
    println!("\n== graceful shutdown ==");
    let mut busy = Client::connect(addr)?;
    let in_flight = std::thread::spawn(move || {
        busy.submit(Job::Run(RunJob {
            workload: JobWorkload::Benchmark(Benchmark::Mcf),
            slices: 4,
            banks: 4,
            len: 40_000,
            seed: 1,
        }))
    });
    std::thread::sleep(std::time::Duration::from_millis(50));
    let reply = c.shutdown()?;
    println!(
        "  shutdown acknowledged after {} completed job(s)",
        reply.get("jobs_completed").and_then(Json::as_int).unwrap()
    );
    let last = in_flight.join().expect("in-flight thread")?;
    println!(
        "  in-flight job still answered: ok = {}",
        last.get("ok").and_then(Json::as_bool).unwrap()
    );
    handle.join();
    println!("  daemon drained and stopped");
    Ok(())
}
