//! An IaaS provider running the Sharing Architecture's sub-core market.
//!
//! Customers with different utility functions arrive with budgets; each
//! solves the paper's §5.6 optimization (maximize `v · P^k` under
//! `v = B / (C_s·s + C_c·c)`) against measured performance surfaces, and
//! the hypervisor leases the chosen Virtual Cores out of a real chip grid,
//! respecting Slice contiguity. The run ends by comparing delivered
//! utility against a fixed-instance provider on identical silicon.
//!
//! ```text
//! cargo run --release --example iaas_market
//! ```

use sharing_arch::core::VCoreShape;
use sharing_arch::hv::{Chip, Hypervisor};
use sharing_arch::market::{
    efficiency, optimize, ExperimentSpec, Market, SuiteSurfaces, UtilityFn,
};
use sharing_arch::trace::Benchmark;

struct Customer {
    name: &'static str,
    workload: Benchmark,
    utility: UtilityFn,
    budget: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Performance surfaces for the workloads customers bring. (Small
    // traces keep the example snappy; the bench harness uses bigger ones.)
    let spec = ExperimentSpec::quick();
    let workloads = [
        Benchmark::Apache,
        Benchmark::Mcf,
        Benchmark::H264ref,
        Benchmark::Hmmer,
    ];
    println!(
        "measuring performance surfaces for {} workloads…",
        workloads.len()
    );
    let suite = SuiteSurfaces::build_subset(spec, &workloads);

    let customers = [
        Customer {
            name: "webshop (throughput)",
            workload: Benchmark::Apache,
            utility: UtilityFn::Throughput,
            budget: 48.0,
        },
        Customer {
            name: "router-sim (balanced)",
            workload: Benchmark::Mcf,
            utility: UtilityFn::Balanced,
            budget: 36.0,
        },
        Customer {
            name: "video-api (latency-critical)",
            workload: Benchmark::H264ref,
            utility: UtilityFn::LatencyCritical,
            budget: 60.0,
        },
        Customer {
            name: "bio-pipeline (throughput)",
            workload: Benchmark::Hmmer,
            utility: UtilityFn::Throughput,
            budget: 24.0,
        },
    ];

    let market = Market::MARKET2; // prices track area
    let mut hv = Hypervisor::new(Chip::new(8, 16)); // 64 slices + 64 banks
    println!(
        "\nchip: {} Slices, {} cache banks   market: {market}",
        hv.chip().total_slices(),
        hv.chip().total_banks()
    );

    println!(
        "\n{:<30} {:>14} {:>8} {:>12}",
        "customer", "chosen VCore", "v", "utility"
    );
    let mut total_sharing_utility = 0.0;
    for c in &customers {
        let surface = suite.surface(c.workload);
        let best = optimize::best_utility(surface, c.utility, &market, c.budget);
        let v = market.affordable_cores(best.shape, c.budget);
        // Lease ⌊v⌋ VCores (at least one, at most six for this demo chip).
        let count = (v.floor() as usize).clamp(1, 6);
        let mut leased = 0;
        for _ in 0..count {
            if hv.lease(best.shape).is_ok() {
                leased += 1;
            } else {
                break;
            }
        }
        total_sharing_utility += best.value;
        println!(
            "{:<30} {:>14} {:>8.2} {:>12.4}   ({leased} leased)",
            c.name,
            format!("{}", best.shape),
            v,
            best.value
        );
    }

    let stats = hv.stats();
    println!(
        "\nchip utilization: {:.0}% of Slices, {:.0}% of banks, fragmentation {:.2}",
        100.0 * stats.slice_utilization,
        100.0 * stats.bank_utilization,
        stats.fragmentation
    );

    // The counterfactual: a fixed-instance provider on the same silicon.
    let fixed = efficiency::best_fixed_shape(&suite, &market, 48.0);
    let mut total_fixed_utility = 0.0;
    for c in &customers {
        total_fixed_utility += optimize::utility_at(
            suite.surface(c.workload),
            fixed,
            c.utility,
            &market,
            c.budget,
        );
    }
    println!(
        "\nfixed-instance provider would offer only {fixed} to everyone:\n\
         total utility {total_fixed_utility:.4} vs sharing {total_sharing_utility:.4} \
         → market efficiency gain {:.2}x",
        total_sharing_utility / total_fixed_utility
    );

    // Demand moved on: a customer upsizes, then right-sizes back down.
    println!("\n--- demand shift: resizing a lease in place ---");
    let shape_before = VCoreShape::new(4, 8)?;
    match hv.lease(shape_before) {
        Ok(lease) => {
            let shape_after = VCoreShape::new(2, 2)?;
            hv.reconfigure(lease, shape_after)?;
            println!(
                "reconfigured {shape_before} → {shape_after}; total reconfiguration \
                 cycles charged so far: {}",
                hv.stats().reconfig_cycles
            );
        }
        Err(e) => println!("chip saturated ({e}); compacting and retrying"),
    }
    Ok(())
}
