//! Ablation: co-scheduling interference on a shared L2, and how
//! bank-granular partitioning removes it (§6: "Application interference is
//! prevalent in datacenters due to contention over shared hardware
//! resources. Sharing last-level cache (LLC) and DRAM bandwidth degrades
//! responsiveness of workloads.").
//!
//! A cache-sensitive victim (bzip) is co-scheduled with a streaming
//! bully (libquantum) three ways:
//!
//! 1. alone on a private L2 (baseline responsiveness);
//! 2. sharing one L2 with the bully (the conventional-multicore setting);
//! 3. with the same total silicon split into *private bank sets* — the
//!    Sharing Architecture's answer.

use sharing_bench::{render_table, run_experiment};
use sharing_core::{SimConfig, Simulator, VmSimulator};
use sharing_trace::{Benchmark, TraceSpec};

fn main() {
    run_experiment(
        "ablation_interference",
        "§6 datacenter interference: shared vs bank-partitioned L2",
        || {
            let spec = TraceSpec::new(40_000, 11);
            let victim = Benchmark::Bzip.generate(&spec);
            let bully = Benchmark::Libquantum.generate(&spec);
            let total_banks = 8; // 512 KB of silicon between the two tenants

            // 1. Victim alone, private 512 KB.
            let alone = Simulator::new(SimConfig::with_shape(2, total_banks).expect("valid"))
                .expect("valid")
                .run_with(&victim, sharing_core::RunOptions::new())
                .result;

            // 2. Both tenants share one 512 KB L2 (+ coherence directory).
            let vm = VmSimulator::new(SimConfig::with_shape(2, total_banks).expect("valid"))
                .expect("valid");
            let shared = vm.run_coscheduled(&[victim.clone(), bully.clone()]);

            // 3. Bank partitioning: the victim keeps 6 banks privately, the
            //    bully gets 2 (it streams; cache barely helps it).
            let victim_part = Simulator::new(SimConfig::with_shape(2, 6).expect("valid"))
                .expect("valid")
                .run_with(&victim, sharing_core::RunOptions::new())
                .result;
            let bully_part = Simulator::new(SimConfig::with_shape(2, 2).expect("valid"))
                .expect("valid")
                .run_with(&bully, sharing_core::RunOptions::new())
                .result;

            let rows = vec![
                vec![
                    "victim alone (512KB private)".to_string(),
                    format!("{:.3}", alone.ipc()),
                    "1.00x".to_string(),
                ],
                vec![
                    "victim sharing 512KB with bully".to_string(),
                    format!("{:.3}", shared[0].ipc()),
                    format!("{:.2}x", shared[0].ipc() / alone.ipc()),
                ],
                vec![
                    "victim with 384KB private banks".to_string(),
                    format!("{:.3}", victim_part.ipc()),
                    format!("{:.2}x", victim_part.ipc() / alone.ipc()),
                ],
            ];
            println!(
                "{}",
                render_table(&["scenario", "victim IPC", "vs alone"], &rows)
            );
            println!(
                "bully IPC: shared {:.3} vs 128KB private banks {:.3} (it streams; \
                 cache barely matters to it)",
                shared[1].ipc(),
                bully_part.ipc()
            );
            let interference = 1.0 - shared[0].ipc() / alone.ipc();
            let recovered = victim_part.ipc() / alone.ipc();
            println!(
                "\nsharing costs the victim {:.0}% of its performance; giving it private \
                 banks recovers {:.0}% of the solo baseline while freeing 128KB for resale",
                100.0 * interference,
                100.0 * recovered
            );
        },
    );
}
