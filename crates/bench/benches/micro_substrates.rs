//! Microbenchmarks of the simulator substrates: these are the
//! performance-sensitive inner loops every experiment above runs millions
//! of times. A plain timing harness (median of several runs) keeps the
//! workspace dependency-free.

use sharing_bench::{render_table, run_experiment};
use sharing_cache::{CacheGeometry, SetAssocCache};
use sharing_core::{SimConfig, Simulator};
use sharing_noc::{Coord, IdealNetwork, LatencyModel, Mesh, QueuedNetwork, Transport};
use sharing_trace::{Benchmark, TraceSpec};
use std::time::Instant;

/// Times `f` over `iters` iterations, repeated `runs` times; returns the
/// median per-iteration nanoseconds.
fn time_ns(runs: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn row(name: &str, ns: f64) -> Vec<String> {
    let rate = 1e9 / ns;
    vec![
        name.to_string(),
        format!("{ns:.1} ns"),
        format!("{:.2} M/s", rate / 1e6),
    ]
}

fn main() {
    run_experiment("micro_substrates", "Substrate microbenchmarks", || {
        let mut rows = Vec::new();

        let geom = CacheGeometry::new(16 << 10, 64, 2).expect("valid");
        let mut cache = SetAssocCache::new(geom);
        let mut line = 0u64;
        rows.push(row(
            "cache/set_assoc_access",
            time_ns(7, 200_000, || {
                line = (line.wrapping_mul(2_862_933_555_777_941_757)).wrapping_add(3) % 4096;
                let _ = cache.access(line, line.is_multiple_of(3));
            }),
        ));

        let mesh = Mesh::new(8, 8);
        let mut ideal = IdealNetwork::new(mesh, LatencyModel::tilera());
        let mut t = 0u64;
        rows.push(row(
            "noc/ideal_send",
            time_ns(7, 200_000, || {
                t += 1;
                let _ = ideal.send(Coord::new(0, 0), Coord::new(7, 7), t);
            }),
        ));
        let mut queued = QueuedNetwork::new(mesh, LatencyModel::tilera(), 1);
        let mut tq = 0u64;
        rows.push(row(
            "noc/queued_send",
            time_ns(7, 200_000, || {
                tq += 2;
                let _ = queued.send(Coord::new(0, 0), Coord::new(7, 7), tq);
            }),
        ));

        rows.push(row(
            "trace/generate_10k_gcc",
            time_ns(5, 20, || {
                let _ = Benchmark::Gcc.generate(&TraceSpec::new(10_000, 3));
            }),
        ));

        let trace = Benchmark::Gcc.generate(&TraceSpec::new(10_000, 3));
        for slices in [1usize, 4] {
            rows.push(row(
                &format!("sim/gcc_10k_{slices}slice"),
                time_ns(5, 5, || {
                    let sim = Simulator::new(SimConfig::with_shape(slices, 2).expect("valid"))
                        .expect("valid");
                    let _ = sim.run_with(&trace, sharing_core::RunOptions::new());
                }),
            ));
        }

        println!("{}", render_table(&["benchmark", "median", "rate"], &rows));
    });
}
