//! Criterion microbenchmarks of the simulator substrates: these are the
//! performance-sensitive inner loops every experiment above runs millions
//! of times.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sharing_cache::{CacheGeometry, SetAssocCache};
use sharing_core::{SimConfig, Simulator};
use sharing_noc::{Coord, IdealNetwork, LatencyModel, Mesh, QueuedNetwork, Transport};
use sharing_trace::{Benchmark, TraceSpec};

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/set_assoc_access", |b| {
        let geom = CacheGeometry::new(16 << 10, 64, 2).expect("valid");
        let mut cache = SetAssocCache::new(geom);
        let mut line = 0u64;
        b.iter(|| {
            line = (line * 2_862_933_555_777_941_757).wrapping_add(3) % 4096;
            cache.access(line, line % 3 == 0)
        });
    });
}

fn bench_noc(c: &mut Criterion) {
    let mesh = Mesh::new(8, 8);
    c.bench_function("noc/ideal_send", |b| {
        let mut net = IdealNetwork::new(mesh, LatencyModel::tilera());
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            net.send(Coord::new(0, 0), Coord::new(7, 7), t)
        });
    });
    c.bench_function("noc/queued_send", |b| {
        let mut net = QueuedNetwork::new(mesh, LatencyModel::tilera(), 1);
        let mut t = 0u64;
        b.iter(|| {
            t += 2;
            net.send(Coord::new(0, 0), Coord::new(7, 7), t)
        });
    });
}

fn bench_generator(c: &mut Criterion) {
    c.bench_function("trace/generate_10k_gcc", |b| {
        b.iter(|| Benchmark::Gcc.generate(&TraceSpec::new(10_000, 3)));
    });
}

fn bench_simulator(c: &mut Criterion) {
    let trace = Benchmark::Gcc.generate(&TraceSpec::new(10_000, 3));
    for slices in [1usize, 4] {
        c.bench_function(&format!("sim/gcc_10k_{slices}slice"), |b| {
            b.iter_batched(
                || Simulator::new(SimConfig::with_shape(slices, 2).expect("valid")).expect("valid"),
                |sim| sim.run(&trace),
                BatchSize::SmallInput,
            );
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache, bench_noc, bench_generator, bench_simulator
}
criterion_main!(benches);
