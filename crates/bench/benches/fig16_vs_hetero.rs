//! Figure 16: utility gain of the Sharing Architecture over per-utility
//! optimal configurations (a statically heterogeneous design).

use sharing_bench::{run_experiment, standard_suite, BUDGET};
use sharing_market::{efficiency, Market};

fn main() {
    run_experiment(
        "fig16_vs_hetero",
        "Figure 16 (utility gain vs per-utility heterogeneous baseline)",
        || {
            let suite = standard_suite();
            let study = efficiency::vs_heterogeneous(&suite, &Market::MARKET2, BUDGET);
            println!("baselines (one optimal shape per utility function):");
            for (u, s) in &study.baseline_shapes {
                println!("  {u}: {}KB / {} slices", s.l2_kb(), s.slices);
            }
            let mut gains: Vec<f64> = study.pairs.iter().map(|p| p.gain()).collect();
            gains.sort_by(f64::total_cmp);
            println!("\ngain percentiles:");
            for pct in [0, 10, 25, 50, 75, 90, 99, 100] {
                let idx = ((pct as f64 / 100.0) * (gains.len() - 1) as f64).round() as usize;
                println!("  p{pct:3}: {:.2}x", gains[idx]);
            }
            println!("\nmax gain : {:.2}x   (paper: over 3x)", study.max_gain());
            println!("mean gain: {:.2}x (geometric)", study.mean_gain());
            println!("win rate : {:.0}%", 100.0 * study.win_rate());
        },
    );
}
