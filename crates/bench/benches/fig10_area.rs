//! Figure 10: area decomposition of one Slice (no L2 bank).

use sharing_area::{AreaModel, SliceComponent};
use sharing_bench::{render_table, run_experiment};

fn main() {
    run_experiment(
        "fig10_area",
        "Figure 10 (Slice area breakdown, 45nm)",
        || {
            let model = AreaModel::paper();
            let mut rows: Vec<Vec<String>> = SliceComponent::ALL
                .iter()
                .map(|&c| {
                    vec![
                        c.name().to_string(),
                        format!("{:.1}%", 100.0 * c.fraction()),
                        format!("{:.4} mm2", model.component_mm2(c)),
                        if c.is_sharing_overhead() { "yes" } else { "" }.to_string(),
                    ]
                })
                .collect();
            rows.push(vec![
                "TOTAL (one Slice)".to_string(),
                "100.0%".to_string(),
                format!("{:.4} mm2", model.slice_mm2()),
                String::new(),
            ]);
            rows.push(vec![
                "Sharing overhead subtotal".to_string(),
                format!(
                    "{:.1}%",
                    100.0 * model.sharing_overhead_mm2() / model.slice_mm2()
                ),
                format!("{:.4} mm2", model.sharing_overhead_mm2()),
                String::new(),
            ]);
            println!(
                "{}",
                render_table(&["component", "share", "area", "sharing-overhead"], &rows)
            );
            println!("paper: L1s 24%+24%, sharing overhead 8% of the Slice");
        },
    );
}
