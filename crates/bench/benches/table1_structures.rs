//! Table 1: replicated vs partitioned structures, with the capacity
//! scaling each choice implies.

use sharing_bench::{render_table, run_experiment};
use sharing_core::{Distribution, SliceParams, Structure};

fn main() {
    run_experiment(
        "table1_structures",
        "Table 1 (replicated vs partitioned structures)",
        || {
            let p = SliceParams::default();
            let per_slice = |s: Structure| -> usize {
                match s {
                    Structure::BranchPredictor => p.predictor_entries,
                    Structure::Btb => p.btb_entries,
                    Structure::Scoreboard => p.global_regs,
                    Structure::IssueWindow => p.issue_window,
                    Structure::LoadQueue | Structure::StoreQueue => p.lsq_entries,
                    Structure::Rob => p.rob_entries,
                    Structure::LocalRat => p.global_regs,
                    Structure::GlobalRat => 32,
                    Structure::PhysicalRegisterFile => p.local_regs,
                }
            };
            let rows: Vec<Vec<String>> = Structure::ALL
                .iter()
                .map(|&s| {
                    let dist = match s.distribution() {
                        Distribution::Replicated => "replicated",
                        Distribution::Partitioned => "partitioned",
                    };
                    vec![
                        s.name().to_string(),
                        dist.to_string(),
                        per_slice(s).to_string(),
                        s.logical_capacity(per_slice(s), 4).to_string(),
                        s.logical_capacity(per_slice(s), 8).to_string(),
                    ]
                })
                .collect();
            println!(
                "{}",
                render_table(
                    &[
                        "structure",
                        "Table 1",
                        "per-slice",
                        "4-slice VCore",
                        "8-slice VCore"
                    ],
                    &rows
                )
            );
        },
    );
}
