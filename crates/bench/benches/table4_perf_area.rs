//! Table 4: optimal VCore configurations per benchmark under the three
//! performance-area efficiency metrics (`perf^k/area`, k = 1, 2, 3).

use sharing_area::AreaModel;
use sharing_bench::{render_table, run_experiment, standard_suite};
use sharing_market::optimize::best_metric;

fn main() {
    run_experiment(
        "table4_perf_area",
        "Table 4 (optimal configs for perf/area, perf²/area, perf³/area)",
        || {
            let suite = standard_suite();
            let area = AreaModel::paper();
            let mut rows = Vec::new();
            for (b, surf) in suite.iter() {
                let mut row = vec![b.name().to_string()];
                for k in [1u32, 2, 3] {
                    let c = best_metric(surf, k, &area);
                    row.push(format!("{}KB/{}s", c.shape.l2_kb(), c.shape.slices));
                }
                rows.push(row);
            }
            println!(
                "{}",
                render_table(
                    &["benchmark", "perf/area", "perf^2/area", "perf^3/area"],
                    &rows
                )
            );
            println!(
                "paper shape: optima are non-uniform across benchmarks and move to larger \
                 configurations as the metric weights performance more (e.g. gobmk perf² → \
                 5 Slices/1MB region in the paper; hmmer stays at 64KB/1 Slice; gcc gains \
                 over 2x between its throughput- and performance-optimal configs)"
            );
            // The paper's headline gcc observation: performance gap between
            // the k=1 and k=3 optima.
            let gcc = suite.surface(sharing_trace::Benchmark::Gcc);
            let k1 = best_metric(gcc, 1, &area);
            let k3 = best_metric(gcc, 3, &area);
            println!(
                "gcc perf at k=3 optimum vs k=1 optimum: {:.2}x (paper: over 2x)",
                k3.perf / k1.perf
            );
        },
    );
}
