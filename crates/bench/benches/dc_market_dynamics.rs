//! Datacenter market dynamics: the sharing market vs fixed-instance
//! billing over a bursty arrival trace.
//!
//! The static studies (Tables 4/6, Figures 15–17) evaluate the market as
//! one-shot optimizations. This experiment runs `sharing-dc`'s
//! discrete-event datacenter over a seeded bursty scenario and compares
//! the two billing modes on the *same* arrival trace: aggregate tenant
//! utility, metered revenue, and Slice fragmentation, epoch by epoch.

use sharing_bench::{render_table, run_experiment, write_csv};
use sharing_dc::{BillingMode, DcSim, Scenario};

fn main() {
    run_experiment(
        "dc_market_dynamics",
        "datacenter market dynamics (sharing vs fixed-instance billing, §6 economics)",
        || {
            let scenario = Scenario::example_bursty();
            assert!(scenario.is_bursty(), "example scenario must be bursty");
            let sim = DcSim::new(scenario.clone()).expect("valid scenario");
            println!(
                "scenario: {} — {} chips, {} epochs of {} cycles, burst at epoch {}..{}",
                scenario.name,
                scenario.chips,
                scenario.epochs,
                scenario.epoch_cycles,
                scenario.arrivals.burst_start,
                scenario.arrivals.burst_start + scenario.arrivals.burst_len,
            );

            // Headline comparison at the default seed, plus a small seed
            // sweep to show the gain is not a single-seed accident.
            let seeds: [u64; 5] = [0xA5_2014, 1, 7, 42, 1234];
            let mut rows = Vec::new();
            let mut wins = 0usize;
            for &seed in &seeds {
                let cmp = sim.run_comparison(seed);
                let s = cmp.sharing.totals();
                let f = cmp.fixed.totals();
                if s.aggregate_utility > f.aggregate_utility {
                    wins += 1;
                }
                rows.push(vec![
                    format!("{seed:#x}"),
                    format!("{:.3}x", cmp.utility_gain()),
                    format!("{:.3}x", cmp.revenue_ratio()),
                    format!("{}/{}", s.denied_vcores, f.denied_vcores),
                    format!("{:.3}/{:.3}", s.mean_fragmentation, f.mean_fragmentation),
                    format!("{:.2}", s.peak_slice_price),
                ]);
            }
            println!();
            print!(
                "{}",
                render_table(
                    &[
                        "seed",
                        "utility gain",
                        "revenue ratio",
                        "denied s/f",
                        "frag s/f",
                        "peak price",
                    ],
                    &rows,
                )
            );
            println!(
                "\nsharing beats fixed on aggregate utility in {wins}/{} seeds",
                seeds.len()
            );
            assert!(
                wins == seeds.len(),
                "acceptance: sharing must beat fixed-instance billing on \
                 aggregate utility for the bursty scenario"
            );

            // Epoch-by-epoch series at the default seed → CSV artifact.
            let cmp = sim.run_comparison(0xA5_2014);
            println!("\n{}", cmp.summary());
            let csv_rows: Vec<Vec<String>> = cmp
                .sharing
                .records
                .iter()
                .zip(&cmp.fixed.records)
                .map(|(s, f)| {
                    vec![
                        s.epoch.to_string(),
                        s.tenants.to_string(),
                        format!("{:.4}", s.slice_price),
                        format!("{:.4}", s.utility),
                        format!("{:.4}", f.utility),
                        format!("{:.4}", s.revenue),
                        format!("{:.4}", f.revenue),
                        format!("{:.4}", s.fragmentation),
                        format!("{:.4}", f.fragmentation),
                        s.denied_vcores.to_string(),
                        f.denied_vcores.to_string(),
                    ]
                })
                .collect();
            write_csv(
                "dc_market_dynamics",
                &[
                    "epoch",
                    "tenants",
                    "slice_price",
                    "utility_sharing",
                    "utility_fixed",
                    "revenue_sharing",
                    "revenue_fixed",
                    "frag_sharing",
                    "frag_fixed",
                    "denied_sharing",
                    "denied_fixed",
                ],
                &csv_rows,
            );

            // Determinism spot-check: the whole comparison is replayable.
            let again = sim.run(BillingMode::Sharing, 0xA5_2014);
            assert_eq!(
                again.log_hash(),
                cmp.sharing.log_hash(),
                "same seed must replay the same event log"
            );
            println!("determinism: event-log hash {} replayed", again.log_hash());
        },
    );
}
