//! Figure 15: utility gain of the Sharing Architecture over the best
//! static fixed architecture, across all pairwise (benchmark, utility)
//! customer mixes.

use sharing_bench::{run_experiment, standard_suite, write_csv, BUDGET};
use sharing_market::{efficiency, Market};

fn main() {
    run_experiment(
        "fig15_vs_fixed",
        "Figure 15 (utility gain vs best static fixed architecture)",
        || {
            let suite = standard_suite();
            let study = efficiency::vs_static_fixed(&suite, &Market::MARKET2, BUDGET);
            let fixed = study.baseline_shapes[0].1;
            println!(
                "baseline: best fixed architecture across the suite = {}KB / {} slices",
                fixed.l2_kb(),
                fixed.slices
            );
            println!("permutations: {}", study.pairs.len());
            // Print the gain distribution as a histogram series.
            let mut gains: Vec<f64> = study.pairs.iter().map(|p| p.gain()).collect();
            gains.sort_by(f64::total_cmp);
            let csv_rows: Vec<Vec<String>> = gains
                .iter()
                .enumerate()
                .map(|(i, g)| vec![i.to_string(), format!("{g:.4}")])
                .collect();
            write_csv("fig15_vs_fixed", &["permutation", "gain"], &csv_rows);
            println!("\ngain percentiles:");
            for pct in [0, 10, 25, 50, 75, 90, 99, 100] {
                let idx = ((pct as f64 / 100.0) * (gains.len() - 1) as f64).round() as usize;
                println!("  p{pct:3}: {:.2}x", gains[idx]);
            }
            println!("\nmax gain : {:.2}x   (paper: up to 5x)", study.max_gain());
            println!("mean gain: {:.2}x (geometric)", study.mean_gain());
            println!("win rate : {:.0}%", 100.0 * study.win_rate());
            let top: Vec<_> = study
                .pairs
                .iter()
                .filter(|p| p.gain() >= study.max_gain() * 0.98)
                .take(3)
                .collect();
            for p in top {
                println!(
                    "top pair: {}+{} / {}+{} → {:.2}x",
                    p.a.0,
                    p.a.1,
                    p.b.0,
                    p.b.1,
                    p.gain()
                );
            }
        },
    );
}
