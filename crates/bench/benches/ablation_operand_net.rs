//! Ablations of the Sharing Architecture's design choices (DESIGN.md):
//!
//! * a second operand-network plane (§5.1: the paper measured only ≈1%);
//! * remote-operand wakeup head start (§3.3);
//! * unordered vs ordered LSQ (§3.6);
//! * contiguous vs fragmented Slice allocation (§3).

use sharing_bench::{render_table, run_experiment};
use sharing_core::{ModelKnobs, RunOptions, SimConfig, Simulator};
use sharing_trace::{Benchmark, TraceSpec};

fn ipc(bench: Benchmark, slices: usize, knobs: ModelKnobs, spec: &TraceSpec) -> f64 {
    let cfg = SimConfig::builder()
        .slices(slices)
        .l2_banks(2)
        .knobs(knobs)
        .build()
        .expect("valid config");
    Simulator::new(cfg)
        .expect("valid config")
        .run_with(&bench.generate(spec), RunOptions::new())
        .result
        .ipc()
}

fn main() {
    run_experiment(
        "ablation_operand_net",
        "§5.1 bandwidth ablation + DESIGN.md design-choice ablations",
        || {
            let spec = TraceSpec::new(40_000, 7);
            let benches = [
                Benchmark::Libquantum,
                Benchmark::Gcc,
                Benchmark::H264ref,
                Benchmark::Apache,
            ];
            let base = ModelKnobs::default();
            let mut rows = Vec::new();
            for bench in benches {
                for slices in [4usize, 8] {
                    let baseline = ipc(bench, slices, base, &spec);
                    let two_planes = ipc(
                        bench,
                        slices,
                        ModelKnobs {
                            operand_planes: 2,
                            ..base
                        },
                        &spec,
                    );
                    let no_headstart = ipc(
                        bench,
                        slices,
                        ModelKnobs {
                            remote_wakeup_headstart: false,
                            ..base
                        },
                        &spec,
                    );
                    let ordered_lsq = ipc(
                        bench,
                        slices,
                        ModelKnobs {
                            unordered_lsq: false,
                            ..base
                        },
                        &spec,
                    );
                    let fragmented = ipc(
                        bench,
                        slices,
                        ModelKnobs {
                            contiguous_slices: false,
                            ..base
                        },
                        &spec,
                    );
                    let pct = |x: f64| format!("{:+.1}%", 100.0 * (x / baseline - 1.0));
                    rows.push(vec![
                        bench.name().to_string(),
                        slices.to_string(),
                        format!("{baseline:.3}"),
                        pct(two_planes),
                        pct(no_headstart),
                        pct(ordered_lsq),
                        pct(fragmented),
                    ]);
                }
            }
            println!(
                "{}",
                render_table(
                    &[
                        "benchmark",
                        "slices",
                        "base IPC",
                        "+2nd operand net",
                        "-wakeup headstart",
                        "ordered LSQ",
                        "fragmented slices"
                    ],
                    &rows
                )
            );
            println!(
                "paper: the second operand network buys only ≈1% — one network provides \
                 sufficient bandwidth"
            );
        },
    );
}
