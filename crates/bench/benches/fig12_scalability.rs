//! Figure 12: VCore performance scalability vs Slice count, normalized to
//! one Slice with 128 KB of L2.

use sharing_bench::{render_table, run_experiment, standard_suite, write_csv};
use sharing_core::VCoreShape;

fn main() {
    run_experiment(
        "fig12_scalability",
        "Figure 12 (speedup vs Slices, 128KB L2, normalized to 1 Slice)",
        || {
            let suite = standard_suite();
            let norm_shape = VCoreShape::new(1, 2).expect("1 Slice / 128KB");
            let mut rows = Vec::new();
            for (b, surf) in suite.iter() {
                let base = surf.perf(norm_shape);
                let mut row = vec![b.name().to_string()];
                for s in 1..=8 {
                    let shape = VCoreShape::new(s, 2).expect("valid");
                    row.push(format!("{:.2}", surf.perf(shape) / base));
                }
                rows.push(row);
            }
            println!(
                "{}",
                render_table(
                    &["benchmark", "1", "2", "3", "4", "5", "6", "7", "8"],
                    &rows
                )
            );
            write_csv(
                "fig12_scalability",
                &["benchmark", "1", "2", "3", "4", "5", "6", "7", "8"],
                &rows,
            );
            println!(
                "paper shape: SPEC/apache scale up to ≈5x; PARSEC bounded ≈2; \
                 hmmer/mcf/astar/omnetpp flat or declining"
            );
        },
    );
}
