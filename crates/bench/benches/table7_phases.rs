//! Table 7: optimal VCore configurations for gcc's ten program phases,
//! and the dynamic-over-static gain with reconfiguration costs.

use sharing_bench::{render_table, run_experiment};
use sharing_market::phases;
use sharing_trace::TraceSpec;

fn main() {
    run_experiment(
        "table7_phases",
        "Table 7 (gcc phase-optimal configs; dynamic vs static gain)",
        || {
            // Long phases so the 10 000-cycle reconfiguration amortizes the
            // way it does over the paper's full-length phases.
            let spec = TraceSpec::new(60_000, 0xA5_2014);
            let study = phases::run_study(&spec);
            let mut rows = Vec::new();
            for row in &study.rows {
                let mut cache_row = vec![format!("perf^{}/area L2(KB)", row.k)];
                let mut slice_row = vec![format!("perf^{}/area slices", row.k)];
                for shape in &row.per_phase {
                    cache_row.push(shape.l2_kb().to_string());
                    slice_row.push(shape.slices.to_string());
                }
                cache_row.push(format!(
                    "static {}KB/{}s",
                    row.static_best.l2_kb(),
                    row.static_best.slices
                ));
                slice_row.push(format!("gain {:+.1}%", 100.0 * row.gain));
                rows.push(cache_row);
                rows.push(slice_row);
            }
            let headers = [
                "metric", "ph1", "ph2", "ph3", "ph4", "ph5", "ph6", "ph7", "ph8", "ph9", "ph10",
                "summary",
            ];
            println!("{}", render_table(&headers, &rows));
            println!(
                "paper: per-phase optima drift from large (1MB/5s) to small (64-128KB/1-2s) \
                 configurations; dynamic gains 9.1% / 15.1% / 19.4% for k=1/2/3 with \
                 10000-cycle cache and 500-cycle slice reconfiguration costs"
            );
        },
    );
}
