//! Figure 14: utility as a function of Slice count and L2 size for gcc and
//! bzip under Utility1 and Utility2 — peaks move with both the workload
//! and the utility function.

use sharing_bench::{run_experiment, standard_suite, BUDGET};
use sharing_core::VCoreShape;
use sharing_market::{optimize, Market, UtilityFn};
use sharing_trace::Benchmark;

const BANK_STEPS: [usize; 9] = [0, 1, 2, 4, 8, 16, 32, 64, 128];

fn main() {
    run_experiment(
        "fig14_utility_surfaces",
        "Figure 14 (utility surfaces for bzip/gcc × Utility1/Utility2)",
        || {
            let suite = standard_suite();
            for bench in [Benchmark::Gcc, Benchmark::Bzip] {
                for utility in [UtilityFn::Throughput, UtilityFn::Balanced] {
                    let surf = suite.surface(bench);
                    println!(
                        "\n{bench} under {utility} (rows: L2 banks log2 scale; cols: slices 1..8)"
                    );
                    // Normalize so the peak is 1.0, like reading a heatmap.
                    let peak = optimize::best_utility(surf, utility, &Market::MARKET2, BUDGET);
                    for &banks in BANK_STEPS.iter().rev() {
                        print!("{:5}KB |", banks * 64);
                        for s in 1..=8 {
                            let shape = VCoreShape::new(s, banks).expect("valid");
                            let u = optimize::utility_at(
                                surf,
                                shape,
                                utility,
                                &Market::MARKET2,
                                BUDGET,
                            );
                            print!(" {:5.2}", u / peak.value);
                        }
                        println!();
                    }
                    println!(
                        "peak: {} ({}KB, {} slices)",
                        utility,
                        peak.shape.l2_kb(),
                        peak.shape.slices
                    );
                }
            }
            println!(
                "\npaper shape: changing either the utility function or the workload moves \
                 the peak substantially (paper: bzip Utility2 peaks at 256KB/1 Slice, gcc \
                 Utility2 at 512KB/4 Slices)"
            );
        },
    );
}
