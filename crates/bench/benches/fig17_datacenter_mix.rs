//! Figure 17: utility of hmmer/gobmk application mixes across big/small
//! datacenter core ratios.

use sharing_area::AreaModel;
use sharing_bench::{render_table, run_experiment, standard_suite, write_csv};
use sharing_market::datacenter;
use sharing_trace::Benchmark;

fn main() {
    run_experiment(
        "fig17_datacenter_mix",
        "Figure 17 (hmmer/gobmk utility vs big:small core ratio)",
        || {
            let suite = standard_suite();
            let study = datacenter::run_study(
                &suite,
                Benchmark::Hmmer,
                Benchmark::Gobmk,
                &AreaModel::paper(),
            );
            println!(
                "big core: {} ({}KB)   small core: {} ({}KB)",
                datacenter::big_core(),
                datacenter::big_core().l2_kb(),
                datacenter::small_core(),
                datacenter::small_core().l2_kb()
            );
            let headers: Vec<String> = std::iter::once("hmmer share".to_string())
                .chain(study.big_fracs.iter().map(|f| format!("big={f:.2}")))
                .collect();
            let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
            let rows: Vec<Vec<String>> = study
                .points
                .iter()
                .map(|row| {
                    let best = row
                        .iter()
                        .map(|p| p.throughput_per_area)
                        .fold(f64::MIN, f64::max);
                    std::iter::once(format!("{:.2}", row[0].app_a_frac))
                        .chain(row.iter().map(|p| {
                            let mark = if p.throughput_per_area == best {
                                "*"
                            } else {
                                " "
                            };
                            format!("{:.4}{mark}", p.throughput_per_area)
                        }))
                        .collect()
                })
                .collect();
            println!("{}", render_table(&header_refs, &rows));
            write_csv("fig17_datacenter_mix", &header_refs, &rows);
            println!("(*) best core ratio for that application mix");
            println!("\noptimal big-core area fraction per mix:");
            for (mix, ratio) in study.optimal_ratio_per_mix() {
                println!("  hmmer share {mix:.2} → big fraction {ratio:.2}");
            }
            println!(
                "no single ratio optimal for all mixes: {}   (paper: \"a fixed mixture of \
                 big and small cores cannot always optimally service heterogeneous \
                 workloads\")",
                study.no_single_ratio_is_optimal()
            );
        },
    );
}
