//! Figure 11: area decomposition including one 64 KB L2 bank.

use sharing_area::AreaModel;
use sharing_bench::{render_table, run_experiment};

fn main() {
    run_experiment(
        "fig11_area",
        "Figure 11 (Slice + 64KB L2 bank area breakdown)",
        || {
            let model = AreaModel::paper();
            let (comps, bank_share) = model.with_bank_fractions();
            let mut rows: Vec<Vec<String>> = vec![vec![
                "64KB 4-way L2 bank".to_string(),
                format!("{:.1}%", 100.0 * bank_share),
            ]];
            rows.extend(
                comps
                    .iter()
                    .map(|&(c, f)| vec![c.name().to_string(), format!("{:.1}%", 100.0 * f)]),
            );
            let overhead: f64 = comps
                .iter()
                .filter(|(c, _)| c.is_sharing_overhead())
                .map(|(_, f)| f)
                .sum();
            rows.push(vec![
                "Sharing overhead subtotal".to_string(),
                format!("{:.1}%", 100.0 * overhead),
            ]);
            println!(
                "{}",
                render_table(&["component", "share of Slice+bank"], &rows)
            );
            println!("paper: L2 35%, L1s 16%+16%, sharing overhead 5%");
        },
    );
}
