//! Ablation: bank-granular L2 assignment (the Sharing Architecture) vs
//! way-partitioning a fixed shared LLC (the §6 related-work baseline).
//!
//! Two co-scheduled tenants with different working sets receive capacity
//! under each scheme. Way-partitioning isolates them inside one fixed
//! array; bank assignment isolates them *and* lets the provider change the
//! total capacity each tenant owns — the "flexible LLC" the paper claims
//! as an additive benefit.

use sharing_bench::{render_table, run_experiment};
use sharing_cache::{partition::WayPartitionedCache, CacheGeometry, SetAssocCache};

/// A tenant cyclically walking a working set of `lines` cache lines.
fn stream(lines: u64, passes: usize) -> Vec<u64> {
    (0..passes).flat_map(|_| 0..lines).collect()
}

fn run_way_partitioned(quota_a: u32, a: &[u64], b: &[u64]) -> (f64, f64) {
    // 64 sets × 8 ways = 512 lines of shared LLC.
    let mut llc =
        WayPartitionedCache::new(64, 8, vec![quota_a, 8 - quota_a]).expect("quotas fit the array");
    let mut ia = a.iter();
    let mut ib = b.iter();
    // Interleave the two tenants' accesses.
    loop {
        let na = ia.next();
        let nb = ib.next();
        if let Some(&line) = na {
            let _ = llc.access(0, line, false);
        }
        if let Some(&line) = nb {
            // Tenant B's addresses offset so the streams are disjoint.
            let _ = llc.access(1, line + 1_000_000, false);
        }
        if na.is_none() && nb.is_none() {
            break;
        }
    }
    (
        llc.stats(0).expect("tenant 0").miss_rate(),
        llc.stats(1).expect("tenant 1").miss_rate(),
    )
}

fn run_bank_assigned(lines_a: u64, a: &[u64], b: &[u64], total_lines: u64) -> (f64, f64) {
    // The same total capacity, split at bank granularity: each tenant gets
    // a private set-associative region sized by their share.
    let mk = |lines: u64| {
        let bytes = (lines.max(8) * 64).next_power_of_two();
        SetAssocCache::new(CacheGeometry::new(bytes, 64, 4).expect("valid geometry"))
    };
    let mut ca = mk(lines_a);
    let mut cb = mk(total_lines - lines_a);
    for &line in a {
        ca.access(line, false);
    }
    for &line in b {
        cb.access(line + 1_000_000, false);
    }
    (ca.stats().miss_rate(), cb.stats().miss_rate())
}

fn main() {
    run_experiment(
        "ablation_llc_partition",
        "§6 related work: flexible (bank) LLC vs way-partitioned shared LLC",
        || {
            // Tenant A cycles 48 lines (fits a small share); tenant B
            // cycles 320 lines (needs most of the array to hit at all).
            let a = stream(48, 8);
            let b = stream(320, 8);
            let mut rows = Vec::new();
            for quota_a in [1u32, 2, 4, 6] {
                let (wa, wb) = run_way_partitioned(quota_a, &a, &b);
                // Equivalent bank split of the same 512 lines.
                let lines_a = u64::from(quota_a) * 64;
                let (ba, bb) = run_bank_assigned(lines_a, &a, &b, 512);
                rows.push(vec![
                    format!("{quota_a}/8 ways ≙ {lines_a} lines"),
                    format!("{:.1}% / {:.1}%", 100.0 * wa, 100.0 * wb),
                    format!("{:.1}% / {:.1}%", 100.0 * ba, 100.0 * bb),
                ]);
            }
            println!(
                "{}",
                render_table(
                    &[
                        "capacity split (A/total)",
                        "way-partition miss A/B",
                        "bank-assign miss A/B"
                    ],
                    &rows
                )
            );
            // The move way-partitioning cannot make: give tenant B *more
            // than the whole shared array* by assigning extra banks.
            let (_, b_big) = run_bank_assigned(64, &a, &b, 64 + 512);
            println!(
                "bank assignment can also grow tenant B beyond the fixed array: \
                 miss {:.1}% with 512 private lines (way-partitioning is capped at 8/8 ways)",
                100.0 * b_big
            );
            println!(
                "paper: \"The Sharing Architecture builds upon this work by providing a \
                 flexible LLC along with the additive benefits of ALU configuration.\""
            );
        },
    );
}
