//! Figure 13: performance scaling with L2 cache size at a fixed 2-Slice
//! VCore, normalized to the no-L2 configuration.

use sharing_bench::{render_table, run_experiment, standard_suite, write_csv};
use sharing_core::VCoreShape;

const BANKS: [usize; 9] = [0, 1, 2, 4, 8, 16, 32, 64, 128];

fn main() {
    run_experiment(
        "fig13_cache_sensitivity",
        "Figure 13 (speedup vs L2 size, 2 Slices, normalized to 0KB)",
        || {
            let suite = standard_suite();
            let base_shape = VCoreShape::new(2, 0).expect("2 Slices / no L2");
            let mut rows = Vec::new();
            for (b, surf) in suite.iter() {
                let base = surf.perf(base_shape);
                let mut row = vec![b.name().to_string()];
                for &banks in &BANKS {
                    let shape = VCoreShape::new(2, banks).expect("valid");
                    row.push(format!("{:.2}", surf.perf(shape) / base));
                }
                rows.push(row);
            }
            println!(
                "{}",
                render_table(
                    &[
                        "benchmark",
                        "0KB",
                        "64K",
                        "128K",
                        "256K",
                        "512K",
                        "1M",
                        "2M",
                        "4M",
                        "8M"
                    ],
                    &rows
                )
            );
            write_csv(
                "fig13_cache_sensitivity",
                &[
                    "benchmark",
                    "0KB",
                    "64K",
                    "128K",
                    "256K",
                    "512K",
                    "1M",
                    "2M",
                    "4M",
                    "8M",
                ],
                &rows,
            );
            println!(
                "paper shape: omnetpp/mcf strongly cache-sensitive; astar/libquantum/gobmk \
                 flat; very large caches can lose (2 cycles per extra 256KB of distance)"
            );
        },
    );
}
