//! Table 6: optimal VCore configurations under three markets × three
//! utility functions.

use sharing_bench::{render_table, run_experiment, standard_suite, BUDGET};
use sharing_market::{optimize::best_utility, Market, UtilityFn};

fn main() {
    run_experiment(
        "table6_markets",
        "Table 6 (optimal configs in Markets 1–3 for Utilities 1–3)",
        || {
            let suite = standard_suite();
            for market in Market::ALL {
                println!("\n{market}");
                let mut rows = Vec::new();
                for (b, surf) in suite.iter() {
                    let mut row = vec![b.name().to_string()];
                    for u in [
                        UtilityFn::Throughput,
                        UtilityFn::Balanced,
                        UtilityFn::LatencyCritical,
                    ] {
                        let c = best_utility(surf, u, &market, BUDGET);
                        row.push(format!("{}KB/{}s", c.shape.l2_kb(), c.shape.slices));
                    }
                    rows.push(row);
                }
                println!(
                    "{}",
                    render_table(&["benchmark", "Utility1", "Utility2", "Utility3"], &rows)
                );
            }
            println!(
                "paper shape: when Slices cost 4x area (Market1) optima shift toward cache; \
                 when cache costs 4x (Market3) optima shift toward Slices; higher utility \
                 exponents buy bigger cores in every market"
            );
        },
    );
}
