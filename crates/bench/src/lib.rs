//! Shared plumbing for the experiment harness.
//!
//! Every table and figure of the paper's evaluation has a bench target in
//! `benches/` (plain `harness = false` binaries, so `cargo bench` prints
//! the reproduced rows/series and a wall-clock timing). This library holds
//! what they share: the cached suite sweep, table rendering, and the
//! standard experiment parameters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sharing_market::{ExperimentSpec, SuiteSurfaces};
use std::path::PathBuf;
use std::time::Instant;

/// The budget used by all utility-based experiments (arbitrary currency;
/// every reported number is a ratio in which it cancels).
pub const BUDGET: f64 = 96.0;

/// Where the suite sweep cache lives (under the workspace `target/`).
#[must_use]
pub fn sweep_cache_path() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("target");
    p.push("sharing-sweep-cache.json");
    p
}

/// Loads (or builds and caches) the standard suite sweep: every benchmark
/// at every `(slices, cache)` shape of the paper's Equation 3 grid.
#[must_use]
pub fn standard_suite() -> SuiteSurfaces {
    let spec = ExperimentSpec::standard();
    let path = sweep_cache_path();
    let t = Instant::now();
    let suite = SuiteSurfaces::build_or_load(spec, &path);
    eprintln!(
        "[sweep: {} benchmarks × 72 shapes ready in {:.1?}; cache: {}]",
        suite.benchmarks().len(),
        t.elapsed(),
        path.display()
    );
    suite
}

/// Renders an aligned text table.
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| (*s).to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Writes an experiment's data series as CSV under
/// `target/experiments/<name>.csv`, so every figure is available as a
/// plottable artifact, not just a printed table. Returns the path written,
/// or `None` if the filesystem refused (the experiment still prints).
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> Option<PathBuf> {
    let mut dir = sweep_cache_path();
    dir.pop();
    dir.push("experiments");
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("{name}.csv"));
    let mut text = headers.join(",");
    text.push('\n');
    for row in rows {
        // Values are simple identifiers/numbers; quote anything with a comma.
        let line: Vec<String> = row
            .iter()
            .map(|c| {
                if c.contains(',') {
                    format!("\"{c}\"")
                } else {
                    c.clone()
                }
            })
            .collect();
        text.push_str(&line.join(","));
        text.push('\n');
    }
    std::fs::write(&path, text).ok()?;
    eprintln!("[wrote {}]", path.display());
    Some(path)
}

/// Runs an experiment body with a banner and timing footer — the common
/// shape of every bench target.
pub fn run_experiment(name: &str, paper_ref: &str, body: impl FnOnce()) {
    println!("==================================================================");
    println!("{name}  —  reproducing {paper_ref}");
    println!("==================================================================");
    let t = Instant::now();
    body();
    println!("[{name} completed in {:.2?}]", t.elapsed());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns_columns() {
        let s = render_table(
            &["a", "bench"],
            &[
                vec!["1".into(), "x".into()],
                vec!["100".into(), "hello".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bench"));
        assert!(lines[3].ends_with("hello"));
        // All rows share a width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn cache_path_is_under_target() {
        let p = sweep_cache_path();
        assert!(p.to_string_lossy().contains("target"));
        assert!(p.extension().is_some_and(|e| e == "json"));
    }

    #[test]
    fn run_experiment_invokes_body() {
        let mut ran = false;
        run_experiment("t", "nothing", || ran = true);
        assert!(ran);
    }

    #[test]
    fn csv_export_roundtrips() {
        let path = write_csv(
            "unit-test-export",
            &["a", "b"],
            &[vec!["1".into(), "x,y".into()], vec!["2".into(), "z".into()]],
        )
        .expect("target/ is writable in tests");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,\"x,y\"\n2,z\n");
        let _ = std::fs::remove_file(path);
    }
}
