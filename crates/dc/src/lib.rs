//! # sharing-dc — a discrete-event datacenter for the sub-core market
//!
//! The paper's economic results (§2, §5.6, Tables 4/6) are one-shot
//! optimizations: given a budget and a price sheet, what shape does each
//! customer buy? This crate turns that static story into the dynamic
//! cloud the paper assumes — a deterministic discrete-event simulator in
//! the CloudSim tradition where tenants *arrive*, *bid*, *run*, and
//! *leave*:
//!
//! * a seeded [`events::EventQueue`] drives tenant lifecycles drawn from
//!   a JSON [`Scenario`] (arrival bursts, budgets, utility functions,
//!   workload mix);
//! * every epoch the market clears through
//!   `sharing-market`'s tâtonnement auction, producing a **spot-price
//!   time series**;
//! * allocations are placed on a multi-chip `sharing-hv` [`Cloud`] with
//!   the paper's 500 / 10 000-cycle reconfiguration costs charged
//!   whenever the market moves a tenant between shapes;
//! * per-config performance comes from cached `sharing-core` sweeps (or
//!   synthetic surfaces), so the event loop never blocks on cycle-level
//!   simulation;
//! * revenue is metered through `sharing-hv`'s [`Ledger`] and compared
//!   against a fixed-instance provider billing the *same* tenant trace.
//!
//! Determinism is a contract: the same `(scenario, mode, seed)` yields
//! byte-identical event logs and CSV, hashed so remote runs (via ssimd)
//! can be checked cheaply.
//!
//! [`Cloud`]: sharing_hv::cloud::Cloud
//! [`Ledger`]: sharing_hv::billing::Ledger

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod scenario;
pub mod sim;

pub use scenario::{
    ArrivalSpec, AuctionSpec, Scenario, ShapeSpec, SurfaceSpec, TariffSpec, TenantSpec,
};
pub use sim::{
    fnv64, BillingMode, Comparison, DcOutcome, DcSim, EpochRecord, SurfaceCatalog, Totals,
};
