//! The deterministic discrete-event queue.
//!
//! Events are ordered by `(time, class, seq)`: earlier cycles first, then
//! a fixed class order at equal times (departures before the epoch
//! clearing that would otherwise re-bill them, arrivals after it, the end
//! marker last), then insertion order. Every tie is broken
//! deterministically, which is what makes a whole run replayable from a
//! single seed.

use sharing_market::UtilityFn;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A tenant drawn by the arrival process, before it joins the resident
/// population.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSpawn {
    /// Stable tenant id (assigned in arrival order).
    pub id: u64,
    /// Index into the scenario's surface catalog.
    pub bench: usize,
    /// The tenant's utility function.
    pub utility: UtilityFn,
    /// Per-epoch budget.
    pub budget: f64,
    /// Residence in epochs once arrived.
    pub residence: usize,
}

/// What happens at an event.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A tenant leaves, releasing its VCores.
    Depart {
        /// The departing tenant's id.
        tenant: u64,
    },
    /// The market clears for one epoch: auction, placement, metering.
    EpochClear {
        /// Epoch index.
        epoch: usize,
    },
    /// A tenant arrives and waits for the next clearing.
    Arrive(TenantSpawn),
    /// End of the simulated horizon.
    End,
}

impl EventKind {
    /// Class rank used to order simultaneous events.
    fn class(&self) -> u8 {
        match self {
            EventKind::Depart { .. } => 0,
            EventKind::EpochClear { .. } => 1,
            EventKind::Arrive(_) => 2,
            EventKind::End => 3,
        }
    }
}

/// One scheduled event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Absolute cycle the event fires at.
    pub time: u64,
    seq: u64,
    /// The event payload.
    pub kind: EventKind,
}

impl Event {
    fn key(&self) -> (u64, u8, u64) {
        (self.time, self.kind.class(), self.seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    // Reversed so the std max-heap pops the *earliest* event.
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

/// A seeded min-queue of events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules an event at an absolute cycle.
    pub fn push(&mut self, time: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Pops the next event in deterministic order.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Events still pending.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, EventKind::End);
        q.push(10, EventKind::Depart { tenant: 1 });
        q.push(20, EventKind::EpochClear { epoch: 2 });
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn class_breaks_ties_departure_before_clear_before_arrival() {
        let mut q = EventQueue::new();
        let spawn = TenantSpawn {
            id: 7,
            bench: 0,
            utility: UtilityFn::Balanced,
            budget: 10.0,
            residence: 2,
        };
        q.push(100, EventKind::Arrive(spawn));
        q.push(100, EventKind::EpochClear { epoch: 1 });
        q.push(100, EventKind::Depart { tenant: 3 });
        assert!(matches!(q.pop().unwrap().kind, EventKind::Depart { .. }));
        assert!(matches!(
            q.pop().unwrap().kind,
            EventKind::EpochClear { .. }
        ));
        assert!(matches!(q.pop().unwrap().kind, EventKind::Arrive(_)));
    }

    #[test]
    fn insertion_order_breaks_remaining_ties() {
        let mut q = EventQueue::new();
        q.push(5, EventKind::Depart { tenant: 1 });
        q.push(5, EventKind::Depart { tenant: 2 });
        q.push(5, EventKind::Depart { tenant: 3 });
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Depart { tenant } => tenant,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, EventKind::End);
        assert_eq!(q.len(), 1);
        let _ = q.pop();
        assert!(q.is_empty());
    }
}
