//! The discrete-event datacenter engine.
//!
//! A [`DcSim`] replays a seeded tenant trace against a [`Cloud`] of
//! Sharing Architecture chips. Every `epoch_cycles` cycles the market
//! clears: under [`BillingMode::Sharing`] the resident tenants bid in a
//! tâtonnement auction (`sharing-market`), take the shapes and VCore
//! counts their budgets buy at the clearing prices, and pay the paper's
//! reconfiguration costs when the market moves them; under
//! [`BillingMode::Fixed`] every tenant rents as many copies of one fixed
//! instance shape as its budget covers at a flat tariff. Both modes share
//! the *same* arrival trace for a given seed, so their revenue, utility,
//! and fragmentation series are directly comparable.
//!
//! Per-config performance comes from a [`SurfaceCatalog`] built once up
//! front — calibrated `sharing-core` sweeps or synthetic surfaces — so
//! the event loop never blocks on cycle-level simulation.

use crate::events::{EventKind, EventQueue, TenantSpawn};
use crate::scenario::Scenario;
use sharing_core::{ReconfigCosts, VCoreShape};
use sharing_hv::billing::{Ledger, Tariff};
use sharing_hv::cloud::{Cloud, CloudLease};
use sharing_json::json_struct;
use sharing_market::auction::{Auction, Bidder};
use sharing_market::utility::ALL_UTILITIES;
use sharing_market::{ExperimentSpec, Market, PerfSurface, SuiteSurfaces};
use sharing_trace::rng::Rng64;
use sharing_trace::Benchmark;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// FNV-1a over bytes; used for synthetic surface shaping and log hashing.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-workload performance surfaces, resolved before the event loop
/// starts.
#[derive(Clone, Debug)]
pub struct SurfaceCatalog {
    entries: Vec<PerfSurface>,
}

impl SurfaceCatalog {
    /// Builds the catalog a scenario asks for.
    ///
    /// # Errors
    ///
    /// Returns a message when the scenario names an unknown source or,
    /// for calibrated surfaces, an unknown benchmark.
    pub fn build(sc: &Scenario) -> Result<Self, String> {
        let names = sc.tenants.benchmark_names();
        let entries = match sc.surfaces.source.as_str() {
            "synthetic" => names.iter().map(|n| Self::synthetic(n)).collect(),
            "calibrated" => {
                let benches: Vec<Benchmark> = names
                    .iter()
                    .map(|n| {
                        Benchmark::from_name(n).ok_or_else(|| format!("unknown benchmark `{n}`"))
                    })
                    .collect::<Result<_, String>>()?;
                let spec = ExperimentSpec {
                    trace_len: sc.surfaces.trace_len,
                    seed: sc.surfaces.sweep_seed,
                    calibration: sharing_trace::CALIBRATION_VERSION,
                };
                let suite = SuiteSurfaces::build_subset(spec, &benches);
                benches.iter().map(|&b| suite.surface(b).clone()).collect()
            }
            other => return Err(format!("unknown surface source `{other}`")),
        };
        Ok(SurfaceCatalog { entries })
    }

    /// A smooth synthetic `P(c, s)` whose Slice- and cache-affinity are
    /// derived from the workload's name, so different names yield
    /// differently shaped tenants (which is what gives the market
    /// something to arbitrage).
    #[must_use]
    pub fn synthetic(name: &str) -> PerfSurface {
        let h = fnv64(name.as_bytes());
        let slice_love = 0.3 + 1.7 * ((h >> 8) & 0xFFFF) as f64 / 65535.0;
        let cache_love = 0.3 + 2.2 * ((h >> 24) & 0xFFFF) as f64 / 65535.0;
        PerfSurface::from_fn(name, move |s| {
            (1.0 + slice_love * (s.slices as f64).ln())
                * (1.0 + cache_love * (1.0 + s.l2_banks as f64).ln() / 4.0)
        })
    }

    /// The surface at a catalog index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[must_use]
    pub fn surface(&self, index: usize) -> &PerfSurface {
        &self.entries[index]
    }

    /// The workload name at a catalog index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[must_use]
    pub fn name(&self, index: usize) -> &str {
        self.entries[index].name()
    }

    /// Number of workloads.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Which billing regime a run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BillingMode {
    /// Epoch auctions over Slices and banks (the paper's market).
    Sharing,
    /// One fixed instance shape at a flat tariff.
    Fixed,
}

impl BillingMode {
    /// The mode's lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BillingMode::Sharing => "sharing",
            BillingMode::Fixed => "fixed",
        }
    }

    /// Parses a mode name.
    ///
    /// # Errors
    ///
    /// Returns a message for anything but `sharing` / `fixed`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "sharing" => Ok(BillingMode::Sharing),
            "fixed" => Ok(BillingMode::Fixed),
            other => Err(format!(
                "unknown mode `{other}` (expected sharing or fixed)"
            )),
        }
    }
}

/// One epoch's metered outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochRecord {
    /// Epoch index.
    pub epoch: usize,
    /// Residents at clearing time.
    pub tenants: usize,
    /// Per-Slice price this epoch.
    pub slice_price: f64,
    /// Per-bank price this epoch.
    pub bank_price: f64,
    /// Revenue metered this epoch.
    pub revenue: f64,
    /// Counterfactual fixed-instance revenue for the same leases.
    pub fixed_instance_revenue: f64,
    /// Aggregate tenant utility realized this epoch.
    pub utility: f64,
    /// VCores placed.
    pub placed_vcores: usize,
    /// VCores wanted but denied by placement.
    pub denied_vcores: usize,
    /// Tenants whose budget bought less than one VCore.
    pub priced_out: usize,
    /// Reconfiguration cycles charged this epoch.
    pub reconfig_cycles: u64,
    /// Mean Slice utilization across chips.
    pub slice_utilization: f64,
    /// Mean Slice fragmentation across chips.
    pub fragmentation: f64,
}

/// Whole-run totals (the server's reply payload for dc jobs).
#[derive(Clone, Debug, PartialEq)]
pub struct Totals {
    /// Billing mode name.
    pub mode: String,
    /// Epochs simulated.
    pub epochs: usize,
    /// Tenant arrivals processed.
    pub arrivals: u64,
    /// Tenant departures processed.
    pub departures: u64,
    /// Peak resident population.
    pub peak_tenants: usize,
    /// Σ per-epoch utility.
    pub aggregate_utility: f64,
    /// Σ metered revenue.
    pub revenue: f64,
    /// Σ fixed-instance counterfactual revenue.
    pub fixed_instance_revenue: f64,
    /// Σ reconfiguration cycles charged.
    pub reconfig_cycles: u64,
    /// Σ VCore placement denials.
    pub denied_vcores: u64,
    /// Σ priced-out tenant-epochs.
    pub priced_out: u64,
    /// Mean fragmentation over epochs.
    pub mean_fragmentation: f64,
    /// Highest clearing Slice price seen.
    pub peak_slice_price: f64,
    /// FNV-1a of the event log, for remote determinism checks.
    pub log_hash: String,
}

json_struct!(Totals {
    mode,
    epochs,
    arrivals,
    departures,
    peak_tenants,
    aggregate_utility,
    revenue,
    fixed_instance_revenue,
    reconfig_cycles,
    denied_vcores,
    priced_out,
    mean_fragmentation,
    peak_slice_price,
    log_hash
});

/// The result of one run: the epoch series plus the replayable event log.
#[derive(Clone, Debug)]
pub struct DcOutcome {
    /// Billing mode of the run.
    pub mode: BillingMode,
    /// Scenario name.
    pub scenario: String,
    /// Per-epoch records, one per scenario epoch.
    pub records: Vec<EpochRecord>,
    /// Human-readable, deterministic event log.
    pub log: String,
    /// Arrivals processed.
    pub arrivals: u64,
    /// Departures processed.
    pub departures: u64,
    /// Peak resident population.
    pub peak_tenants: usize,
}

impl DcOutcome {
    /// Whole-run totals.
    #[must_use]
    pub fn totals(&self) -> Totals {
        let epochs = self.records.len();
        let mean_frag = if epochs == 0 {
            0.0
        } else {
            self.records.iter().map(|r| r.fragmentation).sum::<f64>() / epochs as f64
        };
        Totals {
            mode: self.mode.name().to_string(),
            epochs,
            arrivals: self.arrivals,
            departures: self.departures,
            peak_tenants: self.peak_tenants,
            aggregate_utility: self.records.iter().map(|r| r.utility).sum(),
            revenue: self.records.iter().map(|r| r.revenue).sum(),
            fixed_instance_revenue: self.records.iter().map(|r| r.fixed_instance_revenue).sum(),
            reconfig_cycles: self.records.iter().map(|r| r.reconfig_cycles).sum(),
            denied_vcores: self.records.iter().map(|r| r.denied_vcores as u64).sum(),
            priced_out: self.records.iter().map(|r| r.priced_out as u64).sum(),
            mean_fragmentation: mean_frag,
            peak_slice_price: self
                .records
                .iter()
                .map(|r| r.slice_price)
                .fold(0.0, f64::max),
            log_hash: self.log_hash(),
        }
    }

    /// FNV-1a hash of the event log, hex-encoded.
    #[must_use]
    pub fn log_hash(&self) -> String {
        format!("{:016x}", fnv64(self.log.as_bytes()))
    }

    /// The epoch series as CSV (deterministic formatting).
    #[must_use]
    pub fn csv(&self) -> String {
        let mut out = String::from(
            "epoch,tenants,slice_price,bank_price,revenue,fixed_instance_revenue,utility,\
             placed_vcores,denied_vcores,priced_out,reconfig_cycles,slice_utilization,\
             fragmentation\n",
        );
        for r in &self.records {
            let _ = writeln!(
                out,
                "{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{},{},{},{},{:.6},{:.6}",
                r.epoch,
                r.tenants,
                r.slice_price,
                r.bank_price,
                r.revenue,
                r.fixed_instance_revenue,
                r.utility,
                r.placed_vcores,
                r.denied_vcores,
                r.priced_out,
                r.reconfig_cycles,
                r.slice_utilization,
                r.fragmentation,
            );
        }
        out
    }

    /// A short human summary of the run.
    #[must_use]
    pub fn summary(&self) -> String {
        let t = self.totals();
        format!(
            "{} [{}]: {} epochs, {} arrivals ({} peak residents), \
             utility {:.1}, revenue {:.1}, {} denied VCores, \
             {} reconfig cycles, mean fragmentation {:.3}",
            self.scenario,
            t.mode,
            t.epochs,
            t.arrivals,
            t.peak_tenants,
            t.aggregate_utility,
            t.revenue,
            t.denied_vcores,
            t.reconfig_cycles,
            t.mean_fragmentation,
        )
    }
}

/// Sharing-vs-fixed outcomes over the *same* seeded arrival trace.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// The spot-market run.
    pub sharing: DcOutcome,
    /// The fixed-instance run.
    pub fixed: DcOutcome,
}

impl Comparison {
    /// Aggregate-utility ratio, sharing over fixed.
    #[must_use]
    pub fn utility_gain(&self) -> f64 {
        let s = self.sharing.totals().aggregate_utility;
        let f = self.fixed.totals().aggregate_utility;
        if f > 0.0 {
            s / f
        } else if s > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }

    /// Revenue ratio, sharing over fixed.
    #[must_use]
    pub fn revenue_ratio(&self) -> f64 {
        let s = self.sharing.totals().revenue;
        let f = self.fixed.totals().revenue;
        if f > 0.0 {
            s / f
        } else {
            1.0
        }
    }

    /// A side-by-side text summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let s = self.sharing.totals();
        let f = self.fixed.totals();
        let mut out = String::new();
        let _ = writeln!(out, "{:<24} {:>14} {:>14}", "metric", "sharing", "fixed");
        let mut row = |name: &str, a: f64, b: f64| {
            let _ = writeln!(out, "{name:<24} {a:>14.2} {b:>14.2}");
        };
        row(
            "aggregate utility",
            s.aggregate_utility,
            f.aggregate_utility,
        );
        row("revenue", s.revenue, f.revenue);
        row(
            "fixed counterfactual",
            s.fixed_instance_revenue,
            f.fixed_instance_revenue,
        );
        row(
            "denied vcores",
            s.denied_vcores as f64,
            f.denied_vcores as f64,
        );
        row(
            "priced-out epochs",
            s.priced_out as f64,
            f.priced_out as f64,
        );
        row(
            "reconfig cycles",
            s.reconfig_cycles as f64,
            f.reconfig_cycles as f64,
        );
        row(
            "mean fragmentation",
            s.mean_fragmentation,
            f.mean_fragmentation,
        );
        row("peak slice price", s.peak_slice_price, f.peak_slice_price);
        let _ = writeln!(
            out,
            "utility gain {:.3}x, revenue ratio {:.3}x",
            self.utility_gain(),
            self.revenue_ratio()
        );
        out
    }
}

/// A resident tenant.
#[derive(Clone, Debug)]
struct Tenant {
    spawn: TenantSpawn,
    arrived_epoch: usize,
    shape: Option<VCoreShape>,
    leases: Vec<CloudLease>,
}

/// Poisson sample via Knuth's product method (fine for the per-epoch
/// rates scenarios use).
fn poisson(rng: &mut Rng64, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.f64();
        if p <= limit || k > 10_000 {
            return k;
        }
        k += 1;
    }
}

/// Geometric residence with the given mean, capped at `cap` epochs.
fn geometric(rng: &mut Rng64, mean: f64, cap: usize) -> usize {
    let p = 1.0 / mean.max(1.0);
    let mut r = 1usize;
    while r < cap && !rng.bool(p) {
        r += 1;
    }
    r
}

/// The datacenter simulator: a validated scenario plus its resolved
/// surface catalog.
///
/// # Example
///
/// ```
/// use sharing_dc::{BillingMode, DcSim, Scenario};
///
/// let mut sc = Scenario::example_bursty();
/// sc.epochs = 8; // keep the doctest fast
/// let sim = DcSim::new(sc)?;
/// let outcome = sim.run(BillingMode::Sharing, 42);
/// assert_eq!(outcome.records.len(), 8);
/// # Ok::<(), String>(())
/// ```
#[derive(Clone, Debug)]
pub struct DcSim {
    scenario: Scenario,
    catalog: SurfaceCatalog,
}

impl DcSim {
    /// Validates the scenario and resolves its performance surfaces
    /// (calibrated sweeps run here, once, not inside the event loop).
    ///
    /// # Errors
    ///
    /// Returns the first validation or catalog problem.
    pub fn new(scenario: Scenario) -> Result<Self, String> {
        scenario.validate()?;
        let catalog = SurfaceCatalog::build(&scenario)?;
        let fixed = scenario.fixed_instance.to_shape()?;
        for i in 0..catalog.len() {
            if catalog.surface(i).get(fixed).is_none() {
                return Err(format!(
                    "surface `{}` does not cover the fixed instance {fixed}",
                    catalog.name(i)
                ));
            }
        }
        Ok(DcSim { scenario, catalog })
    }

    /// The validated scenario.
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The resolved surface catalog.
    #[must_use]
    pub fn catalog(&self) -> &SurfaceCatalog {
        &self.catalog
    }

    /// Pre-generates the seeded event trace. All randomness is consumed
    /// here, before the clock starts, so [`BillingMode::Sharing`] and
    /// [`BillingMode::Fixed`] replay the *same* tenant population.
    fn build_events(&self, seed: u64) -> EventQueue {
        let sc = &self.scenario;
        let e = sc.epoch_cycles;
        let mut rng = Rng64::seed_from_u64(seed);
        let mut queue = EventQueue::new();
        for epoch in 0..sc.epochs {
            queue.push(epoch as u64 * e, EventKind::EpochClear { epoch });
        }
        let a = &sc.arrivals;
        let burst_end = a.burst_start.saturating_add(a.burst_len);
        let mut next_id = 1u64;
        for epoch in 0..sc.epochs {
            let in_burst = epoch >= a.burst_start && epoch < burst_end;
            let rate = if in_burst { a.burst_rate } else { a.base_rate };
            for _ in 0..poisson(&mut rng, rate) {
                // Strictly inside the epoch: after this epoch's clearing,
                // before the next one.
                let offset = 1 + rng.below(e - 1);
                let spawn = TenantSpawn {
                    id: next_id,
                    bench: rng.below(self.catalog.len() as u64) as usize,
                    utility: ALL_UTILITIES[rng.below(ALL_UTILITIES.len() as u64) as usize],
                    budget: sc.tenants.budget_min
                        + rng.f64() * (sc.tenants.budget_max - sc.tenants.budget_min),
                    residence: geometric(&mut rng, a.mean_residence, sc.epochs),
                };
                next_id += 1;
                queue.push(epoch as u64 * e + offset, EventKind::Arrive(spawn));
            }
        }
        queue.push(sc.epochs as u64 * e, EventKind::End);
        queue
    }

    /// Runs the scenario under one billing mode.
    ///
    /// Bit-for-bit deterministic: the same `(scenario, mode, seed)` always
    /// produces byte-identical [`DcOutcome::log`] and [`DcOutcome::csv`].
    #[must_use]
    pub fn run(&self, mode: BillingMode, seed: u64) -> DcOutcome {
        self.run_traced(mode, seed, None)
    }

    /// [`DcSim::run`] with optional tracing: when `obs` is given, every
    /// epoch emits *logical-cycle* spans — an epoch-wide span plus one
    /// span per clearing phase (auction, placement, billing) — whose
    /// timestamps are simulated cycles and whose durations are
    /// deterministic work counts (bidders, VCores touched, chips
    /// metered). Tracing reads no clock and consumes no randomness, so
    /// the outcome (log, CSV, hash) is byte-identical with or without it.
    #[must_use]
    pub fn run_traced(
        &self,
        mode: BillingMode,
        seed: u64,
        obs: Option<&sharing_obs::TraceBuffer>,
    ) -> DcOutcome {
        let sc = &self.scenario;
        let policy = sc.placement_policy().expect("scenario validated");
        let mut engine = Engine {
            sim: self,
            mode,
            cloud: Cloud::new(sc.chips, sc.rows as u16, sc.cols as u16, policy),
            ledgers: (0..sc.chips).map(|_| Ledger::new()).collect(),
            residents: BTreeMap::new(),
            fixed_shape: sc.fixed_instance.to_shape().expect("scenario validated"),
            fixed_tariff: sc.fixed_tariff.to_tariff(),
            costs: ReconfigCosts::paper(),
            last_prices: (Market::MARKET2.slice_price, Market::MARKET2.bank_price),
            log: String::new(),
            records: Vec::with_capacity(sc.epochs),
            arrivals: 0,
            departures: 0,
            peak_tenants: 0,
            obs,
        };
        let _ = writeln!(
            engine.log,
            "# scenario={} mode={} seed={} chips={} slices/chip={} banks/chip={}",
            sc.name,
            mode.name(),
            seed,
            sc.chips,
            sc.slices_per_chip(),
            sc.banks_per_chip(),
        );
        let mut queue = self.build_events(seed);
        while let Some(ev) = queue.pop() {
            match ev.kind {
                EventKind::Arrive(spawn) => engine.on_arrive(ev.time, spawn, &mut queue),
                EventKind::Depart { tenant } => engine.on_depart(ev.time, tenant),
                EventKind::EpochClear { epoch } => engine.on_clear(ev.time, epoch),
                EventKind::End => {
                    let _ = writeln!(
                        engine.log,
                        "[t={:>12}] end: arrivals={} departures={} peak_tenants={}",
                        ev.time, engine.arrivals, engine.departures, engine.peak_tenants
                    );
                    break;
                }
            }
        }
        DcOutcome {
            mode,
            scenario: sc.name.clone(),
            records: engine.records,
            log: engine.log,
            arrivals: engine.arrivals,
            departures: engine.departures,
            peak_tenants: engine.peak_tenants,
        }
    }

    /// Runs both billing modes over the same seeded trace.
    #[must_use]
    pub fn run_comparison(&self, seed: u64) -> Comparison {
        self.run_comparison_traced(seed, None)
    }

    /// [`DcSim::run_comparison`] with optional tracing; each mode's
    /// spans land on its own track pair (see [`DcSim::run_traced`]).
    #[must_use]
    pub fn run_comparison_traced(
        &self,
        seed: u64,
        obs: Option<&sharing_obs::TraceBuffer>,
    ) -> Comparison {
        Comparison {
            sharing: self.run_traced(BillingMode::Sharing, seed, obs),
            fixed: self.run_traced(BillingMode::Fixed, seed, obs),
        }
    }
}

/// Mutable state of one run.
struct Engine<'a> {
    sim: &'a DcSim,
    mode: BillingMode,
    cloud: Cloud,
    ledgers: Vec<Ledger>,
    residents: BTreeMap<u64, Tenant>,
    fixed_shape: VCoreShape,
    fixed_tariff: Tariff,
    costs: ReconfigCosts,
    last_prices: (f64, f64),
    log: String,
    records: Vec<EpochRecord>,
    arrivals: u64,
    departures: u64,
    peak_tenants: usize,
    obs: Option<&'a sharing_obs::TraceBuffer>,
}

/// One tenant's cleared plan for an epoch.
struct Plan {
    tenant: u64,
    shape: VCoreShape,
    want: usize,
}

impl Engine<'_> {
    fn on_arrive(&mut self, time: u64, spawn: TenantSpawn, queue: &mut EventQueue) {
        let sc = &self.sim.scenario;
        let epoch = (time / sc.epoch_cycles) as usize;
        let departs = epoch + spawn.residence;
        if departs < sc.epochs {
            queue.push(
                departs as u64 * sc.epoch_cycles,
                EventKind::Depart { tenant: spawn.id },
            );
        }
        let _ = writeln!(
            self.log,
            "[t={:>12}] arrive tenant={} bench={} utility={} budget={:.2} residence={}",
            time,
            spawn.id,
            self.sim.catalog.name(spawn.bench),
            spawn.utility.name(),
            spawn.budget,
            spawn.residence
        );
        self.arrivals += 1;
        self.residents.insert(
            spawn.id,
            Tenant {
                spawn,
                arrived_epoch: epoch,
                shape: None,
                leases: Vec::new(),
            },
        );
        self.peak_tenants = self.peak_tenants.max(self.residents.len());
    }

    fn on_depart(&mut self, time: u64, tenant: u64) {
        let Some(t) = self.residents.remove(&tenant) else {
            return;
        };
        for lease in t.leases {
            let _ = self.cloud.release(lease);
        }
        self.departures += 1;
        let epoch = (time / self.sim.scenario.epoch_cycles) as usize;
        let _ = writeln!(
            self.log,
            "[t={:>12}] depart tenant={} held_epochs={}",
            time,
            tenant,
            epoch.saturating_sub(t.arrived_epoch)
        );
    }

    /// Clears the market for one epoch: price, place, charge, meter.
    fn on_clear(&mut self, time: u64, epoch: usize) {
        let mut rec = EpochRecord {
            epoch,
            tenants: self.residents.len(),
            slice_price: 0.0,
            bank_price: 0.0,
            revenue: 0.0,
            fixed_instance_revenue: 0.0,
            utility: 0.0,
            placed_vcores: 0,
            denied_vcores: 0,
            priced_out: 0,
            reconfig_cycles: 0,
            slice_utilization: 0.0,
            fragmentation: 0.0,
        };
        let (tariff, plans) = self.clear_prices(&mut rec);
        for plan in plans {
            self.apply_plan(time, &plan, &mut rec);
        }
        for (i, ledger) in self.ledgers.iter_mut().enumerate() {
            ledger.meter(self.cloud.hypervisor(i), tariff, self.fixed_shape);
            let p = ledger.periods().last().expect("just metered");
            rec.revenue += p.revenue;
            rec.fixed_instance_revenue += p.fixed_instance_revenue;
        }
        let stats = self.cloud.stats();
        let chips = stats.slice_utilization.len().max(1) as f64;
        rec.slice_utilization = stats.slice_utilization.iter().sum::<f64>() / chips;
        rec.fragmentation = stats.fragmentation.iter().sum::<f64>() / chips;
        let _ = writeln!(
            self.log,
            "[t={:>12}] epoch {:>3} clear: tenants={} slice_price={:.4} bank_price={:.4} \
             placed={} denied={} priced_out={} reconfig={} revenue={:.4} utility={:.4} \
             slice_util={:.4} frag={:.4}",
            time,
            epoch,
            rec.tenants,
            rec.slice_price,
            rec.bank_price,
            rec.placed_vcores,
            rec.denied_vcores,
            rec.priced_out,
            rec.reconfig_cycles,
            rec.revenue,
            rec.utility,
            rec.slice_utilization,
            rec.fragmentation
        );
        self.observe_epoch(time, epoch, &rec);
        self.records.push(rec);
    }

    /// Emits the epoch's logical-cycle spans, when tracing is on.
    ///
    /// Durations are deterministic work counts — bidders priced, VCores
    /// touched, chips metered — laid end to end from the clearing
    /// instant, so a trace of the run is itself replayable. Each billing
    /// mode gets its own track pair (epoch row + phase row).
    fn observe_epoch(&self, time: u64, epoch: usize, rec: &EpochRecord) {
        let Some(obs) = self.obs else { return };
        use sharing_json::Json;
        let base = match self.mode {
            BillingMode::Sharing => 0,
            BillingMode::Fixed => 10,
        };
        let d_auction = (rec.tenants as u64).max(1);
        let d_place = ((rec.placed_vcores + rec.denied_vcores) as u64).max(1);
        let d_bill = (self.ledgers.len() as u64).max(1);
        obs.record_logical(
            format!("epoch {epoch} ({})", self.mode.name()),
            "dc",
            base,
            time,
            self.sim.scenario.epoch_cycles,
            vec![
                ("mode".into(), Json::Str(self.mode.name().into())),
                ("tenants".into(), Json::Int(rec.tenants as i128)),
                ("revenue".into(), Json::Float(rec.revenue)),
                ("utility".into(), Json::Float(rec.utility)),
                ("slice_price".into(), Json::Float(rec.slice_price)),
            ],
        );
        obs.record_logical(
            "auction",
            "dc",
            base + 1,
            time,
            d_auction,
            vec![
                ("bidders".into(), Json::Int(rec.tenants as i128)),
                ("slice_price".into(), Json::Float(rec.slice_price)),
                ("bank_price".into(), Json::Float(rec.bank_price)),
            ],
        );
        obs.record_logical(
            "placement",
            "dc",
            base + 1,
            time + d_auction,
            d_place,
            vec![
                ("placed".into(), Json::Int(rec.placed_vcores as i128)),
                ("denied".into(), Json::Int(rec.denied_vcores as i128)),
                ("priced_out".into(), Json::Int(rec.priced_out as i128)),
                (
                    "reconfig_cycles".into(),
                    Json::Int(i128::from(rec.reconfig_cycles)),
                ),
            ],
        );
        obs.record_logical(
            "billing",
            "dc",
            base + 1,
            time + d_auction + d_place,
            d_bill,
            vec![
                ("chips".into(), Json::Int(self.ledgers.len() as i128)),
                ("revenue".into(), Json::Float(rec.revenue)),
            ],
        );
    }

    /// Prices the epoch and returns each resident's (shape, vcores) plan.
    fn clear_prices(&mut self, rec: &mut EpochRecord) -> (Tariff, Vec<Plan>) {
        let sc = &self.sim.scenario;
        let max_v = sc.tenants.max_vcores;
        match self.mode {
            BillingMode::Fixed => {
                let rate = self.fixed_tariff.rate(self.fixed_shape);
                rec.slice_price = self.fixed_tariff.slice_price;
                rec.bank_price = self.fixed_tariff.bank_price;
                let plans = self
                    .residents
                    .values()
                    .map(|t| Plan {
                        tenant: t.spawn.id,
                        shape: self.fixed_shape,
                        want: ((t.spawn.budget / rate).floor() as usize).min(max_v),
                    })
                    .collect();
                (self.fixed_tariff, plans)
            }
            BillingMode::Sharing => {
                if self.residents.is_empty() {
                    rec.slice_price = self.last_prices.0;
                    rec.bank_price = self.last_prices.1;
                    return (
                        Tariff {
                            slice_price: self.last_prices.0,
                            bank_price: self.last_prices.1,
                        },
                        Vec::new(),
                    );
                }
                let supply_slices = (sc.chips * sc.slices_per_chip()) as f64;
                let supply_banks = (sc.chips * sc.banks_per_chip()).max(1) as f64;
                let mut auction = Auction::new(supply_slices, supply_banks);
                for t in self.residents.values() {
                    auction.add_bidder(Bidder {
                        name: format!("t{}", t.spawn.id),
                        surface: self.sim.catalog.surface(t.spawn.bench).clone(),
                        utility: t.spawn.utility,
                        budget: t.spawn.budget,
                    });
                }
                let clearing = auction.clear(sc.auction.max_iterations, sc.auction.tolerance);
                self.last_prices = (clearing.slice_price, clearing.bank_price);
                rec.slice_price = clearing.slice_price;
                rec.bank_price = clearing.bank_price;
                // Allocations come back in bidder insertion order, which is
                // resident id order (BTreeMap iteration).
                let plans = self
                    .residents
                    .values()
                    .zip(&clearing.allocations)
                    .map(|(t, alloc)| Plan {
                        tenant: t.spawn.id,
                        shape: alloc.shape,
                        want: (alloc.vcores.floor() as usize).min(max_v),
                    })
                    .collect();
                (
                    Tariff {
                        slice_price: clearing.slice_price,
                        bank_price: clearing.bank_price,
                    },
                    plans,
                )
            }
        }
    }

    /// Applies one tenant's plan: reconfigure, place, and score utility.
    fn apply_plan(&mut self, time: u64, plan: &Plan, rec: &mut EpochRecord) {
        let sc = &self.sim.scenario;
        let t = self
            .residents
            .get_mut(&plan.tenant)
            .expect("plans come from residents");
        if plan.want == 0 {
            for lease in t.leases.drain(..) {
                let _ = self.cloud.release(lease);
            }
            t.shape = None;
            rec.priced_out += 1;
            let _ = writeln!(
                self.log,
                "[t={:>12}] priced-out tenant={} budget={:.2}",
                time, plan.tenant, t.spawn.budget
            );
            return;
        }
        let mut reconfig = 0u64;
        if t.shape == Some(plan.shape) {
            // Same shape: trim or top up without disturbing placed VCores.
            while t.leases.len() > plan.want {
                let lease = t.leases.pop().expect("len checked");
                let _ = self.cloud.release(lease);
            }
            while t.leases.len() < plan.want {
                match self.cloud.lease(plan.shape) {
                    Ok(lease) => t.leases.push(lease),
                    Err(_) => break,
                }
            }
        } else {
            if let Some(old) = t.shape {
                if !t.leases.is_empty() {
                    reconfig = self.costs.cost(old, plan.shape);
                    let _ = writeln!(
                        self.log,
                        "[t={:>12}] reconfig tenant={} {} -> {} cost={}",
                        time, plan.tenant, old, plan.shape, reconfig
                    );
                }
            }
            for lease in t.leases.drain(..) {
                let _ = self.cloud.release(lease);
            }
            t.shape = Some(plan.shape);
            while t.leases.len() < plan.want {
                match self.cloud.lease(plan.shape) {
                    Ok(lease) => t.leases.push(lease),
                    Err(_) => break,
                }
            }
        }
        let placed = t.leases.len();
        if placed < plan.want {
            rec.denied_vcores += plan.want - placed;
            let _ = writeln!(
                self.log,
                "[t={:>12}] deny tenant={} shape={} placed={} of {}",
                time, plan.tenant, plan.shape, placed, plan.want
            );
        }
        rec.placed_vcores += placed;
        rec.reconfig_cycles += reconfig;
        // Reconfiguration eats into the epoch the tenant can actually run.
        let active = 1.0 - (reconfig as f64 / sc.epoch_cycles as f64).min(1.0);
        let perf = self.sim.catalog.surface(t.spawn.bench).perf(plan.shape);
        rec.utility += t.spawn.utility.evaluate(perf, placed as f64) * active;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_scenario() -> Scenario {
        let mut sc = Scenario::example_bursty();
        sc.name = "test-small".to_string();
        sc.chips = 2;
        sc.rows = 4;
        sc.cols = 8; // 16 slices + 16 banks per chip
        sc.epochs = 12;
        sc.epoch_cycles = 10_000;
        sc.arrivals.base_rate = 1.0;
        sc.arrivals.burst_rate = 4.0;
        sc.arrivals.burst_start = 4;
        sc.arrivals.burst_len = 4;
        sc.arrivals.mean_residence = 4.0;
        sc.tenants.budget_min = 30.0;
        sc.tenants.budget_max = 90.0;
        sc.tenants.max_vcores = 2;
        sc
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let sim = DcSim::new(small_scenario()).unwrap();
        for mode in [BillingMode::Sharing, BillingMode::Fixed] {
            let a = sim.run(mode, 2014);
            let b = sim.run(mode, 2014);
            assert_eq!(a.log, b.log, "{} log must replay", mode.name());
            assert_eq!(a.csv(), b.csv(), "{} csv must replay", mode.name());
            assert_eq!(a.log_hash(), b.log_hash());
        }
    }

    #[test]
    fn tracing_leaves_outputs_byte_identical() {
        let sim = DcSim::new(small_scenario()).unwrap();
        let obs = sharing_obs::TraceBuffer::new();
        for mode in [BillingMode::Sharing, BillingMode::Fixed] {
            let plain = sim.run(mode, 2014);
            let traced = sim.run_traced(mode, 2014, Some(&obs));
            assert_eq!(plain.log, traced.log, "{} log must not move", mode.name());
            assert_eq!(
                plain.csv(),
                traced.csv(),
                "{} csv must not move",
                mode.name()
            );
        }
    }

    #[test]
    fn traced_run_spans_every_epoch_phase() {
        let sim = DcSim::new(small_scenario()).unwrap();
        let obs = sharing_obs::TraceBuffer::new();
        let out = sim.run_traced(BillingMode::Sharing, 5, Some(&obs));
        let events = obs.snapshot();
        for phase in ["auction", "placement", "billing"] {
            let spans: Vec<_> = events.iter().filter(|e| e.name == phase).collect();
            assert_eq!(spans.len(), out.records.len(), "one {phase} span per epoch");
            assert!(spans
                .iter()
                .all(|e| e.clock == sharing_obs::Clock::Logical && e.dur >= 1));
        }
        // Epoch spans carry cycle timestamps on the logical clock.
        let epochs: Vec<_> = events
            .iter()
            .filter(|e| e.name.starts_with("epoch "))
            .collect();
        assert_eq!(epochs.len(), out.records.len());
        for (i, e) in epochs.iter().enumerate() {
            assert_eq!(e.ts, i as u64 * sim.scenario().epoch_cycles);
        }
        // The trace exports as valid Chrome trace JSON.
        let json = sharing_json::Json::parse(&obs.to_chrome_json()).unwrap();
        assert!(json.get("traceEvents").and_then(|t| t.as_arr()).is_some());
    }

    #[test]
    fn different_seeds_diverge() {
        let sim = DcSim::new(small_scenario()).unwrap();
        let a = sim.run(BillingMode::Sharing, 1);
        let b = sim.run(BillingMode::Sharing, 2);
        assert_ne!(a.log, b.log);
    }

    #[test]
    fn both_modes_replay_the_same_tenant_trace() {
        let sim = DcSim::new(small_scenario()).unwrap();
        let c = sim.run_comparison(7);
        assert_eq!(c.sharing.arrivals, c.fixed.arrivals);
        assert_eq!(c.sharing.departures, c.fixed.departures);
        assert_eq!(c.sharing.peak_tenants, c.fixed.peak_tenants);
        // Same arrival/departure lines; only clearing lines differ.
        let tenant_lines = |log: &str| -> Vec<String> {
            log.lines()
                .filter(|l| l.contains("arrive") || l.contains("depart"))
                .map(str::to_string)
                .collect::<Vec<_>>()
        };
        assert_eq!(tenant_lines(&c.sharing.log), tenant_lines(&c.fixed.log));
    }

    #[test]
    fn records_cover_every_epoch() {
        let sim = DcSim::new(small_scenario()).unwrap();
        let out = sim.run(BillingMode::Sharing, 3);
        assert_eq!(out.records.len(), 12);
        for (i, r) in out.records.iter().enumerate() {
            assert_eq!(r.epoch, i);
        }
        assert!(out.arrivals > 0, "the trace should produce tenants");
        assert!(out.peak_tenants > 0);
        assert!(out.departures <= out.arrivals);
    }

    #[test]
    fn fixed_mode_revenue_equals_its_own_counterfactual() {
        // Every fixed-mode lease is exactly the fixed instance, so the
        // fixed-instance counterfactual must equal the metered revenue.
        let sim = DcSim::new(small_scenario()).unwrap();
        let out = sim.run(BillingMode::Fixed, 11);
        let t = out.totals();
        assert!(t.revenue > 0.0);
        assert!(
            (t.revenue - t.fixed_instance_revenue).abs() < 1e-6,
            "{} vs {}",
            t.revenue,
            t.fixed_instance_revenue
        );
    }

    #[test]
    fn sharing_market_beats_fixed_instances_on_bursty_utility() {
        // The acceptance scenario: heterogeneous tenants on a bursty
        // trace. The market lets cache-lovers buy banks and slice-lovers
        // buy Slices; the fixed provider sells everyone the same box.
        let sim = DcSim::new(Scenario::example_bursty()).unwrap();
        let c = sim.run_comparison(2014);
        let gain = c.utility_gain();
        assert!(
            gain > 1.0,
            "sharing must beat fixed on aggregate utility, got {gain:.3}x\n{}",
            c.summary()
        );
    }

    #[test]
    fn market_reconfigures_tenants_as_prices_move() {
        let sim = DcSim::new(Scenario::example_bursty()).unwrap();
        let out = sim.run(BillingMode::Sharing, 2014);
        let t = out.totals();
        assert!(
            t.reconfig_cycles > 0,
            "a bursty market should move at least one tenant between shapes"
        );
        assert!(out.log.contains("reconfig tenant="));
        // Fixed mode never reconfigures.
        let f = sim.run(BillingMode::Fixed, 2014).totals();
        assert_eq!(f.reconfig_cycles, 0);
    }

    #[test]
    fn csv_has_a_row_per_epoch_and_parses_numerically() {
        let sim = DcSim::new(small_scenario()).unwrap();
        let out = sim.run(BillingMode::Sharing, 5);
        let csv = out.csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 13, "header + 12 epochs");
        assert!(lines[0].starts_with("epoch,tenants,slice_price"));
        for line in &lines[1..] {
            for field in line.split(',') {
                field.parse::<f64>().expect("numeric field");
            }
        }
    }

    #[test]
    fn totals_round_trip_through_json() {
        let sim = DcSim::new(small_scenario()).unwrap();
        let t = sim.run(BillingMode::Sharing, 9).totals();
        let text = sharing_json::to_string(&t);
        let back: Totals = sharing_json::from_str(&text).unwrap();
        assert_eq!(t.mode, back.mode);
        assert_eq!(t.log_hash, back.log_hash);
        assert_eq!(t.arrivals, back.arrivals);
        assert!((t.aggregate_utility - back.aggregate_utility).abs() < 1e-9);
    }

    #[test]
    fn synthetic_surfaces_are_monotone_in_slices() {
        let s = SurfaceCatalog::synthetic("gcc");
        let p1 = s.perf(VCoreShape::new(1, 4).unwrap());
        let p8 = s.perf(VCoreShape::new(8, 4).unwrap());
        assert!(p8 > p1);
    }

    #[test]
    fn catalog_defaults_to_the_whole_suite() {
        let sc = small_scenario();
        let catalog = SurfaceCatalog::build(&sc).unwrap();
        assert_eq!(catalog.len(), sharing_trace::ALL_BENCHMARKS.len());
    }
}
