//! Datacenter-level scheduling across many chips (paper §4).
//!
//! "Finally, the Cloud management software (scheduler) will have to change
//! in order to schedule new resources. Changing the Cloud scheduler is a
//! challenging problem, but the Sharing Architecture opens up many
//! opportunities for interesting research in this space." This module is
//! the first rung: a [`Cloud`] of chips, each managed by a
//! [`Hypervisor`], with pluggable placement policies routing VCore
//! requests to chips. Sub-core requests make placement a two-dimensional
//! bin-packing problem (Slices need contiguity, banks do not), which is
//! exactly where policy choice starts to matter.

use crate::chip::Chip;
use crate::hypervisor::{HvError, Hypervisor, LeaseId};
use sharing_core::VCoreShape;
use std::fmt;

/// Which chip gets the next request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// The first chip that can satisfy the request.
    FirstFit,
    /// The feasible chip with the *least* free Slice capacity — packs
    /// tightly, preserving big contiguous runs elsewhere.
    BestFit,
    /// The feasible chip with the *most* free Slice capacity — spreads
    /// load, minimizing interference.
    WorstFit,
}

/// A lease handle spanning the cloud.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CloudLease {
    /// Which chip hosts the VCore.
    pub chip: usize,
    /// The chip-local lease.
    pub lease: LeaseId,
}

impl fmt::Display for CloudLease {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chip{}/{}", self.chip, self.lease)
    }
}

/// Aggregate utilization across the fleet.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CloudStats {
    /// Per-chip Slice utilization.
    pub slice_utilization: Vec<f64>,
    /// Per-chip fragmentation.
    pub fragmentation: Vec<f64>,
    /// Live VCores fleet-wide.
    pub live_vcores: usize,
    /// Requests denied fleet-wide (no chip could host).
    pub denials: u64,
}

/// A fleet of Sharing Architecture chips under one scheduler.
///
/// # Example
///
/// ```
/// use sharing_hv::cloud::{Cloud, PlacementPolicy};
/// use sharing_core::VCoreShape;
///
/// let mut cloud = Cloud::new(4, 4, 8, PlacementPolicy::BestFit);
/// let lease = cloud.lease(VCoreShape::new(3, 4)?)?;
/// assert!(lease.chip < 4);
/// cloud.release(lease)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Cloud {
    chips: Vec<Hypervisor>,
    policy: PlacementPolicy,
    denials: u64,
}

impl Cloud {
    /// Builds a fleet of `n_chips` identical chips.
    ///
    /// # Panics
    ///
    /// Panics if `n_chips == 0`.
    #[must_use]
    pub fn new(n_chips: usize, rows: u16, cols: u16, policy: PlacementPolicy) -> Self {
        assert!(n_chips > 0, "a cloud needs at least one chip");
        Cloud {
            chips: (0..n_chips)
                .map(|_| Hypervisor::new(Chip::new(rows, cols)))
                .collect(),
            policy,
            denials: 0,
        }
    }

    /// Number of chips.
    #[must_use]
    pub fn chip_count(&self) -> usize {
        self.chips.len()
    }

    /// Access to one chip's hypervisor (read-only).
    ///
    /// # Panics
    ///
    /// Panics if `chip` is out of range.
    #[must_use]
    pub fn hypervisor(&self, chip: usize) -> &Hypervisor {
        &self.chips[chip]
    }

    fn candidate_order(&self, shape: VCoreShape) -> Vec<usize> {
        let free_slices =
            |hv: &Hypervisor| hv.chip().total_slices() as i64 - hv.stats().slices_used as i64;
        let mut order: Vec<usize> = (0..self.chips.len())
            .filter(|&i| {
                let hv = &self.chips[i];
                let s = hv.stats();
                hv.chip().total_slices() - s.slices_used >= shape.slices
                    && hv.chip().total_banks() - s.banks_used >= shape.l2_banks
            })
            .collect();
        match self.policy {
            PlacementPolicy::FirstFit => {}
            PlacementPolicy::BestFit => {
                order.sort_by_key(|&i| free_slices(&self.chips[i]));
            }
            PlacementPolicy::WorstFit => {
                order.sort_by_key(|&i| -free_slices(&self.chips[i]));
            }
        }
        order
    }

    /// Routes a VCore request to a chip under the placement policy
    /// (falling through to later candidates when contiguity defeats a
    /// capacity-feasible chip, compacting as a last resort).
    ///
    /// # Errors
    ///
    /// Returns the final chip's error when no chip can host the request.
    pub fn lease(&mut self, shape: VCoreShape) -> Result<CloudLease, HvError> {
        let order = self.candidate_order(shape);
        let mut last_err = HvError::NoContiguousSlices(shape.slices);
        for &i in &order {
            match self.chips[i].lease(shape) {
                Ok(lease) => return Ok(CloudLease { chip: i, lease }),
                Err(e) => last_err = e,
            }
        }
        // Second pass: defragment candidates and retry.
        for &i in &order {
            if self.chips[i].compact() > 0 {
                if let Ok(lease) = self.chips[i].lease(shape) {
                    return Ok(CloudLease { chip: i, lease });
                }
            }
        }
        self.denials += 1;
        Err(last_err)
    }

    /// Releases a cloud lease.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::UnknownLease`] if the handle is stale.
    ///
    /// # Panics
    ///
    /// Panics if the chip index is out of range.
    pub fn release(&mut self, lease: CloudLease) -> Result<(), HvError> {
        self.chips[lease.chip].release(lease.lease).map(|_| ())
    }

    /// Fleet-wide statistics.
    #[must_use]
    pub fn stats(&self) -> CloudStats {
        let mut out = CloudStats {
            denials: self.denials,
            ..CloudStats::default()
        };
        for hv in &self.chips {
            let s = hv.stats();
            out.slice_utilization.push(s.slice_utilization);
            out.fragmentation.push(s.fragmentation);
            out.live_vcores += s.live_vcores;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(s: usize, b: usize) -> VCoreShape {
        VCoreShape::new(s, b).unwrap()
    }

    #[test]
    fn first_fit_fills_the_first_chip() {
        let mut cloud = Cloud::new(3, 2, 8, PlacementPolicy::FirstFit);
        for _ in 0..4 {
            let l = cloud.lease(shape(2, 0)).unwrap();
            assert_eq!(l.chip, 0, "first-fit keeps using chip 0 while it fits");
        }
        let l = cloud.lease(shape(2, 0)).unwrap();
        assert_eq!(l.chip, 1, "chip 0 exhausted (8 slices)");
    }

    #[test]
    fn worst_fit_spreads_load() {
        let mut cloud = Cloud::new(3, 2, 8, PlacementPolicy::WorstFit);
        let chips: Vec<usize> = (0..3)
            .map(|_| cloud.lease(shape(2, 0)).unwrap().chip)
            .collect();
        let mut sorted = chips.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "worst-fit touches every chip: {chips:?}");
    }

    #[test]
    fn best_fit_preserves_room_for_big_requests() {
        // Two single-row chips of 8 slices each. Fill 6 slices of chip 0;
        // best-fit tops that chip up with small requests, keeping chip 1's
        // full 8-slice contiguous run whole for a monster VCore.
        let mut cloud = Cloud::new(2, 1, 16, PlacementPolicy::BestFit);
        let _big0 = cloud.lease(shape(6, 0)).unwrap();
        let small = cloud.lease(shape(2, 0)).unwrap();
        assert_eq!(small.chip, 0, "best-fit tops up the fuller chip");
        let big = cloud.lease(shape(8, 0)).unwrap();
        assert_eq!(big.chip, 1);
    }

    #[test]
    fn denial_when_fleet_is_exhausted() {
        let mut cloud = Cloud::new(1, 1, 4, PlacementPolicy::FirstFit); // 2 slices
        let _a = cloud.lease(shape(2, 0)).unwrap();
        assert!(cloud.lease(shape(1, 0)).is_err());
        assert_eq!(cloud.stats().denials, 1);
    }

    #[test]
    fn release_returns_capacity_fleet_wide() {
        let mut cloud = Cloud::new(2, 1, 4, PlacementPolicy::FirstFit);
        let a = cloud.lease(shape(2, 0)).unwrap();
        let _b = cloud.lease(shape(2, 0)).unwrap();
        assert!(cloud.lease(shape(2, 0)).is_err());
        cloud.release(a).unwrap();
        assert!(cloud.lease(shape(2, 0)).is_ok());
        assert!(cloud.release(a).is_err(), "stale handle rejected");
    }

    #[test]
    fn stats_cover_every_chip() {
        let mut cloud = Cloud::new(3, 2, 8, PlacementPolicy::WorstFit);
        let _ = cloud.lease(shape(2, 2)).unwrap();
        let s = cloud.stats();
        assert_eq!(s.slice_utilization.len(), 3);
        assert_eq!(s.live_vcores, 1);
    }

    #[test]
    #[should_panic(expected = "at least one chip")]
    fn empty_cloud_rejected() {
        let _ = Cloud::new(0, 2, 2, PlacementPolicy::FirstFit);
    }
}
