//! Provider-side revenue accounting.
//!
//! The paper's economic argument runs both ways: customers pay less *and*
//! "the Cloud provider can make additional revenue" (§2) because idle
//! sub-core resources become rentable ("enables the reuse and resale of
//! resources on a per ALU or per KB of cache basis", abstract). This
//! module is the provider's ledger: each lease is metered per period at
//! the market's per-Slice / per-bank prices, idle capacity is visible, and
//! the ledger can be compared against a fixed-instance provider that can
//! only bill whole cores.

use crate::hypervisor::{HvStats, Hypervisor};
use sharing_core::VCoreShape;

/// Prices per billing period (abstract currency, matching
/// `sharing_market::Market`'s units).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tariff {
    /// Price of one Slice for one period.
    pub slice_price: f64,
    /// Price of one 64 KB bank for one period.
    pub bank_price: f64,
}

impl Tariff {
    /// The equal-area tariff (one Slice bills like two banks).
    #[must_use]
    pub fn equal_area() -> Self {
        Tariff {
            slice_price: 2.0,
            bank_price: 1.0,
        }
    }

    /// Revenue for one VCore shape for one period.
    #[must_use]
    pub fn rate(&self, shape: VCoreShape) -> f64 {
        self.slice_price * shape.slices as f64 + self.bank_price * shape.l2_banks as f64
    }
}

/// A metered billing period.
#[derive(Clone, Debug, PartialEq)]
pub struct BillingPeriod {
    /// Period index.
    pub period: u64,
    /// Revenue collected this period.
    pub revenue: f64,
    /// Revenue the same tenants would have produced under whole-core
    /// (fixed-instance) billing, where every lease is rounded up to the
    /// given fixed instance shape.
    pub fixed_instance_revenue: f64,
    /// Slice utilization during the period.
    pub slice_utilization: f64,
    /// Bank utilization during the period.
    pub bank_utilization: f64,
}

/// The provider's ledger over a sequence of metered periods.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Ledger {
    periods: Vec<BillingPeriod>,
}

impl Ledger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Meters one billing period from the hypervisor's live leases.
    ///
    /// `fixed_instance` is the counterfactual: the single instance shape a
    /// conventional provider sells, with each live lease occupying (and
    /// paying for) as many fixed instances as needed to cover its
    /// resources.
    pub fn meter(&mut self, hv: &Hypervisor, tariff: Tariff, fixed_instance: VCoreShape) {
        let stats: HvStats = hv.stats();
        let mut revenue = 0.0;
        let mut fixed_revenue = 0.0;
        let fixed_rate = tariff.rate(fixed_instance);
        for lease in hv.leases() {
            revenue += tariff.rate(lease.shape);
            // How many fixed instances does this lease's resource demand
            // round up to?
            let by_slices = lease.shape.slices.div_ceil(fixed_instance.slices);
            let by_banks = if fixed_instance.l2_banks == 0 {
                if lease.shape.l2_banks > 0 {
                    usize::MAX
                } else {
                    0
                }
            } else {
                lease.shape.l2_banks.div_ceil(fixed_instance.l2_banks)
            };
            let instances = by_slices.max(by_banks).max(1);
            fixed_revenue += fixed_rate * instances as f64;
        }
        self.periods.push(BillingPeriod {
            period: self.periods.len() as u64,
            revenue,
            fixed_instance_revenue: fixed_revenue,
            slice_utilization: stats.slice_utilization,
            bank_utilization: stats.bank_utilization,
        });
    }

    /// Metered periods so far.
    #[must_use]
    pub fn periods(&self) -> &[BillingPeriod] {
        &self.periods
    }

    /// Total sub-core revenue.
    #[must_use]
    pub fn total_revenue(&self) -> f64 {
        self.periods.iter().map(|p| p.revenue).sum()
    }

    /// Total counterfactual fixed-instance revenue.
    #[must_use]
    pub fn total_fixed_revenue(&self) -> f64 {
        self.periods.iter().map(|p| p.fixed_instance_revenue).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::Chip;

    fn shape(s: usize, b: usize) -> VCoreShape {
        VCoreShape::new(s, b).unwrap()
    }

    #[test]
    fn tariff_rates_are_linear() {
        let t = Tariff::equal_area();
        assert_eq!(t.rate(shape(1, 0)), 2.0);
        assert_eq!(t.rate(shape(2, 4)), 8.0);
    }

    #[test]
    fn metering_bills_live_leases() {
        let mut hv = Hypervisor::new(Chip::new(4, 8));
        hv.lease(shape(2, 2)).unwrap(); // rate 6
        hv.lease(shape(1, 0)).unwrap(); // rate 2
        let mut ledger = Ledger::new();
        ledger.meter(&hv, Tariff::equal_area(), shape(2, 4));
        let p = &ledger.periods()[0];
        assert_eq!(p.revenue, 8.0);
        // Fixed instance (2s, 4b) rate 8: each lease needs one instance.
        assert_eq!(p.fixed_instance_revenue, 16.0);
        assert!(p.slice_utilization > 0.0);
    }

    #[test]
    fn sub_core_billing_undercuts_fixed_instances_for_small_tenants() {
        // Customers paying only for what they use pay less than rounding
        // up to a big fixed instance — the paper's "customer pays less"
        // half of market efficiency.
        let mut hv = Hypervisor::new(Chip::new(4, 16));
        for _ in 0..4 {
            hv.lease(shape(1, 1)).unwrap(); // tiny tenants, rate 3 each
        }
        let mut ledger = Ledger::new();
        ledger.meter(&hv, Tariff::equal_area(), shape(4, 8)); // big instance, rate 16
        assert_eq!(ledger.total_revenue(), 12.0);
        assert_eq!(ledger.total_fixed_revenue(), 64.0);
        assert!(ledger.total_revenue() < ledger.total_fixed_revenue());
    }

    #[test]
    fn big_tenants_round_up_to_several_fixed_instances() {
        let mut hv = Hypervisor::new(Chip::new(8, 16));
        hv.lease(shape(8, 16)).unwrap();
        let mut ledger = Ledger::new();
        ledger.meter(&hv, Tariff::equal_area(), shape(2, 4));
        // 8 slices / 2 = 4 instances; 16 banks / 4 = 4 → 4 instances.
        assert_eq!(ledger.periods()[0].fixed_instance_revenue, 4.0 * 8.0);
    }

    #[test]
    fn ledger_accumulates_over_periods() {
        let mut hv = Hypervisor::new(Chip::new(4, 8));
        let id = hv.lease(shape(2, 2)).unwrap();
        let mut ledger = Ledger::new();
        let t = Tariff::equal_area();
        ledger.meter(&hv, t, shape(2, 2));
        hv.release(id).unwrap();
        ledger.meter(&hv, t, shape(2, 2));
        assert_eq!(ledger.periods().len(), 2);
        assert_eq!(ledger.total_revenue(), 6.0, "second period is idle");
        assert_eq!(ledger.periods()[1].revenue, 0.0);
    }
}
