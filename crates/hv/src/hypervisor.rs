//! VCore lease management.

use crate::chip::{Chip, Tile, TileKind};
use sharing_core::{ReconfigCosts, VCoreShape};
use std::collections::BTreeMap;
use std::fmt;

/// Opaque lease identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LeaseId(u64);

impl fmt::Display for LeaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lease#{}", self.0)
    }
}

/// A live VCore allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lease {
    /// The lease's identifier.
    pub id: LeaseId,
    /// The allocated shape.
    pub shape: VCoreShape,
    /// The contiguous Slice tiles.
    pub slices: Vec<Tile>,
    /// The cache-bank tiles (anywhere on chip, nearest-first).
    pub banks: Vec<Tile>,
}

impl Lease {
    /// Network distances from the VCore (its first Slice) to each bank, in
    /// hops — what the L2 latency model consumes.
    #[must_use]
    pub fn bank_distances(&self) -> Vec<u32> {
        let anchor = self.slices[0];
        self.banks.iter().map(|b| b.distance(&anchor)).collect()
    }
}

/// Errors from hypervisor operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HvError {
    /// No row has a contiguous free run of the requested Slice count.
    NoContiguousSlices(usize),
    /// Not enough free cache banks.
    InsufficientBanks {
        /// Banks requested.
        wanted: usize,
        /// Banks free.
        free: usize,
    },
    /// Unknown lease.
    UnknownLease(LeaseId),
}

impl fmt::Display for HvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HvError::NoContiguousSlices(n) => {
                write!(f, "no contiguous run of {n} free slices")
            }
            HvError::InsufficientBanks { wanted, free } => {
                write!(f, "wanted {wanted} banks but only {free} free")
            }
            HvError::UnknownLease(id) => write!(f, "unknown {id}"),
        }
    }
}

impl std::error::Error for HvError {}

/// Utilization statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HvStats {
    /// Live VCore leases.
    pub live_vcores: usize,
    /// Slices allocated.
    pub slices_used: usize,
    /// Banks allocated.
    pub banks_used: usize,
    /// Slice utilization in `[0, 1]`.
    pub slice_utilization: f64,
    /// Bank utilization in `[0, 1]`.
    pub bank_utilization: f64,
    /// Current Slice fragmentation (see [`Chip::slice_fragmentation`]).
    pub fragmentation: f64,
    /// Total reconfiguration cycles charged so far.
    pub reconfig_cycles: u64,
    /// Leases denied for lack of contiguous Slices or banks.
    pub denials: u64,
}

/// The hypervisor: owns the chip and manages VCore leases.
#[derive(Clone, Debug)]
pub struct Hypervisor {
    chip: Chip,
    // Ordered so that every iteration — metering in particular, which
    // sums floats lease by lease — visits leases in id order and stays
    // bit-for-bit reproducible across processes.
    leases: BTreeMap<LeaseId, Lease>,
    next_id: u64,
    costs: ReconfigCosts,
    reconfig_cycles: u64,
    denials: u64,
}

impl Hypervisor {
    /// Takes ownership of a chip.
    #[must_use]
    pub fn new(chip: Chip) -> Self {
        Hypervisor {
            chip,
            leases: BTreeMap::new(),
            next_id: 1,
            costs: ReconfigCosts::paper(),
            reconfig_cycles: 0,
            denials: 0,
        }
    }

    /// The underlying chip (read-only).
    #[must_use]
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// Leases a VCore of the given shape: contiguous Slices plus the
    /// nearest free banks. Setting up a fresh VCore charges the Slice-only
    /// reconfiguration cost (interconnect programming).
    ///
    /// # Errors
    ///
    /// [`HvError::NoContiguousSlices`] or [`HvError::InsufficientBanks`]
    /// when the chip cannot satisfy the request.
    pub fn lease(&mut self, shape: VCoreShape) -> Result<LeaseId, HvError> {
        let slices = match self.chip.find_slice_run(shape.slices) {
            Some(s) => s,
            None => {
                self.denials += 1;
                return Err(HvError::NoContiguousSlices(shape.slices));
            }
        };
        let anchor = slices[0];
        let banks = match self.chip.find_banks_near(anchor, shape.l2_banks) {
            Some(b) => b,
            None => {
                self.denials += 1;
                let free = self
                    .chip
                    .iter_tiles()
                    .filter(|t| {
                        t.kind == TileKind::CacheBank && !self.chip.is_occupied(t.row, t.col)
                    })
                    .count();
                return Err(HvError::InsufficientBanks {
                    wanted: shape.l2_banks,
                    free,
                });
            }
        };
        for t in slices.iter().chain(&banks) {
            self.chip.set_occupied(t.row, t.col, true);
        }
        let id = LeaseId(self.next_id);
        self.next_id += 1;
        self.leases.insert(
            id,
            Lease {
                id,
                shape,
                slices,
                banks,
            },
        );
        self.reconfig_cycles += self.costs.slice_only;
        Ok(id)
    }

    /// Looks up a live lease.
    #[must_use]
    pub fn get(&self, id: LeaseId) -> Option<&Lease> {
        self.leases.get(&id)
    }

    /// Iterates over all live leases in lease-id order.
    pub fn leases(&self) -> impl Iterator<Item = &Lease> {
        self.leases.values()
    }

    /// Releases a lease, freeing its tiles. Releasing charges the cache
    /// flush cost if the VCore held banks (dirty bank state must go to
    /// memory before reuse, §3.8), else the Slice-only cost.
    ///
    /// # Errors
    ///
    /// [`HvError::UnknownLease`] if the id is not live.
    pub fn release(&mut self, id: LeaseId) -> Result<Lease, HvError> {
        let lease = self.leases.remove(&id).ok_or(HvError::UnknownLease(id))?;
        for t in lease.slices.iter().chain(&lease.banks) {
            self.chip.set_occupied(t.row, t.col, false);
        }
        self.reconfig_cycles += if lease.banks.is_empty() {
            self.costs.slice_only
        } else {
            self.costs.cache_change
        };
        Ok(lease)
    }

    /// Reconfigures a live lease to a new shape in place (releases and
    /// re-leases atomically), charging the paper's reconfiguration cost for
    /// the transition.
    ///
    /// # Errors
    ///
    /// Propagates lease errors; on failure the original lease is restored.
    pub fn reconfigure(&mut self, id: LeaseId, new_shape: VCoreShape) -> Result<LeaseId, HvError> {
        let old = self.release(id)?;
        // `release` charged a teardown; replace that with the paper's
        // transition cost.
        self.reconfig_cycles -= if old.banks.is_empty() {
            self.costs.slice_only
        } else {
            self.costs.cache_change
        };
        match self.lease(new_shape) {
            Ok(new_id) => {
                // `lease` charged a setup; replace with the transition cost.
                self.reconfig_cycles -= self.costs.slice_only;
                self.reconfig_cycles += self.costs.cost(old.shape, new_shape);
                Ok(new_id)
            }
            Err(e) => {
                // Restore the original allocation.
                for t in old.slices.iter().chain(&old.banks) {
                    self.chip.set_occupied(t.row, t.col, true);
                }
                self.reconfig_cycles -= self.costs.slice_only;
                self.leases.insert(old.id, old);
                Err(e)
            }
        }
    }

    /// Compacts Slice allocations: re-places every lease left-to-right,
    /// top-to-bottom ("fixing fragmentation problems is as simple as
    /// rescheduling Slices to VCores", §3). Charges one Slice-only
    /// reconfiguration per moved lease. Returns the number of leases moved.
    pub fn compact(&mut self) -> usize {
        let mut ids: Vec<LeaseId> = self.leases.keys().copied().collect();
        ids.sort_unstable();
        // Free everything, then re-lease largest-first.
        let mut saved: Vec<Lease> = Vec::with_capacity(ids.len());
        for id in ids {
            if let Some(l) = self.leases.remove(&id) {
                for t in l.slices.iter().chain(&l.banks) {
                    self.chip.set_occupied(t.row, t.col, false);
                }
                saved.push(l);
            }
        }
        saved.sort_by_key(|l| std::cmp::Reverse(l.shape.slices));
        let mut moved = 0;
        for old in saved {
            let slices = self
                .chip
                .find_slice_run(old.shape.slices)
                .expect("compaction re-places what fit before");
            let banks = self
                .chip
                .find_banks_near(slices[0], old.shape.l2_banks)
                .expect("compaction re-places what fit before");
            for t in slices.iter().chain(&banks) {
                self.chip.set_occupied(t.row, t.col, true);
            }
            if slices != old.slices || banks != old.banks {
                moved += 1;
                self.reconfig_cycles += self.costs.slice_only;
            }
            self.leases.insert(
                old.id,
                Lease {
                    id: old.id,
                    shape: old.shape,
                    slices,
                    banks,
                },
            );
        }
        moved
    }

    /// Current utilization/fragmentation statistics.
    #[must_use]
    pub fn stats(&self) -> HvStats {
        let slices_used: usize = self.leases.values().map(|l| l.slices.len()).sum();
        let banks_used: usize = self.leases.values().map(|l| l.banks.len()).sum();
        let total_s = self.chip.total_slices();
        let total_b = self.chip.total_banks();
        HvStats {
            live_vcores: self.leases.len(),
            slices_used,
            banks_used,
            slice_utilization: slices_used as f64 / total_s as f64,
            bank_utilization: banks_used as f64 / total_b as f64,
            fragmentation: self.chip.slice_fragmentation(),
            reconfig_cycles: self.reconfig_cycles,
            denials: self.denials,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(s: usize, b: usize) -> VCoreShape {
        VCoreShape::new(s, b).unwrap()
    }

    #[test]
    fn lease_release_roundtrip() {
        let mut hv = Hypervisor::new(Chip::new(4, 8));
        let id = hv.lease(shape(2, 3)).unwrap();
        let st = hv.stats();
        assert_eq!(st.live_vcores, 1);
        assert_eq!(st.slices_used, 2);
        assert_eq!(st.banks_used, 3);
        let lease = hv.release(id).unwrap();
        assert_eq!(lease.shape, shape(2, 3));
        assert_eq!(hv.stats().slices_used, 0);
        assert!(hv.release(id).is_err(), "double release rejected");
    }

    #[test]
    fn leases_never_overlap() {
        let mut hv = Hypervisor::new(Chip::new(4, 8));
        let mut tiles = std::collections::HashSet::new();
        for _ in 0..4 {
            let id = hv.lease(shape(2, 2)).unwrap();
            let l = hv.get(id).unwrap();
            for t in l.slices.iter().chain(&l.banks) {
                assert!(tiles.insert((t.row, t.col)), "tile double-booked: {t}");
            }
        }
    }

    #[test]
    fn exhaustion_denies_and_counts() {
        let mut hv = Hypervisor::new(Chip::new(1, 8)); // 4 slices, 4 banks
        let _a = hv.lease(shape(3, 0)).unwrap();
        assert_eq!(hv.lease(shape(2, 0)), Err(HvError::NoContiguousSlices(2)));
        assert_eq!(hv.stats().denials, 1);
        assert!(matches!(
            hv.lease(shape(1, 8)),
            Err(HvError::InsufficientBanks { wanted: 8, free: 4 })
        ));
    }

    #[test]
    fn bank_distances_reflect_placement() {
        let mut hv = Hypervisor::new(Chip::new(4, 8));
        let id = hv.lease(shape(1, 4)).unwrap();
        let d = hv.get(id).unwrap().bank_distances();
        assert_eq!(d.len(), 4);
        for w in d.windows(2) {
            assert!(w[0] <= w[1], "banks sorted by distance");
        }
        assert_eq!(d[0], 1, "nearest bank is adjacent");
    }

    #[test]
    fn reconfigure_charges_transition_cost() {
        let mut hv = Hypervisor::new(Chip::new(4, 8));
        let id = hv.lease(shape(2, 2)).unwrap();
        let base = hv.stats().reconfig_cycles;
        let id2 = hv.reconfigure(id, shape(3, 2)).unwrap();
        assert_eq!(hv.stats().reconfig_cycles, base + 500, "slice-only change");
        let _id3 = hv.reconfigure(id2, shape(3, 4)).unwrap();
        assert_eq!(
            hv.stats().reconfig_cycles,
            base + 500 + 10_000,
            "bank change"
        );
    }

    #[test]
    fn failed_reconfigure_restores_lease() {
        let mut hv = Hypervisor::new(Chip::new(1, 8)); // 4 slices per chip
        let id = hv.lease(shape(2, 0)).unwrap();
        let _other = hv.lease(shape(2, 0)).unwrap();
        // No room for 3 slices now.
        assert!(hv.reconfigure(id, shape(3, 0)).is_err());
        assert_eq!(hv.stats().live_vcores, 2);
        assert!(hv.get(id).is_some(), "original lease restored");
    }

    #[test]
    fn compaction_defragments() {
        let mut hv = Hypervisor::new(Chip::new(1, 16)); // 8 slices in a row
        let a = hv.lease(shape(2, 0)).unwrap();
        let b = hv.lease(shape(2, 0)).unwrap();
        let _c = hv.lease(shape(2, 0)).unwrap();
        hv.release(b).unwrap();
        hv.release(a).unwrap();
        // Free: cols 0..4 run of... a=slices 0,1; b=2,3; c=4,5 (in slice
        // index terms). After releasing a and b, free = {0,1,2,3}, {6,7}.
        // A 4-slice request fits already; fragment further: lease 1 in the
        // middle of the free space.
        let _d = hv.lease(shape(1, 0)).unwrap(); // takes slice 0
        let frag_before = hv.stats().fragmentation;
        hv.compact();
        let frag_after = hv.stats().fragmentation;
        assert!(frag_after <= frag_before);
        assert_eq!(hv.stats().fragmentation, 0.0, "all free slices contiguous");
        assert_eq!(hv.stats().live_vcores, 2);
    }

    #[test]
    fn utilization_tracks_allocations() {
        let mut hv = Hypervisor::new(Chip::new(2, 8)); // 8 slices, 8 banks
        hv.lease(shape(4, 4)).unwrap();
        let st = hv.stats();
        assert!((st.slice_utilization - 0.5).abs() < 1e-12);
        assert!((st.bank_utilization - 0.5).abs() < 1e-12);
    }
}
