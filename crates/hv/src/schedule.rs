//! Time-sliced hosting (paper §3.8).
//!
//! "We propose having the hypervisor be time sliced on the same resources
//! as the client VMs. But, unlike client VMs which run on reconfigurable
//! cores, we propose having the hypervisor execute only on single-Slice
//! VCores" — so it can locally reprogram protection registers and
//! interconnect state to set up and tear down client VCores.
//!
//! [`TimeSlicer`] simulates that hosting loop over a [`Chip`]: each epoch
//! the hypervisor takes its management quantum on one Slice, admits queued
//! tenants (compacting the chip when fragmentation blocks an otherwise
//! satisfiable lease), advances every running tenant by the scheduling
//! quantum, and releases finished VCores.

use crate::chip::Chip;
use crate::hypervisor::{HvError, Hypervisor, LeaseId};
use sharing_core::VCoreShape;
use std::collections::VecDeque;

/// A client VM awaiting or consuming cycles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tenant {
    /// Display name.
    pub name: String,
    /// The VCore shape the tenant leases.
    pub shape: VCoreShape,
    /// Cycles of work remaining.
    pub remaining_cycles: u64,
}

impl Tenant {
    /// Creates a tenant.
    #[must_use]
    pub fn new(name: impl Into<String>, shape: VCoreShape, cycles: u64) -> Self {
        Tenant {
            name: name.into(),
            shape,
            remaining_cycles: cycles,
        }
    }
}

/// Outcome of a hosting run.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleReport {
    /// Epochs executed.
    pub epochs: u64,
    /// Total wall-clock cycles (epochs × (quantum + hypervisor overhead)).
    pub total_cycles: u64,
    /// Cycles spent in the hypervisor's management quantum.
    pub hypervisor_cycles: u64,
    /// Completion time (in cycles) per tenant, in finish order.
    pub completions: Vec<(String, u64)>,
    /// Chip compactions performed to admit blocked tenants.
    pub compactions: u64,
    /// Peak number of concurrently hosted tenants.
    pub peak_tenants: usize,
}

impl ScheduleReport {
    /// Fraction of machine time consumed by the hypervisor.
    #[must_use]
    pub fn overhead_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.hypervisor_cycles as f64 / self.total_cycles as f64
        }
    }
}

/// The time-sliced hosting loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimeSlicer {
    /// Client scheduling quantum, in cycles.
    pub quantum: u64,
    /// Hypervisor management overhead per epoch, in cycles (it runs on a
    /// single-Slice VCore while clients are paused).
    pub hypervisor_overhead: u64,
}

impl TimeSlicer {
    /// A slicer with a typical quantum:overhead ratio (management costs a
    /// fraction of a percent of machine time).
    #[must_use]
    pub fn new(quantum: u64, hypervisor_overhead: u64) -> Self {
        assert!(quantum > 0, "quantum must be positive");
        TimeSlicer {
            quantum,
            hypervisor_overhead,
        }
    }

    /// Hosts `tenants` (admitted in order) on `chip` until all complete.
    ///
    /// # Panics
    ///
    /// Panics if any tenant's shape can never fit the chip, even when
    /// empty — the request is unsatisfiable rather than queued.
    #[must_use]
    pub fn run(&self, chip: Chip, tenants: Vec<Tenant>) -> ScheduleReport {
        let total_slices = chip.total_slices();
        let total_banks = chip.total_banks();
        for t in &tenants {
            assert!(
                t.shape.slices <= total_slices && t.shape.l2_banks <= total_banks,
                "tenant {} wants {} which can never fit this chip",
                t.name,
                t.shape
            );
        }
        let mut hv = Hypervisor::new(chip);
        let mut waiting: VecDeque<Tenant> = tenants.into();
        let mut running: Vec<(LeaseId, Tenant)> = Vec::new();
        let mut report = ScheduleReport {
            epochs: 0,
            total_cycles: 0,
            hypervisor_cycles: 0,
            completions: Vec::new(),
            compactions: 0,
            peak_tenants: 0,
        };
        while !(waiting.is_empty() && running.is_empty()) {
            report.epochs += 1;
            report.hypervisor_cycles += self.hypervisor_overhead;
            report.total_cycles += self.hypervisor_overhead;

            // Admission: lease as many queued tenants as fit, in order;
            // when fragmentation (not capacity) blocks, compact once.
            while let Some(next) = waiting.front() {
                match hv.lease(next.shape) {
                    Ok(id) => {
                        let t = waiting.pop_front().expect("front exists");
                        running.push((id, t));
                    }
                    Err(HvError::NoContiguousSlices(_)) => {
                        let free_slices = total_slices - hv.stats().slices_used;
                        if free_slices >= next.shape.slices && hv.compact() > 0 {
                            report.compactions += 1;
                            continue; // retry after defragmentation
                        }
                        break;
                    }
                    Err(_) => break,
                }
            }
            report.peak_tenants = report.peak_tenants.max(running.len());

            // Client quantum.
            report.total_cycles += self.quantum;
            let mut still_running = Vec::with_capacity(running.len());
            for (id, mut t) in running {
                t.remaining_cycles = t.remaining_cycles.saturating_sub(self.quantum);
                if t.remaining_cycles == 0 {
                    report.completions.push((t.name, report.total_cycles));
                    hv.release(id).expect("running lease is live");
                } else {
                    still_running.push((id, t));
                }
            }
            running = still_running;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(s: usize, b: usize) -> VCoreShape {
        VCoreShape::new(s, b).unwrap()
    }

    #[test]
    fn everything_completes_and_overhead_is_accounted() {
        let slicer = TimeSlicer::new(10_000, 100);
        let report = slicer.run(
            Chip::new(2, 8),
            vec![
                Tenant::new("a", shape(2, 2), 25_000),
                Tenant::new("b", shape(1, 0), 5_000),
            ],
        );
        assert_eq!(report.completions.len(), 2);
        // b finishes after one epoch, a after three.
        assert_eq!(report.epochs, 3);
        assert_eq!(report.hypervisor_cycles, 300);
        assert!((report.overhead_fraction() - 300.0 / 30_300.0).abs() < 1e-12);
        // b completes before a.
        assert_eq!(report.completions[0].0, "b");
    }

    #[test]
    fn queueing_when_the_chip_is_full() {
        // One row of 4 slices; two tenants of 3 slices each cannot coexist.
        let slicer = TimeSlicer::new(1_000, 0);
        let report = slicer.run(
            Chip::new(1, 8),
            vec![
                Tenant::new("first", shape(3, 0), 1_000),
                Tenant::new("second", shape(3, 0), 1_000),
            ],
        );
        assert_eq!(report.epochs, 2, "second must wait for first");
        assert_eq!(report.peak_tenants, 1);
        assert_eq!(report.completions[0].0, "first");
    }

    #[test]
    fn small_tenants_share_an_epoch() {
        let slicer = TimeSlicer::new(1_000, 0);
        let report = slicer.run(
            Chip::new(2, 8),
            vec![
                Tenant::new("a", shape(1, 1), 1_000),
                Tenant::new("b", shape(1, 1), 1_000),
                Tenant::new("c", shape(1, 1), 1_000),
            ],
        );
        assert_eq!(report.epochs, 1);
        assert_eq!(report.peak_tenants, 3);
    }

    #[test]
    #[should_panic(expected = "can never fit")]
    fn impossible_tenant_rejected() {
        let slicer = TimeSlicer::new(1_000, 0);
        let _ = slicer.run(
            Chip::new(1, 4), // 2 slices
            vec![Tenant::new("huge", shape(8, 0), 1_000)],
        );
    }

    #[test]
    fn overhead_fraction_zero_without_overhead() {
        let slicer = TimeSlicer::new(500, 0);
        let report = slicer.run(Chip::new(1, 4), vec![Tenant::new("a", shape(1, 0), 400)]);
        assert_eq!(report.overhead_fraction(), 0.0);
        assert_eq!(report.total_cycles, 500);
    }
}
