//! Hypervisor-level chip resource management for the Sharing Architecture.
//!
//! The paper's hypervisor runs time-sliced on single-Slice VCores and
//! programs the interconnect to compose client VCores out of Slices and
//! cache banks (§3.8). A full chip has hundreds of each (§3); Slices of a
//! VCore must be **contiguous** for operand-latency reasons, while banks
//! may live anywhere. Because all Slices are interchangeable, fragmentation
//! is repaired "as simply as rescheduling Slices to VCores".
//!
//! This crate models that layer:
//!
//! * [`Chip`] — the tile grid (alternating Slice and bank columns, like the
//!   paper's Figure 3) with allocation state;
//! * [`Hypervisor`] — lease/release of VCores with contiguity, bank
//!   placement by proximity, reconfiguration cost accounting, compaction,
//!   and utilization/fragmentation statistics.
//!
//! # Example
//!
//! ```
//! use sharing_hv::{Chip, Hypervisor};
//! use sharing_core::VCoreShape;
//!
//! let mut hv = Hypervisor::new(Chip::new(8, 8));
//! let lease = hv.lease(VCoreShape::new(3, 4)?)?;
//! assert_eq!(hv.stats().live_vcores, 1);
//! hv.release(lease)?;
//! assert_eq!(hv.stats().live_vcores, 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod billing;
pub mod chip;
pub mod cloud;
pub mod hypervisor;
pub mod schedule;

pub use billing::{BillingPeriod, Ledger, Tariff};
pub use chip::{Chip, Tile, TileKind};
pub use cloud::{Cloud, CloudLease, CloudStats, PlacementPolicy};
pub use hypervisor::{HvError, HvStats, Hypervisor, Lease, LeaseId};
pub use schedule::{ScheduleReport, Tenant, TimeSlicer};
