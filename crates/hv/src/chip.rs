//! The chip: a grid of Slice and cache-bank tiles.

use std::fmt;

/// What occupies a tile.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TileKind {
    /// A compute Slice.
    Slice,
    /// A 64 KB L2 cache bank.
    CacheBank,
}

/// One tile of the chip.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Tile {
    /// Row on the grid.
    pub row: u16,
    /// Column on the grid.
    pub col: u16,
    /// What the tile is.
    pub kind: TileKind,
}

impl Tile {
    /// Manhattan distance to another tile (hop count on the switched
    /// interconnect).
    #[must_use]
    pub fn distance(&self, other: &Tile) -> u32 {
        u32::from(self.row.abs_diff(other.row)) + u32::from(self.col.abs_diff(other.col))
    }
}

impl fmt::Display for Tile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            TileKind::Slice => 'S',
            TileKind::CacheBank => 'C',
        };
        write!(f, "{k}({},{})", self.row, self.col)
    }
}

/// The chip layout: rows alternate Slice and cache-bank columns (like the
/// paper's Figure 3, where Slices and banks interleave on the fabric).
///
/// Allocation state is tracked per tile.
#[derive(Clone, Debug)]
pub struct Chip {
    rows: u16,
    cols: u16,
    /// `occupied[row][col]`.
    occupied: Vec<Vec<bool>>,
}

impl Chip {
    /// Builds a chip with `rows × cols` tiles; even columns are Slices,
    /// odd columns cache banks.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(rows: u16, cols: u16) -> Self {
        assert!(rows > 0 && cols > 0, "chip dimensions must be positive");
        Chip {
            rows,
            cols,
            occupied: vec![vec![false; cols as usize]; rows as usize],
        }
    }

    /// Grid rows.
    #[must_use]
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Grid columns.
    #[must_use]
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// The kind of the tile at `(row, col)` under the alternating layout.
    #[must_use]
    pub fn kind_at(&self, _row: u16, col: u16) -> TileKind {
        if col.is_multiple_of(2) {
            TileKind::Slice
        } else {
            TileKind::CacheBank
        }
    }

    /// The tile at a position.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn tile(&self, row: u16, col: u16) -> Tile {
        assert!(row < self.rows && col < self.cols, "tile out of range");
        Tile {
            row,
            col,
            kind: self.kind_at(row, col),
        }
    }

    /// Whether a tile is currently allocated.
    #[must_use]
    pub fn is_occupied(&self, row: u16, col: u16) -> bool {
        self.occupied[row as usize][col as usize]
    }

    /// Marks a tile allocated or free.
    pub(crate) fn set_occupied(&mut self, row: u16, col: u16, value: bool) {
        self.occupied[row as usize][col as usize] = value;
    }

    /// Total Slice tiles on the chip.
    #[must_use]
    pub fn total_slices(&self) -> usize {
        self.iter_tiles()
            .filter(|t| t.kind == TileKind::Slice)
            .count()
    }

    /// Total cache-bank tiles on the chip.
    #[must_use]
    pub fn total_banks(&self) -> usize {
        self.iter_tiles()
            .filter(|t| t.kind == TileKind::CacheBank)
            .count()
    }

    /// Iterates all tiles in row-major order.
    pub fn iter_tiles(&self) -> impl Iterator<Item = Tile> + '_ {
        (0..self.rows).flat_map(move |r| (0..self.cols).map(move |c| self.tile(r, c)))
    }

    /// Finds a run of `n` contiguous **free Slice tiles in one row**
    /// (Slices of a VCore must be contiguous, §3). Returns the tiles, or
    /// `None` if no row has such a run.
    #[must_use]
    pub fn find_slice_run(&self, n: usize) -> Option<Vec<Tile>> {
        if n == 0 {
            return Some(Vec::new());
        }
        for r in 0..self.rows {
            let mut run: Vec<Tile> = Vec::new();
            for c in 0..self.cols {
                if self.kind_at(r, c) != TileKind::Slice {
                    continue; // bank columns do not break Slice adjacency
                }
                if self.is_occupied(r, c) {
                    run.clear();
                } else {
                    run.push(self.tile(r, c));
                    if run.len() == n {
                        return Some(run);
                    }
                }
            }
        }
        None
    }

    /// Finds the `n` free cache banks nearest to `anchor` (banks need not
    /// be contiguous, §3). Returns `None` if fewer than `n` are free.
    #[must_use]
    pub fn find_banks_near(&self, anchor: Tile, n: usize) -> Option<Vec<Tile>> {
        let mut free: Vec<Tile> = self
            .iter_tiles()
            .filter(|t| t.kind == TileKind::CacheBank && !self.is_occupied(t.row, t.col))
            .collect();
        if free.len() < n {
            return None;
        }
        free.sort_by_key(|t| (t.distance(&anchor), t.row, t.col));
        free.truncate(n);
        Some(free)
    }

    /// Fraction of free Slice capacity that is unusable for the largest
    /// possible contiguous request — a fragmentation measure: 0.0 means the
    /// largest free run covers all free Slices, 1.0 means no free Slices
    /// can serve any contiguous request of the largest run's size... more
    /// precisely `1 - largest_free_run / free_slices` (0 when empty).
    #[must_use]
    pub fn slice_fragmentation(&self) -> f64 {
        let free: usize = self
            .iter_tiles()
            .filter(|t| t.kind == TileKind::Slice && !self.is_occupied(t.row, t.col))
            .count();
        if free == 0 {
            return 0.0;
        }
        let mut largest = 0usize;
        for r in 0..self.rows {
            let mut run = 0usize;
            for c in 0..self.cols {
                if self.kind_at(r, c) != TileKind::Slice {
                    continue;
                }
                if self.is_occupied(r, c) {
                    run = 0;
                } else {
                    run += 1;
                    largest = largest.max(run);
                }
            }
        }
        1.0 - largest as f64 / free as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternating_layout() {
        let chip = Chip::new(4, 8);
        assert_eq!(chip.kind_at(0, 0), TileKind::Slice);
        assert_eq!(chip.kind_at(0, 1), TileKind::CacheBank);
        assert_eq!(chip.total_slices(), 16);
        assert_eq!(chip.total_banks(), 16);
    }

    #[test]
    fn slice_run_skips_bank_columns() {
        let chip = Chip::new(2, 8);
        // 4 slices per row at cols 0,2,4,6 — a run of 4 exists.
        let run = chip.find_slice_run(4).unwrap();
        assert_eq!(run.len(), 4);
        assert!(run.iter().all(|t| t.kind == TileKind::Slice));
        assert!(run.iter().all(|t| t.row == 0));
    }

    #[test]
    fn occupied_slice_breaks_run() {
        let mut chip = Chip::new(1, 8);
        chip.set_occupied(0, 2, true); // middle Slice taken
        assert!(chip.find_slice_run(3).is_none());
        assert!(chip.find_slice_run(2).is_some());
    }

    #[test]
    fn banks_chosen_by_proximity() {
        let chip = Chip::new(4, 8);
        let anchor = chip.tile(0, 0);
        let banks = chip.find_banks_near(anchor, 3).unwrap();
        assert_eq!(banks.len(), 3);
        // The nearest bank to (0,0) is (0,1).
        assert_eq!((banks[0].row, banks[0].col), (0, 1));
        // Distances are non-decreasing.
        for w in banks.windows(2) {
            assert!(w[0].distance(&anchor) <= w[1].distance(&anchor));
        }
    }

    #[test]
    fn bank_exhaustion_returns_none() {
        let mut chip = Chip::new(1, 4); // 2 banks
        chip.set_occupied(0, 1, true);
        chip.set_occupied(0, 3, true);
        assert!(chip.find_banks_near(chip.tile(0, 0), 1).is_none());
    }

    #[test]
    fn fragmentation_metric() {
        let mut chip = Chip::new(1, 8); // slices at 0,2,4,6
        assert_eq!(chip.slice_fragmentation(), 0.0);
        chip.set_occupied(0, 2, true); // free: {0}, {4,6} → largest 2 of 3
        let f = chip.slice_fragmentation();
        assert!((f - (1.0 - 2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_run_is_trivially_found() {
        let chip = Chip::new(1, 2);
        assert_eq!(chip.find_slice_run(0).unwrap().len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tile_bounds_checked() {
        let _ = Chip::new(2, 2).tile(2, 0);
    }
}
