//! Dependency-free JSON for the Sharing Architecture workspace.
//!
//! The workspace must build offline with no registry access, so instead of
//! `serde`/`serde_json` every crate that speaks JSON uses this small
//! hand-rolled implementation:
//!
//! * [`Json`] — an owned JSON value (objects preserve insertion order, so
//!   output is deterministic);
//! * [`Json::parse`] — a recursive-descent parser with a nesting-depth
//!   limit (safe to point at untrusted network input);
//! * [`Json::to_string`] / [`Json::pretty`] — compact and indented
//!   writers whose float formatting round-trips `f64`;
//! * [`ToJson`] / [`FromJson`] — conversion traits, implemented for the
//!   primitives plus `Option`, `Vec`, and pair tuples;
//! * [`json_struct!`] — a declarative macro generating both trait impls
//!   for plain structs, one field list instead of a derive.
//!
//! # Example
//!
//! ```
//! use sharing_json::{Json, ToJson, FromJson};
//!
//! let v = Json::parse(r#"{"name":"gcc","len":60000,"ipc":1.25}"#).unwrap();
//! assert_eq!(v.get("name").unwrap().as_str(), Some("gcc"));
//! let len = u64::from_json(v.get("len").unwrap()).unwrap();
//! assert_eq!(len, 60_000);
//! assert_eq!(v.to_string(), r#"{"name":"gcc","len":60000,"ipc":1.25}"#);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Maximum nesting depth the parser accepts (arrays + objects combined).
pub const MAX_DEPTH: usize = 128;

/// An owned JSON value.
///
/// Integers and floats are kept distinct so 64-bit counters and seeds
/// survive a round trip without precision loss.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no fraction or exponent). `i128` covers the
    /// full `u64` and `i64` ranges.
    Int(i128),
    /// A fractional or exponent-form number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved and duplicate keys are
    /// rejected by the parser.
    Obj(Vec<(String, Json)>),
}

/// Error produced by parsing or by schema conversion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// Convenience constructor.
    #[must_use]
    pub fn msg(m: impl Into<String>) -> Self {
        JsonError(m.into())
    }
}

impl Json {
    /// Looks up a key in an object. Returns `None` for non-objects and
    /// missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64` (accepts both number forms).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as an `i128`, if it is an integer literal.
    #[must_use]
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as object pairs, if it is one.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Builds an object from key/value pairs (a tidy literal syntax for
    /// hand-assembled messages).
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parses a JSON document. The whole input must be consumed (trailing
    /// whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Writes the value as indented JSON (two-space indent).
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, b'[', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Json::Obj(pairs) => write_seq(out, indent, b'{', pairs.len(), |out, i, ind| {
                write_escaped(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, ind);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: u8,
    n: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    let close = if open == b'[' { ']' } else { '}' };
    out.push(open as char);
    if n == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Inf; follow serde_json and emit null.
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // Keep the float/integer distinction on the wire so a round trip
    // reproduces the same `Json` variant.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    /// Compact form: no whitespace, deterministic field order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, None);
        f.write_str(&s)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs: Vec<(String, Json)> = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    if pairs.iter().any(|(k, _)| *k == key) {
                        return Err(self.err("duplicate object key"));
                    }
                    self.skip_ws();
                    self.eat(b':', "expected `:`")?;
                    self.skip_ws();
                    let v = self.value(depth + 1)?;
                    pairs.push((key, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digit_start = self.pos;
        self.digits()?;
        if self.pos - digit_start > 1 && self.bytes[digit_start] == b'0' {
            return Err(self.err("leading zero"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }

    fn digits(&mut self) -> Result<usize, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected digits"));
        }
        Ok(self.pos - start)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid codepoint"))?);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("peeked byte exists");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Converts `self` to JSON.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Converts from JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first schema mismatch.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

macro_rules! int_impls {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Int(i128::from(*self))
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let i = v
                    .as_int()
                    .ok_or_else(|| JsonError::msg(format!(
                        "expected integer, got {v}"
                    )))?;
                <$ty>::try_from(i).map_err(|_| {
                    JsonError::msg(format!(
                        "{i} out of range for {}", stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, i8, i16, i32, i64);

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i128)
    }
}

impl FromJson for usize {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let i = v
            .as_int()
            .ok_or_else(|| JsonError::msg(format!("expected integer, got {v}")))?;
        usize::try_from(i).map_err(|_| JsonError::msg(format!("{i} out of range for usize")))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64()
            .ok_or_else(|| JsonError::msg(format!("expected number, got {v}")))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool()
            .ok_or_else(|| JsonError::msg(format!("expected bool, got {v}")))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::msg(format!("expected string, got {v}")))
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::msg(format!("expected array, got {v}")))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_arr() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::msg(format!("expected a pair, got {v}"))),
        }
    }
}

/// Generates [`ToJson`] and [`FromJson`] for a plain struct from its field
/// list. Fields named after `defaults` fall back to `Default::default()`
/// when absent in the input (the replacement for `#[serde(default)]`);
/// all other fields are required.
///
/// ```
/// use sharing_json::{json_struct, FromJson, Json, ToJson};
///
/// #[derive(Debug, PartialEq, Default)]
/// struct Point { x: u32, y: u32, label: String }
/// json_struct!(Point { x, y } defaults { label });
///
/// let p = Point { x: 1, y: 2, label: String::new() };
/// let back = Point::from_json(&Json::parse(r#"{"x":1,"y":2}"#).unwrap()).unwrap();
/// assert_eq!(p, back);
/// ```
#[macro_export]
macro_rules! json_struct {
    ($ty:ident { $($field:ident),* $(,)? }) => {
        $crate::json_struct!($ty { $($field),* } defaults {});
    };
    ($ty:ident { $($field:ident),* $(,)? } defaults { $($dfield:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $( (stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)), )*
                    $( (stringify!($dfield).to_string(), $crate::ToJson::to_json(&self.$dfield)), )*
                ])
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                if v.as_obj().is_none() {
                    return Err($crate::JsonError::msg(format!(
                        "expected {} object, got {v}", stringify!($ty)
                    )));
                }
                Ok($ty {
                    $( $field: match v.get(stringify!($field)) {
                        Some(f) => $crate::FromJson::from_json(f).map_err(|e| {
                            $crate::JsonError::msg(format!(
                                "{}.{}: {}", stringify!($ty), stringify!($field), e.0
                            ))
                        })?,
                        None => return Err($crate::JsonError::msg(format!(
                            "{} missing field `{}`", stringify!($ty), stringify!($field)
                        ))),
                    }, )*
                    $( $dfield: match v.get(stringify!($dfield)) {
                        Some(f) => $crate::FromJson::from_json(f).map_err(|e| {
                            $crate::JsonError::msg(format!(
                                "{}.{}: {}", stringify!($ty), stringify!($dfield), e.0
                            ))
                        })?,
                        None => Default::default(),
                    }, )*
                })
            }
        }
    };
}

/// Serializes any [`ToJson`] value to its compact string form.
pub fn to_string<T: ToJson>(v: &T) -> String {
    v.to_json().to_string()
}

/// Serializes any [`ToJson`] value with two-space indentation.
pub fn to_string_pretty<T: ToJson>(v: &T) -> String {
    v.to_json().pretty()
}

/// Parses a string into any [`FromJson`] type.
///
/// # Errors
///
/// Returns a [`JsonError`] from either the parse or the conversion.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(
            Json::parse("\"hi\\nthere\"").unwrap(),
            Json::Str("hi\nthere".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":{"d":true}}"#).unwrap();
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":1,}",
            "nul",
            "01",
            "1.",
            "\"unterminated",
            "{\"a\":1}x",
            "+1",
            "--1",
            "{\"a\":1,\"a\":2}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn nesting_exactly_at_the_limit_is_accepted() {
        // The top-level value sits at depth 0, so MAX_DEPTH + 1 brackets
        // put the innermost value exactly at the limit.
        let at_limit = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        let v = Json::parse(&at_limit).unwrap();
        assert_eq!(v.to_string(), at_limit, "deep round trip");
        let too_deep = format!("[{at_limit}]");
        assert!(Json::parse(&too_deep).is_err(), "one more must fail");
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        // JSON has no NaN/Inf; the writer follows serde_json and emits
        // null, so a round trip degrades them to Json::Null — not a parse
        // error and not a bare token the parser would choke on.
        for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let s = Json::Float(f).to_string();
            assert_eq!(s, "null", "{f}");
            assert_eq!(Json::parse(&s).unwrap(), Json::Null);
        }
        let v = Json::obj(vec![("ipc", Json::Float(f64::NAN))]);
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.get("ipc"), Some(&Json::Null));
        assert_eq!(Option::<f64>::from_json(back.get("ipc").unwrap()), Ok(None));
        // The raw tokens themselves are invalid JSON.
        for bad in ["NaN", "Infinity", "-Infinity", "nan", "inf"] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn large_integers_round_trip_or_fail_loudly() {
        // The full i128 range survives a round trip as Json::Int...
        for i in [i128::MAX, i128::MIN, i128::from(u64::MAX) + 1] {
            let s = Json::Int(i).to_string();
            assert_eq!(Json::parse(&s).unwrap(), Json::Int(i), "{i}");
        }
        // ...one past it is a parse error, not a silent precision loss.
        let over = format!("{}0", i128::MAX);
        let e = Json::parse(&over).unwrap_err();
        assert!(e.0.contains("out of range"), "{e}");
        let under = format!("{}0", i128::MIN);
        assert!(Json::parse(&under).is_err());
        // Narrowing conversions fail loudly too: u64::MAX + 1 parses as an
        // integer but does not convert to u64.
        let v = Json::parse("18446744073709551616").unwrap();
        assert!(u64::from_json(&v).unwrap_err().0.contains("out of range"));
    }

    #[test]
    fn control_characters_escape_and_round_trip() {
        // Every control character must be written in escaped form and
        // parse back to itself.
        let all_controls: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        let s = Json::Str(all_controls.clone()).to_string();
        assert!(
            !s.chars().any(|c| (c as u32) < 0x20),
            "no raw control bytes on the wire: {s:?}"
        );
        assert_eq!(Json::parse(&s).unwrap(), Json::Str(all_controls));
        // Named escapes are preferred where JSON has them.
        assert_eq!(Json::Str("\u{08}\u{0C}".into()).to_string(), r#""\b\f""#);
        assert_eq!(Json::Str("\u{01}".into()).to_string(), r#""\u0001""#);
        // Raw (unescaped) control characters in input are rejected.
        assert!(Json::parse("\"a\u{01}b\"").is_err());
        assert!(Json::parse("\"a\nb\"").is_err(), "raw newline in string");
    }

    #[test]
    fn unicode_escape_edge_cases() {
        // Surrogate pairs decode; escaped and literal forms are equal.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".to_string()));
        // Escaped solidus is legal and decodes to a plain slash.
        assert_eq!(Json::parse(r#""\/""#).unwrap(), Json::Str("/".to_string()));
        // `\u0000` is a valid escape for NUL.
        assert_eq!(
            Json::parse(r#""\u0000""#).unwrap(),
            Json::Str("\0".to_string())
        );
        for bad in [
            r#""\ud83dx""#,      // high surrogate not followed by \u
            r#""\ud83d\u0041""#, // high surrogate followed by a non-surrogate
            r#""\udc00""#,       // lone low surrogate
            r#""\uZZZZ""#,       // non-hex digits
            r#""\u12""#,         // truncated escape
            r#""\q""#,           // unknown escape
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(Json::parse(r#""é""#).unwrap(), Json::Str("é".to_string()));
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".to_string()));
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn compact_output_round_trips() {
        let text = r#"{"name":"gcc \"x\"","vals":[1,2.5,null,true],"nest":{"k":-3}}"#;
        let v = Json::parse(text).unwrap();
        let out = v.to_string();
        assert_eq!(Json::parse(&out).unwrap(), v);
        assert_eq!(out, text);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Json::parse(r#"{"a":[1,2],"b":{"c":"d"},"e":[]}"#).unwrap();
        let pretty = v.pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 12345.6789, f64::MAX, 5e-324] {
            let s = Json::Float(f).to_string();
            let back = Json::parse(&s).unwrap();
            assert_eq!(back.as_f64(), Some(f), "{f} via {s}");
        }
        // Whole floats keep their float-ness on the wire.
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap(), Json::Float(2.0));
    }

    #[test]
    fn u64_counters_survive() {
        let big = u64::MAX;
        let s = big.to_json().to_string();
        assert_eq!(u64::from_json(&Json::parse(&s).unwrap()).unwrap(), big);
    }

    #[test]
    fn conversion_errors_name_the_problem() {
        let e = u32::from_json(&Json::Str("x".into())).unwrap_err();
        assert!(e.0.contains("expected integer"), "{e}");
        let e = u8::from_json(&Json::Int(300)).unwrap_err();
        assert!(e.0.contains("out of range"), "{e}");
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        n: u32,
        name: String,
        xs: Vec<f64>,
        opt: Option<u32>,
    }
    json_struct!(Demo { n, name, xs } defaults { opt });

    #[test]
    fn json_struct_round_trips() {
        let d = Demo {
            n: 7,
            name: "slice".into(),
            xs: vec![1.5, 2.0],
            opt: Some(3),
        };
        let s = to_string(&d);
        assert_eq!(from_str::<Demo>(&s).unwrap(), d);
    }

    #[test]
    fn json_struct_defaults_and_errors() {
        let d: Demo = from_str(r#"{"n":1,"name":"a","xs":[]}"#).unwrap();
        assert_eq!(d.opt, None);
        let e = from_str::<Demo>(r#"{"name":"a","xs":[]}"#).unwrap_err();
        assert!(e.0.contains("missing field `n`"), "{e}");
        let e = from_str::<Demo>(r#"{"n":"x","name":"a","xs":[]}"#).unwrap_err();
        assert!(e.0.contains("Demo.n"), "{e}");
    }
}
