//! Differential tests: the event-driven engine must be byte-identical
//! to the legacy polled engine.
//!
//! The event engine (DESIGN.md §13) replaces per-cycle scanning with
//! wake-up scheduling, but it is a pure mechanism change: the multiset
//! of unit free-times and link claims it tracks is exactly the state
//! the polled structures scan. These tests pin that equivalence over
//! every benchmark, a seeded sample of the shape grid, the synthetic
//! stress profiles, and the cycle profiler's conservation law.

use sharing_core::{EngineKind, RunOptions, SimConfig, SimResult, Simulator};
use sharing_trace::{
    bursty_profile, phase_shift_profile, Benchmark, ProgramGenerator, Trace, TraceSpec,
    ALL_BENCHMARKS,
};

fn run(cfg: SimConfig, trace: &Trace, kind: EngineKind) -> SimResult {
    Simulator::new(cfg)
        .expect("valid config")
        .run_with(trace, RunOptions::new().engine(kind))
        .result
}

/// Serialized form, so "byte-identical" means exactly that: every
/// counter, every cache statistic, every derived field.
fn bytes(r: &SimResult) -> String {
    sharing_json::to_string(r)
}

/// A small deterministic LCG for sampling the shape grid without
/// pulling in an RNG dependency.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Every benchmark, one mid-size shape: the broad equivalence sweep.
#[test]
fn all_benchmarks_are_byte_identical_across_engines() {
    let spec = TraceSpec::new(4_000, 11);
    for &bench in &ALL_BENCHMARKS {
        let trace = bench.generate(&spec);
        let cfg = SimConfig::with_shape(4, 4).expect("valid shape");
        let legacy = run(cfg, &trace, EngineKind::Legacy);
        let event = run(cfg, &trace, EngineKind::EventDriven);
        assert_eq!(
            bytes(&legacy),
            bytes(&event),
            "{bench}: engines diverged on shape (4,4)"
        );
    }
}

/// A seeded sample of the full (slices × l2_banks) grid, several
/// benchmarks each — the corners (1,0) and (8,16) always included.
#[test]
fn sampled_shape_grid_is_byte_identical_across_engines() {
    let slices_options = [1usize, 2, 3, 4, 5, 6, 7, 8];
    let banks_options = [0usize, 2, 4, 8, 16];
    let benches = [
        Benchmark::Gcc,
        Benchmark::Libquantum,
        Benchmark::Mcf,
        Benchmark::Apache,
        Benchmark::Omnetpp,
    ];
    let mut state = 0x5EED_CAFE_F00Du64;
    for (i, &bench) in benches.iter().enumerate() {
        let trace = bench.generate(&TraceSpec::new(3_000, 17 + i as u64));
        let mut shapes = vec![(1usize, 0usize), (8, 16)];
        for _ in 0..4 {
            let s = slices_options[(lcg(&mut state) as usize) % slices_options.len()];
            let b = banks_options[(lcg(&mut state) as usize) % banks_options.len()];
            shapes.push((s, b));
        }
        for (s, b) in shapes {
            let Ok(cfg) = SimConfig::with_shape(s, b) else {
                continue; // sampled an invalid corner of the lattice
            };
            let legacy = run(cfg, &trace, EngineKind::Legacy);
            let event = run(cfg, &trace, EngineKind::EventDriven);
            assert_eq!(
                bytes(&legacy),
                bytes(&event),
                "{bench}: engines diverged on shape ({s},{b})"
            );
        }
    }
}

/// The synthetic stress profiles: bursty arrivals and a mid-run phase
/// shift exercise the operand network and cache calendars far from the
/// benchmark steady state.
#[test]
fn stress_profiles_are_byte_identical_across_engines() {
    for profile in [bursty_profile(), phase_shift_profile()] {
        let spec = TraceSpec::new(5_000, 23);
        let trace = ProgramGenerator::new(&profile, spec)
            .expect("profiles validate")
            .generate_single();
        for (s, b) in [(1usize, 0usize), (2, 2), (4, 8), (8, 16)] {
            let cfg = SimConfig::with_shape(s, b).expect("valid shape");
            let legacy = run(cfg, &trace, EngineKind::Legacy);
            let event = run(cfg, &trace, EngineKind::EventDriven);
            assert_eq!(
                bytes(&legacy),
                bytes(&event),
                "{}: engines diverged on shape ({s},{b})",
                profile.name
            );
        }
    }
}

/// Verified runs replay architectural state through the interpreter;
/// both engines must commit the same values.
#[test]
fn verified_runs_agree_across_engines() {
    let trace = Benchmark::Gcc.generate(&TraceSpec::new(2_000, 5));
    for kind in [EngineKind::Legacy, EngineKind::EventDriven] {
        let cfg = SimConfig::with_shape(4, 4).expect("valid shape");
        let out = Simulator::new(cfg)
            .expect("valid config")
            .run_with(&trace, RunOptions::new().engine(kind).verify());
        assert_eq!(
            out.verified,
            Some(true),
            "{} engine failed architectural verification",
            kind.name()
        );
    }
}

/// The cycle profiler's conservation law — every slice's six buckets
/// sum to the run's cycle count — must hold on the event engine, and
/// the attribution itself must match the legacy engine's exactly.
#[cfg(feature = "profile")]
#[test]
fn profiler_conservation_holds_and_matches_across_engines() {
    for &bench in &[Benchmark::Gcc, Benchmark::Mcf, Benchmark::Libquantum] {
        let trace = bench.generate(&TraceSpec::new(3_000, 7));
        for (s, b) in [(2usize, 2usize), (5, 8), (8, 16)] {
            let cfg = SimConfig::with_shape(s, b).expect("valid shape");
            let profiles: Vec<_> = [EngineKind::Legacy, EngineKind::EventDriven]
                .into_iter()
                .map(|kind| {
                    Simulator::new(cfg)
                        .expect("valid config")
                        .run_with(&trace, RunOptions::new().engine(kind).profile())
                        .profile
                        .expect("profiling requested")
                })
                .collect();
            for p in &profiles {
                assert!(
                    p.conserved(),
                    "{bench} ({s},{b}): buckets must sum to cycles per slice"
                );
                assert_eq!(p.per_slice.len(), s);
            }
            assert_eq!(
                sharing_json::to_string(&profiles[0]),
                sharing_json::to_string(&profiles[1]),
                "{bench} ({s},{b}): cycle attribution diverged between engines"
            );
        }
    }
}

/// Timelines are the finest-grained observable: per-instruction fetch
/// through commit cycles must agree stage-for-stage.
#[test]
fn instruction_timings_agree_across_engines() {
    let trace = Benchmark::H264ref.generate(&TraceSpec::new(1_500, 13));
    let cfg = SimConfig::with_shape(4, 4).expect("valid shape");
    let timings: Vec<_> = [EngineKind::Legacy, EngineKind::EventDriven]
        .into_iter()
        .map(|kind| {
            Simulator::new(cfg)
                .expect("valid config")
                .run_with(&trace, RunOptions::new().engine(kind).record_timings())
                .timings
                .expect("timings requested")
        })
        .collect();
    assert_eq!(timings[0].len(), timings[1].len());
    for (a, b) in timings[0].iter().zip(&timings[1]) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "timing diverged");
    }
}
