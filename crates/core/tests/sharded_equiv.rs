//! Differential tests for the sharded engine (DESIGN.md §14).
//!
//! `EngineKind::Sharded` parallelizes a single `VmSimulator` run across
//! worker threads, but the barrier protocol — compute on forks of the
//! shared memory system, replay the recorded access streams in VCore
//! order — makes the worker count unobservable in the output. These
//! tests pin that claim the strong way: every benchmark, every engine
//! kind, worker counts {1, 2, 4, NCPU}, all byte-identical through the
//! JSON serializer; plus the coscheduled-tenant path, the synthetic
//! stress profiles, architectural verification, and the cycle
//! profiler's conservation law on the sharded kind.

use sharing_core::{EngineKind, RunOptions, SimConfig, SimResult, Simulator, VmSimulator};
use sharing_trace::{
    bursty_profile, phase_shift_profile, Benchmark, ProgramGenerator, TraceSpec, ALL_BENCHMARKS,
};

/// Serialized form, so "byte-identical" means exactly that: every
/// counter, every cache statistic, every derived field.
fn bytes(r: &SimResult) -> String {
    sharing_json::to_string(r)
}

fn ncpu() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Worker counts every sweep exercises: serial, small, oversubscribed
/// (more workers than the machine has cores is legal and must not
/// change anything), and the machine's own parallelism.
fn worker_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 4, ncpu()];
    counts.sort_unstable();
    counts.dedup();
    counts
}

const KINDS: [EngineKind; 3] = [
    EngineKind::EventDriven,
    EngineKind::Legacy,
    EngineKind::Sharded,
];

/// The tentpole sweep: all fifteen benchmarks as 4-thread VMs, every
/// engine kind crossed with every worker count, one reference result.
#[test]
fn all_benchmarks_byte_identical_for_any_worker_count() {
    let spec = TraceSpec::new(3_000, 11);
    let cfg = SimConfig::with_shape(2, 4).expect("valid shape");
    for &bench in &ALL_BENCHMARKS {
        let workload = bench.generate_threaded(&spec);
        let reference = bytes(
            &VmSimulator::new(cfg)
                .expect("valid config")
                .with_threads(1)
                .run(&workload),
        );
        for kind in KINDS {
            for workers in worker_counts() {
                let r = VmSimulator::new(cfg)
                    .expect("valid config")
                    .with_engine(kind)
                    .with_threads(workers)
                    .run(&workload);
                assert_eq!(
                    reference,
                    bytes(&r),
                    "{bench}: {} engine with {workers} workers diverged",
                    kind.name()
                );
            }
        }
    }
}

/// The sharded kind's *default* worker count is machine-sized; left
/// implicit it must still match the single-worker reference.
#[test]
fn default_sharded_worker_count_is_unobservable() {
    let cfg = SimConfig::with_shape(2, 4).expect("valid shape");
    let workload = Benchmark::Ferret.generate_threaded(&TraceSpec::new(4_000, 29));
    let reference = VmSimulator::new(cfg)
        .expect("valid config")
        .with_threads(1)
        .run(&workload);
    let sharded = VmSimulator::new(cfg)
        .expect("valid config")
        .with_engine(EngineKind::Sharded)
        .run(&workload);
    assert_eq!(bytes(&reference), bytes(&sharded));
}

/// Coscheduled tenants contend through the shared L2 and directory —
/// the cross-shard interaction the merge order must serialize.
#[test]
fn coscheduled_tenants_byte_identical_for_any_worker_count() {
    let spec = TraceSpec::new(3_000, 7);
    let tenants = [
        Benchmark::Omnetpp.generate(&spec),
        Benchmark::Libquantum.generate(&spec),
        Benchmark::Gcc.generate(&spec),
        Benchmark::Mcf.generate(&spec),
    ];
    let cfg = SimConfig::with_shape(2, 4).expect("valid shape");
    let reference: Vec<String> = VmSimulator::new(cfg)
        .expect("valid config")
        .with_threads(1)
        .run_coscheduled(&tenants)
        .iter()
        .map(bytes)
        .collect();
    for kind in KINDS {
        for workers in worker_counts() {
            let results: Vec<String> = VmSimulator::new(cfg)
                .expect("valid config")
                .with_engine(kind)
                .with_threads(workers)
                .run_coscheduled(&tenants)
                .iter()
                .map(bytes)
                .collect();
            assert_eq!(
                reference,
                results,
                "{} engine with {workers} workers diverged on coscheduled tenants",
                kind.name()
            );
        }
    }
}

/// Chunk size changes the barrier cadence, which legitimately changes
/// timing — but for a fixed chunk the worker count still must not.
#[test]
fn odd_chunk_sizes_stay_worker_count_invariant() {
    let cfg = SimConfig::with_shape(2, 4).expect("valid shape");
    let workload = Benchmark::Dedup.generate_threaded(&TraceSpec::new(2_500, 3));
    for chunk in [1usize, 7, 333, 10_000] {
        let reference = bytes(
            &VmSimulator::new(cfg)
                .expect("valid config")
                .with_chunk(chunk)
                .with_threads(1)
                .run(&workload),
        );
        for workers in [2usize, ncpu().max(2)] {
            let r = VmSimulator::new(cfg)
                .expect("valid config")
                .with_engine(EngineKind::Sharded)
                .with_chunk(chunk)
                .with_threads(workers)
                .run(&workload);
            assert_eq!(
                reference,
                bytes(&r),
                "chunk {chunk} with {workers} workers diverged"
            );
        }
    }
}

/// The synthetic stress profiles push bursty arrivals and a mid-run
/// phase shift through the threaded VM — calendars and the operand
/// network far from benchmark steady state.
#[test]
fn stress_profiles_byte_identical_for_any_worker_count() {
    for profile in [bursty_profile(), phase_shift_profile()] {
        let spec = TraceSpec::new(4_000, 23);
        let workload = ProgramGenerator::new(&profile, spec)
            .expect("profiles validate")
            .generate();
        let cfg = SimConfig::with_shape(2, 4).expect("valid shape");
        let reference = bytes(
            &VmSimulator::new(cfg)
                .expect("valid config")
                .with_threads(1)
                .run(&workload),
        );
        for workers in worker_counts() {
            let r = VmSimulator::new(cfg)
                .expect("valid config")
                .with_engine(EngineKind::Sharded)
                .with_threads(workers)
                .run(&workload);
            assert_eq!(
                reference,
                bytes(&r),
                "{}: {workers} workers diverged",
                profile.name
            );
        }
    }
}

/// On a single-trace `Simulator` run the sharded kind is the event
/// engine wearing a different badge — byte-identical, including on the
/// stress profiles.
#[test]
fn single_trace_sharded_matches_event() {
    let cfg = SimConfig::with_shape(4, 4).expect("valid shape");
    let mut traces = vec![
        Benchmark::Gcc.generate(&TraceSpec::new(4_000, 11)),
        Benchmark::Apache.generate(&TraceSpec::new(4_000, 13)),
    ];
    for profile in [bursty_profile(), phase_shift_profile()] {
        traces.push(
            ProgramGenerator::new(&profile, TraceSpec::new(4_000, 23))
                .expect("profiles validate")
                .generate_single(),
        );
    }
    for trace in &traces {
        let event = Simulator::new(cfg)
            .expect("valid config")
            .run_with(trace, RunOptions::new().engine(EngineKind::EventDriven))
            .result;
        let sharded = Simulator::new(cfg)
            .expect("valid config")
            .run_with(trace, RunOptions::new().engine(EngineKind::Sharded))
            .result;
        assert_eq!(
            bytes(&event),
            bytes(&sharded),
            "{}: sharded diverged from event",
            trace.name()
        );
    }
}

/// Architectural verification replays committed values through the ISA
/// interpreter; the sharded kind must commit the same dataflow.
#[test]
fn verified_runs_agree_on_sharded() {
    let trace = Benchmark::Gcc.generate(&TraceSpec::new(2_000, 5));
    let cfg = SimConfig::with_shape(4, 4).expect("valid shape");
    let out = Simulator::new(cfg).expect("valid config").run_with(
        &trace,
        RunOptions::new().engine(EngineKind::Sharded).verify(),
    );
    assert_eq!(
        out.verified,
        Some(true),
        "sharded engine failed architectural verification"
    );
}

/// The cycle profiler's conservation law — every slice's buckets sum to
/// the run's cycle count — must hold on the sharded kind, and the
/// attribution must match the event engine's exactly.
#[cfg(feature = "profile")]
#[test]
fn profiler_conservation_holds_on_sharded() {
    let trace = Benchmark::Mcf.generate(&TraceSpec::new(3_000, 7));
    let cfg = SimConfig::with_shape(5, 8).expect("valid shape");
    let profiles: Vec<_> = [EngineKind::EventDriven, EngineKind::Sharded]
        .into_iter()
        .map(|kind| {
            Simulator::new(cfg)
                .expect("valid config")
                .run_with(&trace, RunOptions::new().engine(kind).profile())
                .profile
                .expect("profiling requested")
        })
        .collect();
    for p in &profiles {
        assert!(p.conserved(), "buckets must sum to cycles per slice");
    }
    assert_eq!(
        sharing_json::to_string(&profiles[0]),
        sharing_json::to_string(&profiles[1]),
        "cycle attribution diverged between event and sharded"
    );
}
