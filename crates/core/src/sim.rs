//! Single-threaded simulation driver.
//!
//! The one entry point is [`Simulator::run_with`]: every way of running a
//! trace — plain, traced into an obs buffer, with placed banks, verified
//! against the ISA interpreter, profiled, or with per-instruction timing
//! records — is a [`RunOptions`] combination, and every output rides home
//! in one [`RunOutput`]. The older one-method-per-mode entry points
//! (`run`, `run_traced`, `run_placed`, `run_verified`, `run_profiled`,
//! `run_detailed`, `run_phased`) lived out their one deprecated release
//! and are gone.

use crate::config::{ConfigError, SimConfig};
use crate::engine::{InstTiming, MemorySystem, VCoreEngine};
use crate::event::EngineKind;
use crate::reconfig::ReconfigCosts;
use crate::stats::SimResult;
use sharing_trace::Trace;
use std::sync::OnceLock;

/// Feeds the finished run into the process-global obs registry
/// (`ssim_runs_total`, `ssim_cycles_total`, `ssim_instructions_total`).
/// Three relaxed atomic adds per *run* — nothing on the cycle loop — and
/// compiled out entirely when `sharing-obs` is built without its
/// `enabled` feature.
pub(crate) fn observe_run(result: &SimResult) {
    static RUNS: OnceLock<&'static sharing_obs::Counter> = OnceLock::new();
    static CYCLES: OnceLock<&'static sharing_obs::Counter> = OnceLock::new();
    static INSTS: OnceLock<&'static sharing_obs::Counter> = OnceLock::new();
    RUNS.get_or_init(|| sharing_obs::counter("ssim_runs_total"))
        .inc();
    CYCLES
        .get_or_init(|| sharing_obs::counter("ssim_cycles_total"))
        .add(result.cycles);
    INSTS
        .get_or_init(|| sharing_obs::counter("ssim_instructions_total"))
        .add(result.instructions);
}

/// What a [`Simulator::run_with`] call should do beyond timing the trace.
///
/// Built fluently; the default is a plain run on the (event-driven)
/// default engine. Every option is pure observation or placement — none
/// changes the committed [`SimResult`] except `bank_distances`, which
/// models genuinely different hardware.
///
/// # Example
///
/// ```
/// use sharing_core::{EngineKind, RunOptions, SimConfig, Simulator};
/// use sharing_trace::{Benchmark, TraceSpec};
///
/// let trace = Benchmark::Gcc.generate(&TraceSpec::new(2_000, 1));
/// let sim = Simulator::new(SimConfig::with_shape(2, 2)?)?;
/// let out = sim.run_with(&trace, RunOptions::new().verify().record_timings());
/// assert_eq!(out.verified, Some(true));
/// assert_eq!(out.timings.unwrap().len() as u64, out.result.instructions);
/// // The legacy polled engine produces byte-identical results.
/// let legacy = sim.run_with(&trace, RunOptions::new().engine(EngineKind::Legacy));
/// assert_eq!(legacy.result, out.result);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct RunOptions<'a> {
    engine: EngineKind,
    bank_distances: Option<Vec<u32>>,
    trace_to: Option<&'a sharing_obs::TraceBuffer>,
    #[cfg(feature = "profile")]
    profile: bool,
    timings: bool,
    verify: bool,
}

impl<'a> RunOptions<'a> {
    /// A plain run: default (event-driven) engine, no extras.
    #[must_use]
    pub fn new() -> Self {
        RunOptions::default()
    }

    /// Selects the engine implementation. All kinds produce
    /// byte-identical [`SimResult`]s (see [`EngineKind`]); `Legacy` is
    /// the polled oracle kept for differential testing.
    #[must_use]
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = kind;
        self
    }

    /// Places the L2 banks at explicit network distances — the
    /// hypervisor's real placement for a lease (e.g.
    /// `sharing_hv::Lease::bank_distances`) rather than the default
    /// compact ring. A crowded chip hands out distant banks, and this is
    /// where that shows up as cycles.
    #[must_use]
    pub fn bank_distances(mut self, distances: Vec<u32>) -> Self {
        self.bank_distances = Some(distances);
        self
    }

    /// Records one *logical-cycle* span for the whole run into `obs`:
    /// the span covers `[0, cycles)` in simulated time and carries
    /// instructions, cycles, IPC, and the shape as args. Because the
    /// timestamps come from the simulated clock (never a real one),
    /// tracing is exactly as deterministic as the result — enabling it
    /// cannot perturb bit-for-bit replay.
    #[must_use]
    pub fn trace_to(mut self, obs: &'a sharing_obs::TraceBuffer) -> Self {
        self.trace_to = Some(obs);
        self
    }

    /// Arms the cycle-attribution profiler (see [`crate::profile`]):
    /// [`RunOutput::profile`] gets every simulated cycle of every Slice
    /// binned into fetch/issue/FU-busy/DRAM-stall/ROB-full/idle. Pure
    /// observation — the result stays bit-identical — and bucket totals
    /// are accumulated into the process-global obs registry
    /// (`ssim_profile_<bucket>_cycles_total`).
    #[cfg(feature = "profile")]
    #[must_use]
    pub fn profile(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Records per-instruction timings into [`RunOutput::timings`]
    /// (tests/debugging; memory grows with trace length).
    #[must_use]
    pub fn record_timings(mut self) -> Self {
        self.timings = true;
        self
    }

    /// Verifies dataflow: the engine computes every instruction's
    /// architectural value through its own rename and store-forwarding
    /// bookkeeping, and the committed destination-value stream is
    /// compared against the reference [`sharing_isa::Interpreter`].
    /// [`RunOutput::verified`] reports whether the streams matched; a
    /// `false` means the pipeline model broke program semantics — e.g.
    /// forwarded from the wrong store or resolved a stale register
    /// version.
    #[must_use]
    pub fn verify(mut self) -> Self {
        self.verify = true;
        self
    }
}

/// Everything a [`Simulator::run_with`] call produced. `result` is
/// always present; the optional fields are `Some` exactly when the
/// corresponding [`RunOptions`] switch was set.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct RunOutput {
    /// The timing result (always produced).
    pub result: SimResult,
    /// Cycle-attribution profile, when [`RunOptions::profile`] was set.
    #[cfg(feature = "profile")]
    pub profile: Option<crate::profile::CycleProfile>,
    /// Per-instruction timings, when [`RunOptions::record_timings`] was
    /// set.
    pub timings: Option<Vec<InstTiming>>,
    /// Whether committed values matched the ISA interpreter, when
    /// [`RunOptions::verify`] was set.
    pub verified: Option<bool>,
}

/// Convenience driver: one trace, one VCore, private memory system.
///
/// # Example
///
/// ```
/// use sharing_core::{RunOptions, SimConfig, Simulator};
/// use sharing_trace::{Benchmark, TraceSpec};
///
/// let cfg = SimConfig::with_shape(2, 2)?; // 2 Slices, 128 KB L2
/// let trace = Benchmark::Gcc.generate(&TraceSpec::new(3_000, 1));
/// let result = Simulator::new(cfg)?.run_with(&trace, RunOptions::new()).result;
/// assert!(result.ipc() > 0.05);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulator {
    cfg: SimConfig,
}

impl Simulator {
    /// Creates a simulator after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid.
    pub fn new(cfg: SimConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(Simulator { cfg })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Runs a trace to completion under `options` — the single entry
    /// point every older `run_*` method now forwards to. See
    /// [`RunOptions`] for what can ride along and [`RunOutput`] for what
    /// comes back.
    ///
    /// # Panics
    ///
    /// Panics if [`RunOptions::bank_distances`] was given a vector whose
    /// length differs from the configured bank count.
    #[must_use]
    pub fn run_with(&self, trace: &Trace, options: RunOptions<'_>) -> RunOutput {
        let mut mem = match options.bank_distances {
            Some(distances) => {
                assert_eq!(
                    distances.len(),
                    self.cfg.l2_banks(),
                    "one distance per configured bank"
                );
                MemorySystem::private_placed(distances, self.cfg.mem.memory_delay)
            }
            None => MemorySystem::private(self.cfg.l2_banks(), self.cfg.mem.memory_delay),
        };
        let mut engine = VCoreEngine::new_with_kind(self.cfg, 0, options.engine);
        if options.verify {
            engine.enable_verification();
        }
        if options.timings {
            engine.enable_recording();
        }
        #[cfg(feature = "profile")]
        if options.profile {
            engine.enable_profiling();
        }
        engine.run_chunk(&mut mem, trace.insts());

        let verified = options.verify.then(|| {
            let committed = engine.committed_values().expect("verification enabled");
            committed == sharing_isa::Interpreter::new().run(trace.insts())
        });
        let timings = options
            .timings
            .then(|| engine.timings().expect("recording enabled").to_vec());
        #[cfg(feature = "profile")]
        let profile = options
            .profile
            .then(|| engine.cycle_profile().expect("profiling enabled"));

        let mut result = engine.finish(trace.name());
        VCoreEngine::absorb_mem_stats(&mut result, &mem);
        observe_run(&result);
        #[cfg(feature = "profile")]
        if let Some(p) = &profile {
            crate::profile::observe_profile(p);
        }
        if let Some(obs) = options.trace_to {
            use sharing_json::Json;
            obs.record_logical(
                format!("simulate {}", trace.name()),
                "ssim",
                0,
                0,
                result.cycles,
                vec![
                    (
                        "instructions".into(),
                        Json::Int(i128::from(result.instructions)),
                    ),
                    ("cycles".into(), Json::Int(i128::from(result.cycles))),
                    ("ipc".into(), Json::Float(result.ipc())),
                    ("slices".into(), Json::Int(self.cfg.slices() as i128)),
                    ("l2_banks".into(), Json::Int(self.cfg.l2_banks() as i128)),
                ],
            );
        }
        RunOutput {
            result,
            #[cfg(feature = "profile")]
            profile,
            timings,
            verified,
        }
    }
}

/// Runs a sequence of (trace phase, configuration) pairs on a dynamically
/// reconfigured VCore, charging the paper's reconfiguration costs between
/// phases (§5.10). Caches and predictors restart cold per phase — matching
/// the L2-flush semantics of reconfiguration — and the returned cycle count
/// includes the reconfiguration stalls. `engine` selects the engine
/// implementation for every phase (byte-identical results either way).
///
/// # Errors
///
/// Returns [`ConfigError`] if any phase configuration is invalid.
///
/// # Panics
///
/// Panics if `phases` is empty.
pub fn run_phased_with(
    phases: &[(Trace, SimConfig)],
    costs: ReconfigCosts,
    engine: EngineKind,
) -> Result<SimResult, ConfigError> {
    assert!(!phases.is_empty(), "at least one phase required");
    let mut total = SimResult {
        workload: phases[0].0.name().to_string(),
        ..SimResult::default()
    };
    let mut prev_shape = None;
    for (trace, cfg) in phases {
        let r = Simulator::new(*cfg)?
            .run_with(trace, RunOptions::new().engine(engine))
            .result;
        if let Some(prev) = prev_shape {
            total.cycles += costs.cost(prev, cfg.shape());
        }
        prev_shape = Some(cfg.shape());
        total.cycles += r.cycles;
        total.instructions += r.instructions;
        total.mem.lsq_violations += r.mem.lsq_violations;
        total.predictor.predictions += r.predictor.predictions;
        total.predictor.mispredictions += r.predictor.mispredictions;
    }
    total.shape = prev_shape;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VCoreShape;
    use sharing_trace::{Benchmark, Trace, TraceSpec};

    fn gcc(len: usize) -> Trace {
        Benchmark::Gcc.generate(&TraceSpec::new(len, 7))
    }

    /// Plain run through the unified entry point.
    fn run_plain(cfg: SimConfig, t: &Trace) -> SimResult {
        Simulator::new(cfg)
            .unwrap()
            .run_with(t, RunOptions::new())
            .result
    }

    #[test]
    fn runs_and_reports() {
        let cfg = SimConfig::with_shape(1, 2).unwrap();
        let r = run_plain(cfg, &gcc(2_000));
        assert_eq!(r.instructions, 2_000);
        assert!(r.cycles > 2_000, "one ALU cannot exceed IPC 1 overall");
        assert_eq!(r.shape, Some(VCoreShape::new(1, 2).unwrap()));
        assert!(r.mem.l1d.accesses > 0);
        assert!(r.predictor.predictions > 0);
    }

    #[test]
    fn deterministic_results() {
        let cfg = SimConfig::with_shape(3, 4).unwrap();
        let t = gcc(3_000);
        let a = run_plain(cfg, &t);
        let b = run_plain(cfg, &t);
        assert_eq!(a, b);
    }

    #[test]
    fn more_slices_help_an_ilp_workload() {
        let t = Benchmark::Libquantum.generate(&TraceSpec::new(8_000, 3));
        let one = run_plain(SimConfig::with_shape(1, 2).unwrap(), &t);
        let four = run_plain(SimConfig::with_shape(4, 2).unwrap(), &t);
        assert!(
            four.ipc() > one.ipc() * 1.3,
            "4 slices {:.3} should beat 1 slice {:.3}",
            four.ipc(),
            one.ipc()
        );
    }

    #[test]
    fn timing_invariants_hold() {
        let cfg = SimConfig::with_shape(4, 2).unwrap();
        let out = Simulator::new(cfg)
            .unwrap()
            .run_with(&gcc(2_000), RunOptions::new().record_timings());
        let (r, timings) = (out.result, out.timings.unwrap());
        assert_eq!(timings.len() as u64, r.instructions);
        let mut prev_commit = 0;
        for t in &timings {
            assert!(t.dispatch > t.fetch, "dispatch after fetch: {t:?}");
            assert!(t.issue > t.dispatch, "issue after dispatch: {t:?}");
            assert!(t.exec_done > t.issue, "exec after issue: {t:?}");
            assert!(t.commit >= t.exec_done, "commit after exec: {t:?}");
            assert!(t.commit >= prev_commit, "in-order commit: {t:?}");
            assert!(t.slice < 4);
            prev_commit = t.commit;
        }
    }

    #[cfg(feature = "profile")]
    #[test]
    fn profile_buckets_conserve_cycles_at_every_shape() {
        for (s, b) in [(1usize, 2usize), (2, 0), (4, 4), (8, 2)] {
            let cfg = SimConfig::with_shape(s, b).unwrap();
            let out = Simulator::new(cfg)
                .unwrap()
                .run_with(&gcc(5_000), RunOptions::new().profile());
            let (r, p) = (out.result, out.profile.unwrap());
            assert_eq!(p.cycles, r.cycles);
            assert_eq!(p.per_slice.len(), s);
            for (i, sc) in p.per_slice.iter().enumerate() {
                assert_eq!(
                    sc.total(),
                    p.cycles,
                    "slice {i} of {s}s/{b}b leaked cycles: {sc:?}"
                );
            }
            assert!(p.conserved());
        }
    }

    #[cfg(feature = "profile")]
    #[test]
    fn profiling_is_pure_observation() {
        // Arming the profiler must not change the result by a single bit,
        // and the profile itself must be byte-identical across runs.
        let cfg = SimConfig::with_shape(4, 2).unwrap();
        let t = gcc(4_000);
        let sim = Simulator::new(cfg).unwrap();
        let plain = sim.run_with(&t, RunOptions::new()).result;
        let out_a = sim.run_with(&t, RunOptions::new().profile());
        let out_b = sim.run_with(&t, RunOptions::new().profile());
        let (a_result, a) = (out_a.result, out_a.profile.unwrap());
        let (b_result, b) = (out_b.result, out_b.profile.unwrap());
        assert_eq!(plain, a_result, "profiling perturbed the result");
        assert_eq!(a_result, b_result);
        assert_eq!(a, b);
        assert_eq!(sharing_json::to_string(&a), sharing_json::to_string(&b));
    }

    #[cfg(feature = "profile")]
    #[test]
    fn profile_sees_dram_on_memory_bound_work_and_not_on_alu_work() {
        use sharing_isa::{ArchReg, DynInst, MemSize};
        // Strided loads with no L2: beyond-L1 time must show up as DRAM.
        let loads: Vec<DynInst> = (0..2_000)
            .map(|i| DynInst::load(4 * i, ArchReg::new(1), None, 0x1000 + 64 * i, MemSize::B8))
            .collect();
        let cfg = SimConfig::with_shape(1, 0).unwrap();
        let p = Simulator::new(cfg)
            .unwrap()
            .run_with(&Trace::from_insts("ld", loads), RunOptions::new().profile())
            .profile
            .unwrap();
        let t = p.totals();
        assert!(
            t.dram_stall > p.cycles / 2,
            "memory-bound run must be DRAM-dominated: {t:?} of {} cycles",
            p.cycles
        );
        // A pure dependent-ALU chain never leaves the core.
        let r = ArchReg::new(1);
        let alus: Vec<DynInst> = (0..2_000).map(|i| DynInst::alu(4 * i, r, &[r])).collect();
        let p = Simulator::new(cfg)
            .unwrap()
            .run_with(&Trace::from_insts("alu", alus), RunOptions::new().profile())
            .profile
            .unwrap();
        assert_eq!(p.totals().dram_stall, 0, "ALU chain cannot touch DRAM");
    }

    #[test]
    fn gshare_predicts_every_branch_bimodal_does() {
        use crate::config::{ModelKnobs, PredictorKind};
        let t = Benchmark::Gcc.generate(&TraceSpec::new(20_000, 5));
        let bimodal = SimConfig::with_shape(1, 2).unwrap();
        let gshare = SimConfig::builder()
            .slices(1)
            .l2_banks(2)
            .knobs(ModelKnobs {
                predictor: PredictorKind::Gshare { history_bits: 12 },
                ..ModelKnobs::default()
            })
            .build()
            .unwrap();
        let rb = run_plain(bimodal, &t);
        let rg = run_plain(gshare, &t);
        assert_eq!(rb.instructions, rg.instructions);
        assert_eq!(rb.predictor.predictions, rg.predictor.predictions);
        assert!(rg.predictor.mispredict_rate() < 0.5);
    }

    #[test]
    fn gshare_learns_patterned_branches_bimodal_cannot() {
        use crate::config::{ModelKnobs, PredictorKind};
        use sharing_trace::{ProgramGenerator, WorkloadProfile};
        // A workload whose hard branches all follow short repeating
        // patterns: correlated history, the textbook gshare win.
        // One small loop, every branch patterned: deterministic history
        // with few enough (pc, history) contexts to fit the table.
        let p = WorkloadProfile::builder("patterned")
            .chains(3)
            .branch_frac(0.25)
            .hard_branches(1.0, 0.5)
            .pattern_branches(1.0)
            .loops(1, 48, 100_000)
            .build();
        let t = ProgramGenerator::new(&p, sharing_trace::TraceSpec::new(30_000, 5))
            .unwrap()
            .generate_single();
        let bimodal = SimConfig::with_shape(1, 2).unwrap();
        let gshare = SimConfig::builder()
            .slices(1)
            .l2_banks(2)
            .knobs(ModelKnobs {
                predictor: PredictorKind::Gshare { history_bits: 10 },
                ..ModelKnobs::default()
            })
            .build()
            .unwrap();
        let rb = run_plain(bimodal, &t);
        let rg = run_plain(gshare, &t);
        assert!(
            rg.predictor.mispredict_rate() < 0.7 * rb.predictor.mispredict_rate(),
            "gshare {:.3} should clearly beat bimodal {:.3} on periodic branches",
            rg.predictor.mispredict_rate(),
            rb.predictor.mispredict_rate()
        );
    }

    #[test]
    fn gshare_history_staleness_costs_accuracy_at_many_slices() {
        use crate::config::{ModelKnobs, PredictorKind};
        let t = Benchmark::Sjeng.generate(&TraceSpec::new(20_000, 5));
        let mk = |slices: usize| {
            SimConfig::builder()
                .slices(slices)
                .l2_banks(2)
                .knobs(ModelKnobs {
                    predictor: PredictorKind::Gshare { history_bits: 12 },
                    ..ModelKnobs::default()
                })
                .build()
                .unwrap()
        };
        let one = run_plain(mk(1), &t);
        let eight = run_plain(mk(8), &t);
        // The composed (delayed) GHR can only hurt accuracy.
        assert!(
            eight.predictor.mispredict_rate() >= one.predictor.mispredict_rate() - 0.01,
            "stale history should not improve prediction: {:.3} vs {:.3}",
            eight.predictor.mispredict_rate(),
            one.predictor.mispredict_rate()
        );
    }

    #[test]
    fn dataflow_verification_passes_on_real_workloads() {
        for bench in [Benchmark::Gcc, Benchmark::Mcf, Benchmark::Libquantum] {
            let t = bench.generate(&TraceSpec::new(5_000, 17));
            for (s, b) in [(1, 0), (4, 4), (8, 2)] {
                let cfg = SimConfig::with_shape(s, b).unwrap();
                let out = Simulator::new(cfg)
                    .unwrap()
                    .run_with(&t, RunOptions::new().verify());
                assert_eq!(
                    out.verified,
                    Some(true),
                    "{bench} at {s}s/{b}b diverged from the interpreter"
                );
                assert_eq!(out.result.instructions, 5_000);
            }
        }
    }

    #[test]
    fn empty_trace_is_a_noop() {
        let cfg = SimConfig::with_shape(4, 4).unwrap();
        let r = run_plain(cfg, &Trace::from_insts("empty", vec![]));
        assert_eq!(r.instructions, 0);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.ipc(), 0.0);
    }

    #[test]
    fn single_instruction_commits() {
        use sharing_isa::{ArchReg, DynInst};
        let cfg = SimConfig::with_shape(8, 0).unwrap();
        let t = Trace::from_insts("one", vec![DynInst::alu(0x40, ArchReg::new(1), &[])]);
        let r = run_plain(cfg, &t);
        assert_eq!(r.instructions, 1);
        assert!(r.cycles >= 1);
    }

    #[test]
    fn taken_jump_chains_stress_the_front_end() {
        use sharing_isa::DynInst;
        // Every instruction is a taken jump: each fetch group is one
        // instruction, and BTB misses bubble until targets are learned.
        let insts: Vec<DynInst> = (0..512)
            .map(|i| {
                let pc = 0x1000 + 8 * (i % 64);
                let target = 0x1000 + 8 * ((i + 1) % 64);
                DynInst::jump(pc, target)
            })
            .collect();
        let t = Trace::from_insts("jumps", insts);
        let r = run_plain(SimConfig::with_shape(2, 1).unwrap(), &t);
        assert_eq!(r.instructions, 512);
        // One-instruction fetch groups cap IPC at ~1.
        assert!(r.ipc() <= 1.05, "jump chain IPC {:.2}", r.ipc());
        assert!(r.predictor.btb_misses >= 32, "cold BTB must miss");
    }

    #[test]
    fn store_only_and_load_only_traces_are_total() {
        use sharing_isa::{ArchReg, DynInst, MemSize};
        let r1 = ArchReg::new(1);
        let stores: Vec<DynInst> = (0..256)
            .map(|i| DynInst::store(4 * i, r1, None, 0x1000 + 8 * i, MemSize::B8))
            .collect();
        let loads: Vec<DynInst> = (0..256)
            .map(|i| DynInst::load(4 * i, r1, None, 0x1000 + 8 * i, MemSize::B8))
            .collect();
        let cfg = SimConfig::with_shape(2, 2).unwrap();
        let rs = run_plain(cfg, &Trace::from_insts("st", stores));
        let rl = run_plain(cfg, &Trace::from_insts("ld", loads));
        assert_eq!(rs.instructions, 256);
        assert_eq!(rl.instructions, 256);
        assert_eq!(rs.mem.l1d.accesses, 256);
        assert!(rl.mem.l1d.accesses >= 256);
    }

    #[test]
    fn per_slice_stats_show_balanced_interleaving() {
        let cfg = SimConfig::with_shape(4, 2).unwrap();
        let r = run_plain(cfg, &gcc(20_000));
        assert_eq!(r.per_slice.len(), 4);
        // PC interleaving spreads predictions; line interleaving spreads
        // D-cache traffic. Neither should be wildly lopsided.
        let preds: Vec<u64> = r
            .per_slice
            .iter()
            .map(|s| s.predictor.predictions)
            .collect();
        let accs: Vec<u64> = r.per_slice.iter().map(|s| s.l1d.accesses).collect();
        let spread = |v: &[u64]| {
            let max = *v.iter().max().unwrap() as f64;
            let min = *v.iter().min().unwrap() as f64;
            max / min.max(1.0)
        };
        assert!(spread(&preds) < 4.0, "prediction spread {preds:?}");
        assert!(spread(&accs) < 3.0, "L1D access spread {accs:?}");
        // Per-slice counters sum to the aggregate.
        assert_eq!(
            preds.iter().sum::<u64>(),
            r.predictor.predictions,
            "per-slice predictions must sum to the aggregate"
        );
        assert_eq!(accs.iter().sum::<u64>(), r.mem.l1d.accesses);
    }

    #[test]
    fn phased_run_charges_reconfiguration() {
        let t = gcc(4_000);
        let phases = t.split_phases(2);
        let cfg_a = SimConfig::with_shape(2, 2).unwrap();
        let cfg_b = SimConfig::with_shape(2, 4).unwrap();
        let phased = run_phased_with(
            &[(phases[0].clone(), cfg_a), (phases[1].clone(), cfg_b)],
            ReconfigCosts::paper(),
            EngineKind::default(),
        )
        .unwrap();
        let same = run_phased_with(
            &[(phases[0].clone(), cfg_a), (phases[1].clone(), cfg_a)],
            ReconfigCosts::paper(),
            EngineKind::default(),
        )
        .unwrap();
        assert_eq!(phased.instructions, 4_000);
        // Cache change costs 10 000; slice-identical costs 0.
        assert!(phased.cycles >= same.cycles.saturating_sub(20_000));
        let raw_a = run_plain(SimConfig::with_shape(2, 2).unwrap(), &phases[0]);
        assert!(phased.cycles > raw_a.cycles, "includes both phases");
    }

    /// The three engines must agree to the byte on the full result; the
    /// heavy cross-benchmark sweeps live in `tests/event_equiv.rs` and
    /// `tests/sharded_equiv.rs`.
    #[test]
    fn engines_are_byte_identical_smoke() {
        let t = gcc(6_000);
        for (s, b) in [(1usize, 0usize), (2, 2), (8, 16)] {
            let sim = Simulator::new(SimConfig::with_shape(s, b).unwrap()).unwrap();
            let event = sim.run_with(&t, RunOptions::new());
            let legacy = sim.run_with(&t, RunOptions::new().engine(EngineKind::Legacy));
            let sharded = sim.run_with(&t, RunOptions::new().engine(EngineKind::Sharded));
            assert_eq!(event.result, legacy.result, "{s}s/{b}b legacy diverged");
            assert_eq!(event.result, sharded.result, "{s}s/{b}b sharded diverged");
        }
    }
}
