//! Simulation results and counters.
//!
//! Mirrors what the paper says SSim reports: "the cycles executed for a
//! given workload along with cache miss rates and stage-based
//! micro-architecture stalls and statistics" (§5.2).

use crate::config::VCoreShape;
use crate::predictor::PredictorStats;
use sharing_cache::CacheStats;
use sharing_json::json_struct;
use sharing_noc::NetStats;

/// Cycles lost waiting on each structural resource (attributed at
/// dispatch).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Reorder buffer full.
    pub rob_full: u64,
    /// ALU or LS issue window full.
    pub window_full: u64,
    /// LSQ bank full.
    pub lsq_full: u64,
    /// MSHR (in-flight load limit) full.
    pub mshr_full: u64,
    /// Store buffer full at commit.
    pub store_buffer_full: u64,
    /// Global logical register free-list empty.
    pub freelist_empty: u64,
    /// Front-end bubbles from branch mispredictions.
    pub mispredict: u64,
    /// Front-end bubbles from I-cache misses.
    pub icache: u64,
}

/// Memory-hierarchy counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemCounters {
    /// Aggregated L1 D-cache statistics (all Slices).
    pub l1d: CacheStats,
    /// Aggregated L1 I-cache statistics (all Slices).
    pub l1i: CacheStats,
    /// Aggregated L2 bank statistics.
    pub l2: CacheStats,
    /// Accesses that went to main memory.
    pub memory_accesses: u64,
    /// Loads forwarded from an in-flight store.
    pub store_forwards: u64,
    /// Load/store ordering violations detected by the LSQ (§3.6).
    pub lsq_violations: u64,
    /// Coherence invalidations received from other VCores.
    pub coherence_invalidations: u64,
    /// Dirty-line forwards between VCores.
    pub coherence_forwards: u64,
}

/// Per-Slice activity (fetch/predict on the PC-interleaved front end,
/// memory on the line-interleaved home Slice).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SliceStats {
    /// This Slice's branch predictor.
    pub predictor: PredictorStats,
    /// This Slice's L1 D-cache (home-Slice traffic).
    pub l1d: CacheStats,
    /// This Slice's L1 I-cache.
    pub l1i: CacheStats,
}

/// The result of simulating one trace on one VCore configuration.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimResult {
    /// Workload name.
    pub workload: String,
    /// The VCore shape simulated (defaults to 1 Slice, 0 banks for
    /// `Default`).
    pub shape: Option<VCoreShape>,
    /// Total cycles to commit the trace.
    pub cycles: u64,
    /// Committed instructions.
    pub instructions: u64,
    /// Branch predictor statistics (aggregated over Slices).
    pub predictor: PredictorStats,
    /// Memory counters.
    pub mem: MemCounters,
    /// Stall attribution.
    pub stalls: StallBreakdown,
    /// Operand-network statistics.
    pub operand_net: NetStats,
    /// Operand requests that crossed Slices.
    pub remote_operand_requests: u64,
    /// Operand reads satisfied by an already-fetched LRF copy (§3.2.2:
    /// repeated reads do not re-request).
    pub lrf_copy_hits: u64,
    /// Load/store-sorting network messages.
    pub ls_sort_messages: u64,
    /// Global-rename broadcast messages.
    pub rename_broadcasts: u64,
    /// Per-Slice breakdown (one entry per Slice, index = Slice id).
    pub per_slice: Vec<SliceStats>,
}

json_struct!(StallBreakdown {
    rob_full,
    window_full,
    lsq_full,
    mshr_full,
    store_buffer_full,
    freelist_empty,
    mispredict,
    icache,
});

json_struct!(MemCounters {
    l1d,
    l1i,
    l2,
    memory_accesses,
    store_forwards,
    lsq_violations,
    coherence_invalidations,
    coherence_forwards,
});

json_struct!(SliceStats {
    predictor,
    l1d,
    l1i
});

json_struct!(SimResult {
    workload,
    shape,
    cycles,
    instructions,
    predictor,
    mem,
    stalls,
    operand_net,
    remote_operand_requests,
    lrf_copy_hits,
    ls_sort_messages,
    rename_broadcasts,
} defaults { per_slice });

impl SimResult {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Performance as defined throughout the paper's evaluation: inverse
    /// time for a fixed workload, i.e. proportional to IPC.
    #[must_use]
    pub fn performance(&self) -> f64 {
        self.ipc()
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{}: {} insts in {} cycles (IPC {:.3}), L1D miss {:.1}%, L2 miss {:.1}%, br mispredict {:.1}%, violations {}",
            self.workload,
            self.instructions,
            self.cycles,
            self.ipc(),
            100.0 * self.mem.l1d.miss_rate(),
            100.0 * self.mem.l2.miss_rate(),
            100.0 * self.predictor.mispredict_rate(),
            self.mem.lsq_violations,
        )
    }
}

impl std::fmt::Display for SimResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        let r = SimResult::default();
        assert_eq!(r.ipc(), 0.0);
    }

    #[test]
    fn ipc_and_performance_agree() {
        let r = SimResult {
            cycles: 500,
            instructions: 1000,
            ..SimResult::default()
        };
        assert!((r.ipc() - 2.0).abs() < 1e-12);
        assert_eq!(r.ipc(), r.performance());
    }

    #[test]
    fn summary_mentions_workload() {
        let r = SimResult {
            workload: "gcc".to_string(),
            cycles: 10,
            instructions: 5,
            ..SimResult::default()
        };
        assert!(r.summary().contains("gcc"));
        assert!(r.to_string().contains("IPC"));
    }
}
