//! A live, reconfigurable Virtual Core (paper §3.8).
//!
//! [`run_phased_with`](crate::run_phased_with) approximates reconfiguration by
//! restarting the simulator cold each phase. This module models what the
//! hardware actually does:
//!
//! * **Slice-count changes** keep the L2 banks and their contents — only a
//!   Register Flush and interconnect reprogramming happen (500 cycles), so
//!   a warm working set stays warm. (L1 contents effectively remap because
//!   the Slice-interleaving of lines changes, and per-Slice predictors
//!   restart — both modeled by the fresh Slice state.)
//! * **Bank-count changes** flush all dirty bank state to memory and
//!   restart the L2 cold (10 000 cycles).
//!
//! The VCore's clock runs continuously across reconfigurations, and
//! statistics accumulate across every shape it has worn.

use crate::config::{ConfigError, SimConfig, VCoreShape};
use crate::engine::{MemorySystem, VCoreEngine};
use crate::event::EngineKind;
use crate::reconfig::ReconfigCosts;
use crate::stats::SimResult;
use sharing_isa::DynInst;
use sharing_trace::Trace;

/// A Virtual Core that can be resized while it runs.
///
/// # Example
///
/// ```
/// use sharing_core::{ReconfigurableVCore, SimConfig, VCoreShape};
/// use sharing_trace::{Benchmark, TraceSpec};
///
/// let trace = Benchmark::Gcc.generate(&TraceSpec::new(6_000, 1));
/// let phases = trace.split_phases(3);
/// let mut vcore = ReconfigurableVCore::new(SimConfig::with_shape(1, 2)?)?;
/// vcore.run(&phases[0]);
/// vcore.reconfigure(VCoreShape::new(4, 2)?)?;   // slice-only: L2 stays warm
/// vcore.run(&phases[1]);
/// vcore.reconfigure(VCoreShape::new(4, 8)?)?;   // bank change: L2 flushes
/// vcore.run(&phases[2]);
/// let result = vcore.finish();
/// assert_eq!(result.instructions, 6_000);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ReconfigurableVCore {
    cfg: SimConfig,
    engine: VCoreEngine,
    mem: MemorySystem,
    costs: ReconfigCosts,
    kind: EngineKind,
    /// Results of completed (pre-reconfiguration) engine incarnations.
    completed: Vec<SimResult>,
    /// Memory-system counters already attributed to retired incarnations
    /// (`MemorySystem` counts cumulatively): `(l2 accesses, l2 hits,
    /// memory accesses)`.
    mem_baseline: (u64, u64, u64),
    reconfigurations: u64,
    reconfig_cycles: u64,
}

impl ReconfigurableVCore {
    /// Creates a live VCore with the paper's reconfiguration costs.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid.
    pub fn new(cfg: SimConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(ReconfigurableVCore {
            engine: VCoreEngine::new(cfg, 0),
            mem: MemorySystem::private(cfg.l2_banks(), cfg.mem.memory_delay),
            cfg,
            costs: ReconfigCosts::paper(),
            kind: EngineKind::default(),
            completed: Vec::new(),
            mem_baseline: (0, 0, 0),
            reconfigurations: 0,
            reconfig_cycles: 0,
        })
    }

    /// Overrides the reconfiguration cost model.
    #[must_use]
    pub fn with_costs(mut self, costs: ReconfigCosts) -> Self {
        self.costs = costs;
        self
    }

    /// Selects the engine implementation for this and every future
    /// incarnation (byte-identical results either way; see
    /// [`EngineKind`]). Call before the first [`run`](Self::run).
    #[must_use]
    pub fn with_engine(mut self, kind: EngineKind) -> Self {
        self.kind = kind;
        self.engine = VCoreEngine::new_with_kind(self.cfg, 0, kind);
        self
    }

    /// The current shape.
    #[must_use]
    pub fn shape(&self) -> VCoreShape {
        self.cfg.shape()
    }

    /// Cycles elapsed on the VCore's continuous clock.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.engine.cycles()
    }

    /// Reconfigurations performed so far.
    #[must_use]
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }

    /// Runs a batch of committed-path instructions on the current shape.
    pub fn run(&mut self, trace: &Trace) {
        self.engine.run_chunk(&mut self.mem, trace.insts());
    }

    /// Runs raw instructions (for streaming callers).
    pub fn run_insts(&mut self, insts: &[DynInst]) {
        self.engine.run_chunk(&mut self.mem, insts);
    }

    /// Resizes the VCore in place, charging the paper's §3.8 costs and
    /// carrying the clock forward. Slice-only changes keep the L2 warm;
    /// bank-count changes flush it. Returns the cycles charged.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the new shape is invalid.
    pub fn reconfigure(&mut self, new_shape: VCoreShape) -> Result<u64, ConfigError> {
        let old_shape = self.cfg.shape();
        if new_shape == old_shape {
            return Ok(0);
        }
        let new_cfg = SimConfig::builder()
            .slices(new_shape.slices)
            .l2_banks(new_shape.l2_banks)
            .slice_params(self.cfg.slice)
            .mem_params(self.cfg.mem)
            .knobs(self.cfg.knobs)
            .build()?;
        let cost = self.costs.cost(old_shape, new_shape);
        let resume_at = self.engine.cycles() + cost;

        // Retire the old engine's statistics, attributing only the memory
        // traffic this incarnation added.
        let old_engine = std::mem::replace(
            &mut self.engine,
            VCoreEngine::new_with_kind(new_cfg, 0, self.kind),
        );
        let mut retired = old_engine.finish("phase");
        self.absorb_mem_delta(&mut retired);
        self.completed.push(retired);

        if new_shape.l2_banks == old_shape.l2_banks {
            // Slice-only change: the bank set is untouched — dirty contents
            // survive (the Register Flush rides the operand network).
        } else {
            // Bank set changes: dirty state goes to memory and the new set
            // starts cold (§3.8: "all dirty state in L2 Cache Banks be
            // flushed to main memory before reconfiguration").
            self.mem.l2.flush_all();
            self.mem = MemorySystem::private(new_shape.l2_banks, new_cfg.mem.memory_delay);
            self.mem_baseline = (0, 0, 0);
        }
        self.cfg = new_cfg;
        self.engine.add_stall_cycles(resume_at);
        self.reconfigurations += 1;
        self.reconfig_cycles += cost;
        Ok(cost)
    }

    /// Attributes the memory traffic since the last baseline to `result`.
    fn absorb_mem_delta(&mut self, result: &mut SimResult) {
        let l2 = self.mem.l2.stats();
        let (base_acc, base_hit, base_mem) = self.mem_baseline;
        result.mem.l2.accesses = l2.accesses - base_acc;
        result.mem.l2.hits = l2.hits - base_hit;
        result.mem.memory_accesses = self.mem.memory_accesses - base_mem;
        self.mem_baseline = (l2.accesses, l2.hits, self.mem.memory_accesses);
    }

    /// Finalizes the run: aggregate result across every shape worn, on the
    /// continuous clock.
    #[must_use]
    pub fn finish(mut self) -> SimResult {
        let engine = std::mem::replace(
            &mut self.engine,
            VCoreEngine::new_with_kind(self.cfg, 0, self.kind),
        );
        let mut last = engine.finish("reconfigurable-vcore");
        self.absorb_mem_delta(&mut last);
        let mut completed = std::mem::take(&mut self.completed);
        let mut total = SimResult {
            workload: "reconfigurable-vcore".to_string(),
            shape: last.shape,
            cycles: last.cycles, // continuous clock: the final commit time
            ..SimResult::default()
        };
        completed.push(last);
        for r in completed {
            total.instructions += r.instructions;
            total.predictor.predictions += r.predictor.predictions;
            total.predictor.mispredictions += r.predictor.mispredictions;
            total.predictor.btb_misses += r.predictor.btb_misses;
            total.mem.l1d.accesses += r.mem.l1d.accesses;
            total.mem.l1d.hits += r.mem.l1d.hits;
            total.mem.l1i.accesses += r.mem.l1i.accesses;
            total.mem.l1i.hits += r.mem.l1i.hits;
            total.mem.l2.accesses += r.mem.l2.accesses;
            total.mem.l2.hits += r.mem.l2.hits;
            total.mem.memory_accesses += r.mem.memory_accesses;
            total.mem.store_forwards += r.mem.store_forwards;
            total.mem.lsq_violations += r.mem.lsq_violations;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharing_trace::{Benchmark, TraceSpec};

    fn shape(s: usize, b: usize) -> VCoreShape {
        VCoreShape::new(s, b).unwrap()
    }

    #[test]
    fn clock_is_continuous_across_reconfigurations() {
        let trace = Benchmark::Gcc.generate(&TraceSpec::new(4_000, 9));
        let phases = trace.split_phases(2);
        let mut v = ReconfigurableVCore::new(SimConfig::with_shape(2, 2).unwrap()).unwrap();
        v.run(&phases[0]);
        let t0 = v.cycles();
        let cost = v.reconfigure(shape(4, 2)).unwrap();
        assert_eq!(cost, 500, "slice-only change");
        v.run(&phases[1]);
        let result = v.finish();
        assert!(result.cycles > t0 + 500, "clock carried forward");
        assert_eq!(result.instructions, 4_000);
    }

    #[test]
    fn slice_only_change_keeps_the_l2_warm() {
        // Warm the L2 with a cache-friendly phase, then change only the
        // Slice count and replay the same trace: the second pass should
        // see far fewer memory accesses than a cold (bank-changed) pass.
        let trace = Benchmark::Bzip.generate(&TraceSpec::new(8_000, 5));

        let mut warm = ReconfigurableVCore::new(SimConfig::with_shape(1, 8).unwrap()).unwrap();
        warm.run(&trace);
        warm.reconfigure(shape(2, 8)).unwrap(); // slice-only
        warm.run(&trace);
        let warm_result = warm.finish();

        let mut cold = ReconfigurableVCore::new(SimConfig::with_shape(1, 8).unwrap()).unwrap();
        cold.run(&trace);
        cold.reconfigure(shape(2, 4)).unwrap(); // bank change: flush
        cold.reconfigure(shape(2, 8)).unwrap(); // back to 512KB, but cold
        cold.run(&trace);
        let cold_result = cold.finish();

        assert!(
            warm_result.mem.memory_accesses < cold_result.mem.memory_accesses,
            "warm {} vs cold {} memory accesses",
            warm_result.mem.memory_accesses,
            cold_result.mem.memory_accesses
        );
    }

    #[test]
    fn bank_change_charges_the_flush_cost() {
        let mut v = ReconfigurableVCore::new(SimConfig::with_shape(2, 2).unwrap()).unwrap();
        assert_eq!(v.reconfigure(shape(2, 4)).unwrap(), 10_000);
        assert_eq!(v.reconfigurations(), 1);
        assert_eq!(v.reconfigure(shape(2, 4)).unwrap(), 0, "no-op resize");
        assert_eq!(v.reconfigurations(), 1);
    }

    #[test]
    fn shape_tracks_reconfigurations() {
        let mut v = ReconfigurableVCore::new(SimConfig::with_shape(1, 0).unwrap()).unwrap();
        assert_eq!(v.shape(), shape(1, 0));
        v.reconfigure(shape(8, 128)).unwrap();
        assert_eq!(v.shape(), shape(8, 128));
    }

    #[test]
    fn matches_run_phased_instruction_accounting() {
        let trace = Benchmark::Perlbench.generate(&TraceSpec::new(6_000, 2));
        let phases = trace.split_phases(3);
        let mut v = ReconfigurableVCore::new(SimConfig::with_shape(1, 2).unwrap()).unwrap();
        for (i, p) in phases.iter().enumerate() {
            if i == 1 {
                v.reconfigure(shape(2, 2)).unwrap();
            }
            v.run(p);
        }
        let r = v.finish();
        assert_eq!(r.instructions, 6_000);
        assert!(r.predictor.predictions > 0);
    }
}
