//! Table 1 of the paper: which structures are replicated vs partitioned.
//!
//! When multiple Slices execute one sequential program, each intra-core
//! component is either **replicated** (each Slice has a full private copy,
//! sized for the largest configuration) or **partitioned** (the logical
//! capacity scales with Slice count). This module encodes the paper's
//! decisions so the rest of the code (and its tests) can assert capacity
//! scaling against them.

use std::fmt;

/// An intra-core structure from Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Structure {
    BranchPredictor,
    Btb,
    Scoreboard,
    IssueWindow,
    LoadQueue,
    StoreQueue,
    Rob,
    LocalRat,
    GlobalRat,
    PhysicalRegisterFile,
}

/// Replication vs partitioning (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Distribution {
    /// Every Slice keeps a full copy; logical capacity does not grow with
    /// Slice count.
    Replicated,
    /// Entries are spread across Slices; logical capacity grows linearly
    /// with Slice count.
    Partitioned,
}

impl Structure {
    /// All structures, in Table 1's column order.
    pub const ALL: [Structure; 10] = [
        Structure::BranchPredictor,
        Structure::Btb,
        Structure::Scoreboard,
        Structure::IssueWindow,
        Structure::LoadQueue,
        Structure::StoreQueue,
        Structure::Rob,
        Structure::LocalRat,
        Structure::GlobalRat,
        Structure::PhysicalRegisterFile,
    ];

    /// The paper's Table 1 assignment.
    ///
    /// The predictor tables are partitioned by PC interleaving (capacity
    /// grows with Slices), the BTB is replicated (fake entries let every
    /// Slice redirect), the scoreboard and RATs are replicated copies kept
    /// coherent by the rename broadcast, and the windows/queues/ROB/LRF
    /// partition so capacity scales.
    #[must_use]
    pub fn distribution(self) -> Distribution {
        match self {
            Structure::BranchPredictor
            | Structure::IssueWindow
            | Structure::LoadQueue
            | Structure::StoreQueue
            | Structure::Rob
            | Structure::LocalRat
            | Structure::PhysicalRegisterFile => Distribution::Partitioned,
            Structure::Btb | Structure::Scoreboard | Structure::GlobalRat => {
                Distribution::Replicated
            }
        }
    }

    /// Logical capacity visible to a program on an `n`-Slice VCore, given
    /// the per-Slice capacity.
    #[must_use]
    pub fn logical_capacity(self, per_slice: usize, slices: usize) -> usize {
        match self.distribution() {
            Distribution::Partitioned => per_slice * slices,
            Distribution::Replicated => per_slice,
        }
    }

    /// Printable name matching the paper's Table 1 header.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Structure::BranchPredictor => "Branch Predictor",
            Structure::Btb => "BTB",
            Structure::Scoreboard => "Scoreboard",
            Structure::IssueWindow => "Issue Window",
            Structure::LoadQueue => "Load Queue",
            Structure::StoreQueue => "Store Queue",
            Structure::Rob => "ROB",
            Structure::LocalRat => "Local RAT",
            Structure::GlobalRat => "Global RAT",
            Structure::PhysicalRegisterFile => "Physical RF",
        }
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_assignment() {
        use Distribution::*;
        assert_eq!(Structure::BranchPredictor.distribution(), Partitioned);
        assert_eq!(Structure::Btb.distribution(), Replicated);
        assert_eq!(Structure::Scoreboard.distribution(), Replicated);
        assert_eq!(Structure::IssueWindow.distribution(), Partitioned);
        assert_eq!(Structure::LoadQueue.distribution(), Partitioned);
        assert_eq!(Structure::StoreQueue.distribution(), Partitioned);
        assert_eq!(Structure::Rob.distribution(), Partitioned);
        assert_eq!(Structure::LocalRat.distribution(), Partitioned);
        assert_eq!(Structure::GlobalRat.distribution(), Replicated);
        assert_eq!(Structure::PhysicalRegisterFile.distribution(), Partitioned);
    }

    #[test]
    fn partitioned_capacity_scales_replicated_does_not() {
        assert_eq!(Structure::Rob.logical_capacity(64, 4), 256);
        assert_eq!(Structure::GlobalRat.logical_capacity(128, 4), 128);
    }

    #[test]
    fn all_lists_each_once() {
        let mut names: Vec<_> = Structure::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Structure::ALL.len());
    }
}
