//! Cycle-attribution profiler: where did every simulated cycle go?
//!
//! The engine's [`StallBreakdown`](crate::stats::StallBreakdown) counts
//! *events* (cycles a resource was asked for and unavailable), which can
//! overlap and double-count; it answers "what was contended" but not
//! "what paid for the runtime". The profiler answers the second question
//! with a CPI-stack-style accounting that is **conservation-exact**: for
//! every Slice, the six buckets sum to precisely the total cycle count
//! of the run, so a flamegraph over them has no missing or invented
//! time.
//!
//! The attribution works on the committed-path interval between
//! consecutive commits on the same Slice. Commit times are globally
//! monotone, so each instruction owns the gap
//! `commit − previous_commit_on_slice`, and that gap is charged backward
//! through the instruction's own pipeline intervals in priority order —
//! DRAM/L2 time first, then functional-unit occupancy, issue-queue
//! wait, dispatch backpressure, front end — with whatever remains
//! labelled idle. After the last instruction, each Slice's tail up to
//! the run's final cycle is idle too. Every charge is `min`-capped by
//! the remaining gap, which is what makes the buckets partition the
//! timeline instead of over-counting overlapped latencies.
//!
//! The accounting is pure observation: it reads timestamps the engine
//! already computed and never feeds anything back, so an armed profiler
//! cannot perturb bit-for-bit replay — and the whole layer compiles out
//! when `sharing-core` is built without its `profile` feature.

use sharing_json::json_struct;

/// Human-readable bucket names, in the order [`SliceCycles::as_pairs`]
/// reports them.
pub const BUCKET_NAMES: [&str; 6] = [
    "fetch",
    "issue",
    "fu_busy",
    "dram_stall",
    "rob_full",
    "idle",
];

/// Cycle attribution for one Slice. The six buckets partition the
/// Slice's timeline: they sum exactly to the run's total cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SliceCycles {
    /// Front end: fetch-to-dispatch, including I-cache bubbles, the
    /// frontend depth and the cross-Slice rename round trip.
    pub fetch: u64,
    /// Issue-queue wait: dispatched, waiting for operands or an FU.
    pub issue: u64,
    /// Functional-unit occupancy: issue-to-execute-done, minus the
    /// portion attributed to DRAM below (for loads this includes the
    /// LS-sort trips, LSQ time and L1/L2 hit latency).
    pub fu_busy: u64,
    /// Beyond-L2 memory time: DRAM channel queueing plus main-memory
    /// latency on the instruction's own miss path.
    pub dram_stall: u64,
    /// Dispatch-side structural backpressure: ROB, LRF, global register
    /// free list, or issue window full.
    pub rob_full: u64,
    /// Nothing committed on this Slice: covered by another Slice's
    /// work, squash shadows, or the tail after its last commit.
    pub idle: u64,
}

json_struct!(SliceCycles {
    fetch,
    issue,
    fu_busy,
    dram_stall,
    rob_full,
    idle,
});

impl SliceCycles {
    /// Sum of all six buckets (equals the run's cycles when conserved).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.fetch + self.issue + self.fu_busy + self.dram_stall + self.rob_full + self.idle
    }

    /// The buckets as `(name, cycles)` pairs, in [`BUCKET_NAMES`] order.
    #[must_use]
    pub fn as_pairs(&self) -> [(&'static str, u64); 6] {
        [
            ("fetch", self.fetch),
            ("issue", self.issue),
            ("fu_busy", self.fu_busy),
            ("dram_stall", self.dram_stall),
            ("rob_full", self.rob_full),
            ("idle", self.idle),
        ]
    }

    /// Element-wise accumulation.
    pub fn accumulate(&mut self, other: &SliceCycles) {
        self.fetch += other.fetch;
        self.issue += other.issue;
        self.fu_busy += other.fu_busy;
        self.dram_stall += other.dram_stall;
        self.rob_full += other.rob_full;
        self.idle += other.idle;
    }
}

/// The profile of one run: per-Slice cycle attribution plus the total
/// it must conserve.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CycleProfile {
    /// Total cycles of the run (every Slice's buckets sum to this).
    pub cycles: u64,
    /// One attribution per Slice, index = Slice id.
    pub per_slice: Vec<SliceCycles>,
}

json_struct!(CycleProfile { cycles } defaults { per_slice });

impl CycleProfile {
    /// Bucket totals summed across Slices (sums to
    /// `cycles × per_slice.len()` when conserved).
    #[must_use]
    pub fn totals(&self) -> SliceCycles {
        let mut t = SliceCycles::default();
        for s in &self.per_slice {
            t.accumulate(s);
        }
        t
    }

    /// The conservation law: every Slice's buckets sum exactly to the
    /// run's total cycles.
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.per_slice.iter().all(|s| s.total() == self.cycles)
    }

    /// Renders the profile as a fixed-width table, one row per Slice
    /// plus an `all` row, with per-bucket percentages of total
    /// Slice-cycles underneath.
    #[must_use]
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "slice", "fetch", "issue", "fu_busy", "dram_stall", "rob_full", "idle", "total"
        );
        let row = |out: &mut String, label: &str, s: &SliceCycles| {
            let _ = writeln!(
                out,
                "{:>5} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
                label,
                s.fetch,
                s.issue,
                s.fu_busy,
                s.dram_stall,
                s.rob_full,
                s.idle,
                s.total()
            );
        };
        for (i, s) in self.per_slice.iter().enumerate() {
            row(&mut out, &i.to_string(), s);
        }
        let all = self.totals();
        row(&mut out, "all", &all);
        let denom = all.total().max(1);
        let mut pct = String::new();
        for (name, v) in all.as_pairs() {
            let _ = write!(pct, "{name} {:.1}%  ", 100.0 * v as f64 / denom as f64);
        }
        let _ = writeln!(
            out,
            "cycles {}  conserved {}  [{}]",
            self.cycles,
            self.conserved(),
            pct.trim_end()
        );
        out
    }
}

/// The cargo feature set `sharing-core` was compiled with, as a
/// comma-separated string. Feeds the `ssimd_build_info{features=...}`
/// info gauge so a scrape can tell whether the profiler is compiled in.
#[must_use]
pub fn compiled_features() -> &'static str {
    if cfg!(feature = "profile") {
        "profile"
    } else {
        ""
    }
}

/// Feeds a finished profile's bucket totals into the process-global obs
/// registry as monotonic counters (`ssim_profile_<bucket>_cycles_total`),
/// so long-running daemons expose cumulative cycle attribution over
/// every profiled run.
pub fn observe_profile(p: &CycleProfile) {
    let t = p.totals();
    sharing_obs::counter("ssim_profile_fetch_cycles_total").add(t.fetch);
    sharing_obs::counter("ssim_profile_issue_cycles_total").add(t.issue);
    sharing_obs::counter("ssim_profile_fu_busy_cycles_total").add(t.fu_busy);
    sharing_obs::counter("ssim_profile_dram_stall_cycles_total").add(t.dram_stall);
    sharing_obs::counter("ssim_profile_rob_full_cycles_total").add(t.rob_full);
    sharing_obs::counter("ssim_profile_idle_cycles_total").add(t.idle);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc(fetch: u64, issue: u64, fu: u64, dram: u64, rob: u64, idle: u64) -> SliceCycles {
        SliceCycles {
            fetch,
            issue,
            fu_busy: fu,
            dram_stall: dram,
            rob_full: rob,
            idle,
        }
    }

    #[test]
    fn totals_and_conservation() {
        let p = CycleProfile {
            cycles: 60,
            per_slice: vec![sc(10, 10, 10, 10, 10, 10), sc(0, 0, 0, 0, 0, 60)],
        };
        assert!(p.conserved());
        assert_eq!(p.totals().total(), 120);
        let broken = CycleProfile {
            cycles: 61,
            ..p.clone()
        };
        assert!(!broken.conserved());
    }

    #[test]
    fn json_round_trip_preserves_buckets() {
        let p = CycleProfile {
            cycles: 42,
            per_slice: vec![sc(1, 2, 3, 4, 5, 27)],
        };
        let text = sharing_json::to_string(&p);
        let back: CycleProfile = sharing_json::from_str(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn table_reports_every_bucket_and_the_law() {
        let p = CycleProfile {
            cycles: 10,
            per_slice: vec![sc(1, 2, 3, 0, 0, 4)],
        };
        let t = p.table();
        for name in BUCKET_NAMES {
            assert!(t.contains(name), "table missing {name}:\n{t}");
        }
        assert!(t.contains("conserved true"));
    }
}
