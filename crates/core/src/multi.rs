//! Multi-VCore Virtual Machines: several VCores sharing an L2 and kept
//! coherent by the L2 directory (paper §3.5, §5.3).
//!
//! The paper runs PARSEC with "four threads on four equally configured
//! VCores which share an L2 Cache". This module composes one
//! [`VCoreEngine`] per thread over a shared [`MemorySystem`], advancing
//! the threads in fixed instruction chunks between deterministic
//! barriers (DESIGN.md §14):
//!
//! 1. **compute** — every engine runs its next chunk against a *fork*
//!    of the shared memory system ([`MemorySystem::fork`]), recording
//!    the beyond-L1 accesses it makes;
//! 2. **merge** — at the barrier, the recorded access streams are
//!    replayed into the authoritative memory system in VCore-index
//!    order, and the inter-VCore L1 invalidations that replay produces
//!    are applied in queue order.
//!
//! Because a fork only ever sees "state at the last barrier plus this
//! engine's own accesses", and the merge order is fixed, the result is
//! byte-identical no matter how many worker threads ran the compute
//! phase — which is what lets [`VmSimulator::with_threads`] parallelize
//! a single run across cores ([`EngineKind::Sharded`]) without giving
//! up determinism.

use crate::config::{ConfigError, SimConfig};
use crate::engine::{MemAccess, MemorySystem, VCoreEngine};
use crate::event::EngineKind;
use crate::par;
use crate::stats::SimResult;
use sharing_isa::DynInst;
use sharing_trace::ThreadedTrace;
use std::sync::{Mutex, RwLock};

/// Default interleaving granularity, in instructions per thread per turn.
pub const DEFAULT_CHUNK: usize = 1_000;

/// A VM of `t` single-thread VCores sharing one L2.
///
/// # Example
///
/// ```
/// use sharing_core::{SimConfig, VmSimulator};
/// use sharing_trace::{Benchmark, TraceSpec};
///
/// let cfg = SimConfig::with_shape(2, 4)?; // per VCore: 2 Slices; VM L2: 256 KB
/// let workload = Benchmark::Dedup.generate_threaded(&TraceSpec::new(2_000, 5));
/// let result = VmSimulator::new(cfg)?.run(&workload);
/// assert!(result.ipc() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct VmSimulator {
    cfg: SimConfig,
    chunk: usize,
    kind: EngineKind,
    threads: Option<usize>,
}

/// One VCore's barrier-to-barrier state: its engine, its instruction
/// stream and cursor, and the memory accesses its last compute phase
/// recorded (replayed by the merge step, then cleared).
struct Lane<'a> {
    engine: VCoreEngine,
    insts: &'a [DynInst],
    cursor: usize,
    log: Vec<MemAccess>,
}

impl VmSimulator {
    /// Creates a VM simulator. Every VCore gets the `cfg` Slice count; the
    /// configured L2 banks form the *shared* VM-level L2.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid.
    pub fn new(cfg: SimConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(VmSimulator {
            cfg,
            chunk: DEFAULT_CHUNK,
            kind: EngineKind::default(),
            threads: None,
        })
    }

    /// Selects the engine implementation (byte-identical results either
    /// way; see [`EngineKind`]). [`EngineKind::Sharded`] additionally
    /// defaults the worker count to the machine instead of 1.
    #[must_use]
    pub fn with_engine(mut self, kind: EngineKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets how many worker threads advance the VM's VCores between
    /// barriers (minimum 1; capped at the VCore count). A pure
    /// throughput knob: the barrier protocol makes the result
    /// byte-identical for every worker count, which
    /// `tests/sharded_equiv.rs` pins across the whole suite.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Overrides the interleaving chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk must be positive");
        self.chunk = chunk;
        self
    }

    /// Worker threads for a run over `lanes` VCores: the explicit
    /// [`VmSimulator::with_threads`] choice, else the machine size for
    /// [`EngineKind::Sharded`], else 1.
    fn workers_for(&self, lanes: usize) -> usize {
        let requested = match self.threads {
            Some(n) => n,
            None => match self.kind {
                EngineKind::Sharded => par::resolve_jobs(None),
                _ => 1,
            },
        };
        requested.clamp(1, lanes.max(1))
    }

    /// The barrier loop shared by [`VmSimulator::run`] and
    /// [`VmSimulator::run_coscheduled`]: builds one engine per entry of
    /// `streams`, advances them chunkwise over forks of `mem`, and
    /// merges the access streams back in VCore order at every barrier.
    fn drive(&self, mem: MemorySystem, streams: &[&[DynInst]]) -> (Vec<VCoreEngine>, MemorySystem) {
        let lanes: Vec<Mutex<Lane>> = streams
            .iter()
            .enumerate()
            .map(|(v, insts)| {
                Mutex::new(Lane {
                    engine: VCoreEngine::new_with_kind(self.cfg, v, self.kind),
                    insts,
                    cursor: 0,
                    log: Vec::new(),
                })
            })
            .collect();
        let workers = self.workers_for(lanes.len());
        let mem = RwLock::new(mem);
        let mut inval_scratch: Vec<(usize, u64)> = Vec::new();
        par::bsp_loop(
            workers,
            // Merge (caller thread, exclusive): replay every lane's
            // recorded accesses in VCore order, then hand the coherence
            // invalidations that replay produced to their target L1s.
            || {
                let mut m = mem.write().expect("vm mem lock");
                for lane in &lanes {
                    let mut lane = lane.lock().expect("vm lane lock");
                    m.replay(&lane.log);
                    lane.log.clear();
                }
                std::mem::swap(&mut inval_scratch, &mut m.pending_invals);
                drop(m);
                for (v, line) in inval_scratch.drain(..) {
                    if v < lanes.len() {
                        let mut lane = lanes[v].lock().expect("vm lane lock");
                        lane.engine.invalidate_line(line);
                    }
                }
                lanes.iter().any(|lane| {
                    let lane = lane.lock().expect("vm lane lock");
                    lane.cursor < lane.insts.len()
                })
            },
            // Compute: each worker owns the lanes with `tid % workers ==
            // w`, so lane locks never contend; the shared memory system
            // is only read (forked).
            |w| {
                for (tid, lane) in lanes.iter().enumerate() {
                    if tid % workers != w {
                        continue;
                    }
                    let mut lane = lane.lock().expect("vm lane lock");
                    let start = lane.cursor;
                    if start >= lane.insts.len() {
                        continue;
                    }
                    let end = (start + self.chunk).min(lane.insts.len());
                    let mut fork = mem.read().expect("vm mem lock").fork();
                    let insts = lane.insts;
                    lane.engine.run_chunk(&mut fork, &insts[start..end]);
                    lane.cursor = end;
                    lane.log = fork.take_log();
                }
            },
        );
        let engines = lanes
            .into_iter()
            .map(|lane| lane.into_inner().expect("vm lane lock").engine)
            .collect();
        (engines, mem.into_inner().expect("vm mem lock"))
    }

    /// Co-schedules *different* workloads, one per VCore, over the shared
    /// L2 and directory — the datacenter-interference setting the paper's
    /// §6 cites ("sharing last-level cache and DRAM bandwidth degrades
    /// responsiveness of workloads"). Returns one result per workload, so
    /// each tenant's slowdown under contention is visible individually.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` is empty.
    #[must_use]
    pub fn run_coscheduled(&self, workloads: &[sharing_trace::Trace]) -> Vec<SimResult> {
        assert!(!workloads.is_empty(), "at least one workload required");
        let mut mem = MemorySystem::shared(self.cfg.l2_banks(), self.cfg.mem.memory_delay);
        if workloads.len() == 1 {
            mem.coherent = false;
        }
        let streams: Vec<&[DynInst]> = workloads.iter().map(sharing_trace::Trace::insts).collect();
        let (engines, mem) = self.drive(mem, &streams);
        let mut results: Vec<SimResult> = engines
            .into_iter()
            .zip(workloads)
            .map(|(e, w)| e.finish(w.name()))
            .collect();
        for r in &mut results {
            VCoreEngine::absorb_mem_stats(r, &mem);
        }
        results
    }

    /// Runs all threads to completion; the VM finishes when its slowest
    /// thread does (barrier semantics, matching the paper's use of total
    /// benchmark runtime).
    #[must_use]
    pub fn run(&self, workload: &ThreadedTrace) -> SimResult {
        let threads = workload.thread_count();
        let mut mem = MemorySystem::shared(self.cfg.l2_banks(), self.cfg.mem.memory_delay);
        if threads == 1 {
            mem.coherent = false;
        }
        let streams: Vec<&[DynInst]> = workload
            .threads()
            .iter()
            .map(sharing_trace::Trace::insts)
            .collect();
        let (engines, mem) = self.drive(mem, &streams);
        // Aggregate: VM time = slowest thread; instruction counts sum.
        let mut cycles = 0u64;
        let mut total = SimResult {
            workload: workload.name().to_string(),
            shape: Some(self.cfg.shape()),
            ..SimResult::default()
        };
        for engine in engines {
            cycles = cycles.max(engine.cycles());
            let r = engine.finish(workload.name());
            total.instructions += r.instructions;
            total.predictor.predictions += r.predictor.predictions;
            total.predictor.mispredictions += r.predictor.mispredictions;
            total.predictor.btb_misses += r.predictor.btb_misses;
            total.mem.l1d.accesses += r.mem.l1d.accesses;
            total.mem.l1d.hits += r.mem.l1d.hits;
            total.mem.l1i.accesses += r.mem.l1i.accesses;
            total.mem.l1i.hits += r.mem.l1i.hits;
            total.mem.store_forwards += r.mem.store_forwards;
            total.mem.lsq_violations += r.mem.lsq_violations;
            total.mem.coherence_invalidations += r.mem.coherence_invalidations;
            total.mem.coherence_forwards += r.mem.coherence_forwards;
            total.remote_operand_requests += r.remote_operand_requests;
            total.lrf_copy_hits += r.lrf_copy_hits;
            total.ls_sort_messages += r.ls_sort_messages;
            total.rename_broadcasts += r.rename_broadcasts;
            total.operand_net += r.operand_net;
            total.stalls.rob_full += r.stalls.rob_full;
            total.stalls.window_full += r.stalls.window_full;
            total.stalls.lsq_full += r.stalls.lsq_full;
            total.stalls.mshr_full += r.stalls.mshr_full;
            total.stalls.store_buffer_full += r.stalls.store_buffer_full;
            total.stalls.freelist_empty += r.stalls.freelist_empty;
            total.stalls.mispredict += r.stalls.mispredict;
            total.stalls.icache += r.stalls.icache;
        }
        total.cycles = cycles;
        VCoreEngine::absorb_mem_stats(&mut total, &mem);
        crate::sim::observe_run(&total);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharing_trace::{Benchmark, TraceSpec};

    #[test]
    fn four_threads_finish_and_cohere() {
        let cfg = SimConfig::with_shape(2, 4).unwrap();
        let w = Benchmark::Dedup.generate_threaded(&TraceSpec::new(3_000, 11));
        let r = VmSimulator::new(cfg).unwrap().run(&w);
        assert_eq!(r.instructions, 4 * 3_000);
        assert!(r.cycles > 0);
        // dedup has a 20% shared-access fraction: coherence must fire.
        assert!(
            r.mem.coherence_invalidations + r.mem.coherence_forwards > 0,
            "expected coherence traffic"
        );
    }

    #[test]
    fn single_thread_vm_matches_plain_simulator_closely() {
        let cfg = SimConfig::with_shape(2, 2).unwrap();
        let t = Benchmark::Gcc.generate(&TraceSpec::new(3_000, 2));
        let tt = sharing_trace::ThreadedTrace::single(t.clone());
        let vm = VmSimulator::new(cfg).unwrap().run(&tt);
        let single = crate::Simulator::new(cfg)
            .unwrap()
            .run_with(&t, crate::RunOptions::new())
            .result;
        assert_eq!(vm.instructions, single.instructions);
        // Chunked execution may split a fetch group at a chunk boundary,
        // shifting timing by a cycle or two.
        let diff = vm.cycles.abs_diff(single.cycles);
        assert!(
            diff * 100 <= single.cycles,
            "no coherence → near-identical timing (vm {} vs {})",
            vm.cycles,
            single.cycles
        );
    }

    #[test]
    fn vm_is_deterministic() {
        let cfg = SimConfig::with_shape(2, 4).unwrap();
        let w = Benchmark::Ferret.generate_threaded(&TraceSpec::new(2_000, 4));
        let a = VmSimulator::new(cfg).unwrap().run(&w);
        let b = VmSimulator::new(cfg).unwrap().run(&w);
        assert_eq!(a, b);
    }

    #[test]
    fn worker_count_cannot_change_the_result() {
        // The tentpole invariant in miniature (the full 15-benchmark ×
        // {kind} × {workers} sweep lives in tests/sharded_equiv.rs).
        let cfg = SimConfig::with_shape(2, 4).unwrap();
        let w = Benchmark::Dedup.generate_threaded(&TraceSpec::new(2_000, 8));
        let base = VmSimulator::new(cfg).unwrap().with_threads(1).run(&w);
        for threads in [2usize, 4, 7] {
            let r = VmSimulator::new(cfg).unwrap().with_threads(threads).run(&w);
            assert_eq!(base, r, "{threads} workers diverged from 1 worker");
        }
        let sharded = VmSimulator::new(cfg)
            .unwrap()
            .with_engine(EngineKind::Sharded)
            .run(&w);
        assert_eq!(base, sharded, "sharded kind diverged");
    }

    #[test]
    fn coscheduled_worker_count_cannot_change_the_result() {
        let spec = TraceSpec::new(2_000, 6);
        let a = Benchmark::Gcc.generate(&spec);
        let b = Benchmark::Mcf.generate(&spec);
        let c = Benchmark::Libquantum.generate(&spec);
        let cfg = SimConfig::with_shape(1, 4).unwrap();
        let tenants = [a, b, c];
        let base = VmSimulator::new(cfg)
            .unwrap()
            .with_threads(1)
            .run_coscheduled(&tenants);
        for threads in [2usize, 3, 8] {
            let r = VmSimulator::new(cfg)
                .unwrap()
                .with_threads(threads)
                .run_coscheduled(&tenants);
            assert_eq!(base, r, "{threads} workers diverged");
        }
    }

    #[test]
    fn parsec_scaling_is_bounded() {
        // Per-thread ILP of ~2 chains should bound slice scaling near 2x
        // (paper §5.3: "the speedup is bounded by 2").
        let w = Benchmark::Swaptions.generate_threaded(&TraceSpec::new(4_000, 9));
        let one = VmSimulator::new(SimConfig::with_shape(1, 4).unwrap())
            .unwrap()
            .run(&w);
        let eight = VmSimulator::new(SimConfig::with_shape(8, 4).unwrap())
            .unwrap()
            .run(&w);
        let speedup = eight.ipc() / one.ipc();
        assert!(
            speedup < 3.0,
            "PARSEC speedup should be bounded, got {speedup:.2}"
        );
    }

    #[test]
    fn coscheduling_inflicts_measurable_interference() {
        // A cache-sensitive tenant co-runs with a streaming bully on one
        // shared 256KB L2 vs running alone on the same system.
        let spec = TraceSpec::new(6_000, 21);
        let victim = Benchmark::Omnetpp.generate(&spec);
        let bully = Benchmark::Libquantum.generate(&spec);
        let cfg = SimConfig::with_shape(2, 4).unwrap();
        let vm = VmSimulator::new(cfg).unwrap();
        let alone = vm.run_coscheduled(std::slice::from_ref(&victim));
        let together = vm.run_coscheduled(&[victim.clone(), bully]);
        assert_eq!(alone[0].instructions, together[0].instructions);
        assert!(
            together[0].cycles > alone[0].cycles,
            "contention must cost the victim cycles: {} vs {}",
            together[0].cycles,
            alone[0].cycles
        );
    }

    #[test]
    fn coscheduled_results_are_per_tenant() {
        let spec = TraceSpec::new(3_000, 4);
        let a = Benchmark::Gcc.generate(&spec);
        let b = Benchmark::Hmmer.generate(&spec);
        let cfg = SimConfig::with_shape(1, 2).unwrap();
        let results = VmSimulator::new(cfg).unwrap().run_coscheduled(&[a, b]);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].workload, "gcc");
        assert_eq!(results[1].workload, "hmmer");
        assert!(results.iter().all(|r| r.instructions == 3_000));
    }

    #[test]
    fn vm_aggregates_operand_network_traffic() {
        // Multi-Slice VCores exchange operands over the SON; the VM
        // total must carry the summed per-engine network counters
        // instead of dropping them.
        let cfg = SimConfig::with_shape(4, 4).unwrap();
        let w = Benchmark::Ferret.generate_threaded(&TraceSpec::new(2_000, 3));
        let r = VmSimulator::new(cfg).unwrap().run(&w);
        assert!(
            r.operand_net.messages > 0,
            "expected operand-network messages in the VM total"
        );
    }

    #[test]
    #[should_panic(expected = "chunk must be positive")]
    fn zero_chunk_rejected() {
        let _ = VmSimulator::new(SimConfig::with_shape(1, 1).unwrap())
            .unwrap()
            .with_chunk(0);
    }
}
