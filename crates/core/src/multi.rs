//! Multi-VCore Virtual Machines: several VCores sharing an L2 and kept
//! coherent by the L2 directory (paper §3.5, §5.3).
//!
//! The paper runs PARSEC with "four threads on four equally configured
//! VCores which share an L2 Cache". This module composes one
//! [`VCoreEngine`] per thread over a shared
//! [`MemorySystem`], interleaving execution in fixed instruction chunks so
//! the threads contend for (and cohere over) the same banks. Inter-VCore
//! L1 invalidations produced by the directory are applied between chunks.

use crate::config::{ConfigError, SimConfig};
use crate::engine::{MemorySystem, VCoreEngine};
use crate::event::EngineKind;
use crate::stats::SimResult;
use sharing_trace::ThreadedTrace;

/// Default interleaving granularity, in instructions per thread per turn.
pub const DEFAULT_CHUNK: usize = 1_000;

/// A VM of `t` single-thread VCores sharing one L2.
///
/// # Example
///
/// ```
/// use sharing_core::{SimConfig, VmSimulator};
/// use sharing_trace::{Benchmark, TraceSpec};
///
/// let cfg = SimConfig::with_shape(2, 4)?; // per VCore: 2 Slices; VM L2: 256 KB
/// let workload = Benchmark::Dedup.generate_threaded(&TraceSpec::new(2_000, 5));
/// let result = VmSimulator::new(cfg)?.run(&workload);
/// assert!(result.ipc() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct VmSimulator {
    cfg: SimConfig,
    chunk: usize,
    kind: EngineKind,
}

impl VmSimulator {
    /// Creates a VM simulator. Every VCore gets the `cfg` Slice count; the
    /// configured L2 banks form the *shared* VM-level L2.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid.
    pub fn new(cfg: SimConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(VmSimulator {
            cfg,
            chunk: DEFAULT_CHUNK,
            kind: EngineKind::default(),
        })
    }

    /// Selects the engine implementation (byte-identical results either
    /// way; see [`EngineKind`]).
    #[must_use]
    pub fn with_engine(mut self, kind: EngineKind) -> Self {
        self.kind = kind;
        self
    }

    /// Overrides the interleaving chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk must be positive");
        self.chunk = chunk;
        self
    }

    /// Co-schedules *different* workloads, one per VCore, over the shared
    /// L2 and directory — the datacenter-interference setting the paper's
    /// §6 cites ("sharing last-level cache and DRAM bandwidth degrades
    /// responsiveness of workloads"). Returns one result per workload, so
    /// each tenant's slowdown under contention is visible individually.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` is empty.
    #[must_use]
    pub fn run_coscheduled(&self, workloads: &[sharing_trace::Trace]) -> Vec<SimResult> {
        assert!(!workloads.is_empty(), "at least one workload required");
        let mut mem = MemorySystem::shared(self.cfg.l2_banks(), self.cfg.mem.memory_delay);
        if workloads.len() == 1 {
            mem.coherent = false;
        }
        let mut engines: Vec<VCoreEngine> = (0..workloads.len())
            .map(|v| VCoreEngine::new_with_kind(self.cfg, v, self.kind))
            .collect();
        let mut cursors = vec![0usize; workloads.len()];
        let mut live = workloads.len();
        // Reused across rounds so the inval hand-off never reallocates.
        let mut inval_scratch: Vec<(usize, u64)> = Vec::new();
        while live > 0 {
            live = 0;
            for (tid, engine) in engines.iter_mut().enumerate() {
                let insts = workloads[tid].insts();
                let start = cursors[tid];
                if start >= insts.len() {
                    continue;
                }
                live += 1;
                let end = (start + self.chunk).min(insts.len());
                engine.run_chunk(&mut mem, &insts[start..end]);
                cursors[tid] = end;
            }
            std::mem::swap(&mut inval_scratch, &mut mem.pending_invals);
            for (v, line) in inval_scratch.drain(..) {
                if v < engines.len() {
                    engines[v].invalidate_line(line);
                }
            }
        }
        let mut results: Vec<SimResult> = engines
            .into_iter()
            .zip(workloads)
            .map(|(e, w)| e.finish(w.name()))
            .collect();
        for r in &mut results {
            VCoreEngine::absorb_mem_stats(r, &mem);
        }
        results
    }

    /// Runs all threads to completion; the VM finishes when its slowest
    /// thread does (barrier semantics, matching the paper's use of total
    /// benchmark runtime).
    #[must_use]
    pub fn run(&self, workload: &ThreadedTrace) -> SimResult {
        let threads = workload.thread_count();
        let mut mem = MemorySystem::shared(self.cfg.l2_banks(), self.cfg.mem.memory_delay);
        if threads == 1 {
            mem.coherent = false;
        }
        let mut engines: Vec<VCoreEngine> = (0..threads)
            .map(|v| VCoreEngine::new_with_kind(self.cfg, v, self.kind))
            .collect();
        let mut cursors = vec![0usize; threads];
        let mut live = threads;
        // Reused across rounds: the scratch and the pending queue ping-pong
        // their allocations, so chunked coherence hand-off stops churning
        // the allocator.
        let mut inval_scratch: Vec<(usize, u64)> = Vec::new();
        while live > 0 {
            live = 0;
            for (tid, engine) in engines.iter_mut().enumerate() {
                let insts = workload.threads()[tid].insts();
                let start = cursors[tid];
                if start >= insts.len() {
                    continue;
                }
                live += 1;
                let end = (start + self.chunk).min(insts.len());
                engine.run_chunk(&mut mem, &insts[start..end]);
                cursors[tid] = end;
                // Apply coherence invalidations to the other VCores.
                std::mem::swap(&mut inval_scratch, &mut mem.pending_invals);
                for (v, line) in inval_scratch.drain(..) {
                    if v != tid {
                        // Safe: `engines` indexed disjointly from `engine`
                        // would need split borrows; defer to after loop by
                        // collecting. (Handled below.)
                        mem.pending_invals.push((v, line));
                    }
                }
            }
            // Drain invalidations between rounds.
            std::mem::swap(&mut inval_scratch, &mut mem.pending_invals);
            for (v, line) in inval_scratch.drain(..) {
                if v < engines.len() {
                    engines[v].invalidate_line(line);
                }
            }
        }
        // Aggregate: VM time = slowest thread; instruction counts sum.
        let mut cycles = 0u64;
        let mut total = SimResult {
            workload: workload.name().to_string(),
            shape: Some(self.cfg.shape()),
            ..SimResult::default()
        };
        for engine in engines {
            cycles = cycles.max(engine.cycles());
            let r = engine.finish(workload.name());
            total.instructions += r.instructions;
            total.predictor.predictions += r.predictor.predictions;
            total.predictor.mispredictions += r.predictor.mispredictions;
            total.predictor.btb_misses += r.predictor.btb_misses;
            total.mem.l1d.accesses += r.mem.l1d.accesses;
            total.mem.l1d.hits += r.mem.l1d.hits;
            total.mem.l1i.accesses += r.mem.l1i.accesses;
            total.mem.l1i.hits += r.mem.l1i.hits;
            total.mem.store_forwards += r.mem.store_forwards;
            total.mem.lsq_violations += r.mem.lsq_violations;
            total.mem.coherence_invalidations += r.mem.coherence_invalidations;
            total.mem.coherence_forwards += r.mem.coherence_forwards;
            total.remote_operand_requests += r.remote_operand_requests;
            total.lrf_copy_hits += r.lrf_copy_hits;
            total.ls_sort_messages += r.ls_sort_messages;
            total.rename_broadcasts += r.rename_broadcasts;
            total.stalls.rob_full += r.stalls.rob_full;
            total.stalls.window_full += r.stalls.window_full;
            total.stalls.lsq_full += r.stalls.lsq_full;
            total.stalls.mshr_full += r.stalls.mshr_full;
            total.stalls.store_buffer_full += r.stalls.store_buffer_full;
            total.stalls.freelist_empty += r.stalls.freelist_empty;
            total.stalls.mispredict += r.stalls.mispredict;
            total.stalls.icache += r.stalls.icache;
        }
        total.cycles = cycles;
        VCoreEngine::absorb_mem_stats(&mut total, &mem);
        crate::sim::observe_run(&total);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharing_trace::{Benchmark, TraceSpec};

    #[test]
    fn four_threads_finish_and_cohere() {
        let cfg = SimConfig::with_shape(2, 4).unwrap();
        let w = Benchmark::Dedup.generate_threaded(&TraceSpec::new(3_000, 11));
        let r = VmSimulator::new(cfg).unwrap().run(&w);
        assert_eq!(r.instructions, 4 * 3_000);
        assert!(r.cycles > 0);
        // dedup has a 20% shared-access fraction: coherence must fire.
        assert!(
            r.mem.coherence_invalidations + r.mem.coherence_forwards > 0,
            "expected coherence traffic"
        );
    }

    #[test]
    fn single_thread_vm_matches_plain_simulator_closely() {
        let cfg = SimConfig::with_shape(2, 2).unwrap();
        let t = Benchmark::Gcc.generate(&TraceSpec::new(3_000, 2));
        let tt = sharing_trace::ThreadedTrace::single(t.clone());
        let vm = VmSimulator::new(cfg).unwrap().run(&tt);
        let single = crate::Simulator::new(cfg)
            .unwrap()
            .run_with(&t, crate::RunOptions::new())
            .result;
        assert_eq!(vm.instructions, single.instructions);
        // Chunked execution may split a fetch group at a chunk boundary,
        // shifting timing by a cycle or two.
        let diff = vm.cycles.abs_diff(single.cycles);
        assert!(
            diff * 100 <= single.cycles,
            "no coherence → near-identical timing (vm {} vs {})",
            vm.cycles,
            single.cycles
        );
    }

    #[test]
    fn vm_is_deterministic() {
        let cfg = SimConfig::with_shape(2, 4).unwrap();
        let w = Benchmark::Ferret.generate_threaded(&TraceSpec::new(2_000, 4));
        let a = VmSimulator::new(cfg).unwrap().run(&w);
        let b = VmSimulator::new(cfg).unwrap().run(&w);
        assert_eq!(a, b);
    }

    #[test]
    fn parsec_scaling_is_bounded() {
        // Per-thread ILP of ~2 chains should bound slice scaling near 2x
        // (paper §5.3: "the speedup is bounded by 2").
        let w = Benchmark::Swaptions.generate_threaded(&TraceSpec::new(4_000, 9));
        let one = VmSimulator::new(SimConfig::with_shape(1, 4).unwrap())
            .unwrap()
            .run(&w);
        let eight = VmSimulator::new(SimConfig::with_shape(8, 4).unwrap())
            .unwrap()
            .run(&w);
        let speedup = eight.ipc() / one.ipc();
        assert!(
            speedup < 3.0,
            "PARSEC speedup should be bounded, got {speedup:.2}"
        );
    }

    #[test]
    fn coscheduling_inflicts_measurable_interference() {
        // A cache-sensitive tenant co-runs with a streaming bully on one
        // shared 256KB L2 vs running alone on the same system.
        let spec = TraceSpec::new(6_000, 21);
        let victim = Benchmark::Omnetpp.generate(&spec);
        let bully = Benchmark::Libquantum.generate(&spec);
        let cfg = SimConfig::with_shape(2, 4).unwrap();
        let vm = VmSimulator::new(cfg).unwrap();
        let alone = vm.run_coscheduled(std::slice::from_ref(&victim));
        let together = vm.run_coscheduled(&[victim.clone(), bully]);
        assert_eq!(alone[0].instructions, together[0].instructions);
        assert!(
            together[0].cycles > alone[0].cycles,
            "contention must cost the victim cycles: {} vs {}",
            together[0].cycles,
            alone[0].cycles
        );
    }

    #[test]
    fn coscheduled_results_are_per_tenant() {
        let spec = TraceSpec::new(3_000, 4);
        let a = Benchmark::Gcc.generate(&spec);
        let b = Benchmark::Hmmer.generate(&spec);
        let cfg = SimConfig::with_shape(1, 2).unwrap();
        let results = VmSimulator::new(cfg).unwrap().run_coscheduled(&[a, b]);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].workload, "gcc");
        assert_eq!(results[1].workload, "hmmer");
        assert!(results.iter().all(|r| r.instructions == 3_000));
    }

    #[test]
    #[should_panic(expected = "chunk must be positive")]
    fn zero_chunk_rejected() {
        let _ = VmSimulator::new(SimConfig::with_shape(1, 1).unwrap())
            .unwrap()
            .with_chunk(0);
    }
}
