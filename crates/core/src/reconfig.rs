//! VCore reconfiguration costs (paper §3.8 and §5.10).
//!
//! Changing the Slice count of a live VCore requires a Register Flush
//! (dirty architectural registers pushed to surviving Slices over the
//! operand network) and interconnect re-programming by the hypervisor —
//! cheap, because there are only 64 local physical registers per Slice.
//! Changing the L2 bank assignment requires flushing dirty bank state to
//! main memory — expensive. The paper's Table 7 accounts 500 cycles for a
//! Slice-only change and 10 000 cycles when the cache configuration
//! changes.

use crate::config::VCoreShape;

/// Reconfiguration cost model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconfigCosts {
    /// Cycles to change only the Slice count (Register Flush + interconnect
    /// setup).
    pub slice_only: u64,
    /// Cycles when the L2 bank set changes (includes the dirty-bank flush).
    pub cache_change: u64,
}

impl ReconfigCosts {
    /// The paper's Table 7 costs.
    #[must_use]
    pub fn paper() -> Self {
        ReconfigCosts {
            slice_only: 500,
            cache_change: 10_000,
        }
    }

    /// Cycles charged to go from `from` to `to`.
    ///
    /// A change in bank count dominates (the bank flush hides the register
    /// flush); an identical shape is free.
    #[must_use]
    pub fn cost(self, from: VCoreShape, to: VCoreShape) -> u64 {
        if from == to {
            0
        } else if from.l2_banks != to.l2_banks {
            self.cache_change
        } else {
            self.slice_only
        }
    }

    /// Total reconfiguration cycles along a schedule of shapes.
    #[must_use]
    pub fn schedule_cost(self, shapes: &[VCoreShape]) -> u64 {
        shapes.windows(2).map(|w| self.cost(w[0], w[1])).sum()
    }
}

impl Default for ReconfigCosts {
    fn default() -> Self {
        ReconfigCosts::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(s: usize, b: usize) -> VCoreShape {
        VCoreShape::new(s, b).unwrap()
    }

    #[test]
    fn same_shape_is_free() {
        let c = ReconfigCosts::paper();
        assert_eq!(c.cost(shape(2, 4), shape(2, 4)), 0);
    }

    #[test]
    fn slice_only_change_is_cheap() {
        let c = ReconfigCosts::paper();
        assert_eq!(c.cost(shape(2, 4), shape(5, 4)), 500);
    }

    #[test]
    fn cache_change_dominates() {
        let c = ReconfigCosts::paper();
        assert_eq!(c.cost(shape(2, 4), shape(2, 8)), 10_000);
        // Changing both still charges the cache cost once.
        assert_eq!(c.cost(shape(2, 4), shape(5, 8)), 10_000);
    }

    #[test]
    fn schedule_accumulates() {
        let c = ReconfigCosts::paper();
        let sched = [shape(2, 4), shape(2, 4), shape(3, 4), shape(3, 8)];
        assert_eq!(c.schedule_cost(&sched), 500 + 10_000);
        assert_eq!(c.schedule_cost(&sched[..1]), 0);
        assert_eq!(c.schedule_cost(&[]), 0);
    }
}
