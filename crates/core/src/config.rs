//! Simulator configuration: the paper's Tables 2 and 3 plus model knobs.

use sharing_cache::L2LatencyModel;
use sharing_json::{json_struct, FromJson, Json, JsonError, ToJson};
use sharing_noc::LatencyModel;
use std::fmt;

/// Maximum Slices a VCore may have (paper Equation 3: `1 ≤ s ≤ 8`).
pub const MAX_SLICES: usize = 8;
/// Maximum L2 banks a VCore may have — 8 MB at 64 KB/bank (Equation 3:
/// `0 KB ≤ c ≤ 8 MB`).
pub const MAX_L2_BANKS: usize = 128;

/// Configuration validation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// Slice count outside `1..=MAX_SLICES`.
    BadSliceCount(usize),
    /// Bank count above `MAX_L2_BANKS`.
    BadBankCount(usize),
    /// A structural parameter was zero.
    ZeroParam(&'static str),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadSliceCount(n) => {
                write!(f, "slice count {n} outside 1..={MAX_SLICES}")
            }
            ConfigError::BadBankCount(n) => {
                write!(f, "bank count {n} above {MAX_L2_BANKS}")
            }
            ConfigError::ZeroParam(p) => write!(f, "parameter {p} must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Per-Slice structural parameters (paper Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SliceParams {
    /// Instructions fetched per Slice per cycle.
    pub fetch_width: u32,
    /// ALU issue-window entries.
    pub issue_window: usize,
    /// Load/store issue-window entries.
    pub ls_window: usize,
    /// Load/store queue entries per Slice bank.
    pub lsq_entries: usize,
    /// Reorder-buffer entries per Slice.
    pub rob_entries: usize,
    /// Store-buffer entries per Slice.
    pub store_buffer: usize,
    /// Maximum in-flight loads per Slice (MSHRs).
    pub max_inflight_loads: usize,
    /// Local physical registers per Slice (LRF).
    pub local_regs: usize,
    /// Global logical registers shared by the VCore.
    pub global_regs: usize,
    /// Bimodal predictor entries per Slice.
    pub predictor_entries: usize,
    /// BTB entries per Slice.
    pub btb_entries: usize,
}

impl Default for SliceParams {
    /// Table 2 of the paper.
    fn default() -> Self {
        SliceParams {
            fetch_width: 2,
            issue_window: 32,
            ls_window: 32,
            lsq_entries: 32,
            rob_entries: 64,
            store_buffer: 8,
            max_inflight_loads: 8,
            local_regs: 64,
            global_regs: 128,
            predictor_entries: 2048,
            btb_entries: 512,
        }
    }
}

/// Memory-system parameters (paper Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemParams {
    /// L1 D-cache size in bytes (per Slice).
    pub l1d_bytes: u64,
    /// L1 D-cache associativity.
    pub l1d_ways: u32,
    /// L1 hit delay in cycles.
    pub l1_hit: u32,
    /// L1 I-cache size in bytes (per Slice).
    pub l1i_bytes: u64,
    /// L1 I-cache associativity.
    pub l1i_ways: u32,
    /// L1 I-cache miss penalty (refill from the L2 side).
    pub l1i_miss: u32,
    /// The distance-based L2 hit-latency model.
    pub l2_latency: L2LatencyModel,
    /// Main-memory delay in cycles.
    pub memory_delay: u32,
}

impl Default for MemParams {
    /// Table 3 of the paper (16 KB 2-way L1s at 3 cycles, `distance*2+4`
    /// L2, 100-cycle memory).
    fn default() -> Self {
        MemParams {
            l1d_bytes: 16 << 10,
            l1d_ways: 2,
            l1_hit: 3,
            l1i_bytes: 16 << 10,
            l1i_ways: 2,
            l1i_miss: 10,
            l2_latency: L2LatencyModel::paper(),
            memory_delay: 100,
        }
    }
}

/// Branch-direction prediction scheme (paper §3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PredictorKind {
    /// The paper's baseline: a local bimodal predictor indexed by PC.
    #[default]
    Bimodal,
    /// The global scheme §3.1 sketches: gshare with a Global History
    /// Register composed across Slices "with appropriate delay across the
    /// switched interconnect" — on an `n`-Slice VCore each Slice predicts
    /// with a history that is stale by the branches resolved during the
    /// compose delay.
    Gshare {
        /// History length in bits.
        history_bits: u8,
    },
}

impl ToJson for PredictorKind {
    fn to_json(&self) -> Json {
        match self {
            PredictorKind::Bimodal => Json::Str("Bimodal".to_string()),
            PredictorKind::Gshare { history_bits } => Json::obj(vec![(
                "Gshare",
                Json::obj(vec![("history_bits", history_bits.to_json())]),
            )]),
        }
    }
}

impl FromJson for PredictorKind {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) if s == "Bimodal" => Ok(PredictorKind::Bimodal),
            Json::Obj(_) => {
                let body = v
                    .get("Gshare")
                    .ok_or_else(|| JsonError::msg(format!("unknown predictor kind {v}")))?;
                let bits = body
                    .get("history_bits")
                    .ok_or_else(|| JsonError::msg("Gshare missing history_bits".to_string()))?;
                Ok(PredictorKind::Gshare {
                    history_bits: u8::from_json(bits)?,
                })
            }
            other => Err(JsonError::msg(format!("unknown predictor kind {other}"))),
        }
    }
}

/// Model fidelity knobs, including the ablations DESIGN.md calls out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelKnobs {
    /// Physical operand-network planes (§5.1 ablation: the paper found a
    /// second plane buys only ≈1%).
    pub operand_planes: usize,
    /// Remote-operand wakeup one cycle before the reply arrives (§3.3).
    pub remote_wakeup_headstart: bool,
    /// Unordered, age-tagged LSQ with speculative loads (§3.6). When
    /// `false`, loads wait for all older stores' addresses (ordered
    /// baseline).
    pub unordered_lsq: bool,
    /// Whether the VCore's Slices are contiguous on the mesh (§3 requires
    /// it for performance; `false` models a fragmented allocation with one
    /// extra hop between logically adjacent Slices).
    pub contiguous_slices: bool,
    /// Front-end depth from fetch to rename, in cycles (before the
    /// multi-Slice global-rename stages are added).
    pub frontend_depth: u32,
    /// Extra redirect cycles after a branch resolves as mispredicted.
    pub mispredict_penalty: u32,
    /// Replay penalty for a load/store ordering violation, on top of
    /// re-executing the load (§3.6).
    pub violation_penalty: u32,
    /// Inter-Slice operand latency model.
    pub operand_latency: LatencyModel,
    /// Branch-direction prediction scheme.
    pub predictor: PredictorKind,
}

impl Default for ModelKnobs {
    fn default() -> Self {
        ModelKnobs {
            operand_planes: 1,
            remote_wakeup_headstart: true,
            unordered_lsq: true,
            contiguous_slices: true,
            frontend_depth: 4,
            mispredict_penalty: 3,
            violation_penalty: 6,
            operand_latency: LatencyModel::tilera(),
            predictor: PredictorKind::Bimodal,
        }
    }
}

/// A Virtual Core's resource assignment: the two axes every experiment in
/// the paper sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VCoreShape {
    /// Number of Slices (`1..=8`).
    pub slices: usize,
    /// Number of 64 KB L2 banks (`0..=128`).
    pub l2_banks: usize,
}

impl VCoreShape {
    /// Creates a validated shape.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if outside the paper's Equation 3 bounds.
    pub fn new(slices: usize, l2_banks: usize) -> Result<Self, ConfigError> {
        if slices == 0 || slices > MAX_SLICES {
            return Err(ConfigError::BadSliceCount(slices));
        }
        if l2_banks > MAX_L2_BANKS {
            return Err(ConfigError::BadBankCount(l2_banks));
        }
        Ok(VCoreShape { slices, l2_banks })
    }

    /// L2 capacity in kilobytes.
    #[must_use]
    pub fn l2_kb(self) -> u64 {
        self.l2_banks as u64 * 64
    }

    /// All valid shapes over the paper's sweep grid: 1–8 Slices × L2 sizes
    /// {0, 64 KB, 128 KB, …, 8 MB} (power-of-two bank counts).
    pub fn sweep_grid() -> impl Iterator<Item = VCoreShape> {
        const BANK_OPTIONS: [usize; 9] = [0, 1, 2, 4, 8, 16, 32, 64, 128];
        (1..=MAX_SLICES).flat_map(|s| {
            BANK_OPTIONS.iter().map(move |&b| VCoreShape {
                slices: s,
                l2_banks: b,
            })
        })
    }
}

json_struct!(SliceParams {
    fetch_width,
    issue_window,
    ls_window,
    lsq_entries,
    rob_entries,
    store_buffer,
    max_inflight_loads,
    local_regs,
    global_regs,
    predictor_entries,
    btb_entries,
});

json_struct!(MemParams {
    l1d_bytes,
    l1d_ways,
    l1_hit,
    l1i_bytes,
    l1i_ways,
    l1i_miss,
    l2_latency,
    memory_delay,
});

json_struct!(ModelKnobs {
    operand_planes,
    remote_wakeup_headstart,
    unordered_lsq,
    contiguous_slices,
    frontend_depth,
    mispredict_penalty,
    violation_penalty,
    operand_latency,
    predictor,
});

json_struct!(VCoreShape { slices, l2_banks });

impl ToJson for SimConfig {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("shape", self.shape.to_json()),
            ("slice", self.slice.to_json()),
            ("mem", self.mem.to_json()),
            ("knobs", self.knobs.to_json()),
        ])
    }
}

impl FromJson for SimConfig {
    /// Parses and **validates**: shapes outside Equation 3 or zero-sized
    /// structures are rejected, so a config arriving over the wire is safe
    /// to hand to [`crate::Simulator::new`].
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| JsonError::msg(format!("SimConfig missing field `{name}`")))
        };
        let shape = VCoreShape::from_json(field("shape")?)?;
        let cfg = SimConfig {
            shape: VCoreShape::new(shape.slices, shape.l2_banks)
                .map_err(|e| JsonError::msg(e.to_string()))?,
            slice: SliceParams::from_json(field("slice")?)?,
            mem: MemParams::from_json(field("mem")?)?,
            knobs: ModelKnobs::from_json(field("knobs")?)?,
        };
        cfg.validate().map_err(|e| JsonError::msg(e.to_string()))?;
        Ok(cfg)
    }
}

impl fmt::Display for VCoreShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s/{}KB", self.slices, self.l2_kb())
    }
}

/// Full simulator configuration.
///
/// # Example
///
/// ```
/// use sharing_core::SimConfig;
///
/// let cfg = SimConfig::builder().slices(4).l2_banks(8).build()?;
/// assert_eq!(cfg.shape().slices, 4);
/// assert_eq!(cfg.shape().l2_kb(), 512);
/// # Ok::<(), sharing_core::ConfigError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    shape: VCoreShape,
    /// Per-Slice structural parameters.
    pub slice: SliceParams,
    /// Memory-system parameters.
    pub mem: MemParams,
    /// Model knobs.
    pub knobs: ModelKnobs,
}

impl SimConfig {
    /// Starts a builder with the paper's default parameters.
    #[must_use]
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }

    /// Convenience: the paper's base configuration with a given shape.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for out-of-range shapes.
    pub fn with_shape(slices: usize, l2_banks: usize) -> Result<Self, ConfigError> {
        SimConfig::builder()
            .slices(slices)
            .l2_banks(l2_banks)
            .build()
    }

    /// The VCore shape.
    #[must_use]
    pub fn shape(&self) -> VCoreShape {
        self.shape
    }

    /// Number of Slices.
    #[must_use]
    pub fn slices(&self) -> usize {
        self.shape.slices
    }

    /// Number of L2 banks.
    #[must_use]
    pub fn l2_banks(&self) -> usize {
        self.shape.l2_banks
    }

    /// Validates structural parameters (builder output is always valid;
    /// hand-edited configs can use this).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroParam`] for any zero structural size.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let s = &self.slice;
        let checks: [(&'static str, u64); 9] = [
            ("fetch_width", u64::from(s.fetch_width)),
            ("issue_window", s.issue_window as u64),
            ("ls_window", s.ls_window as u64),
            ("lsq_entries", s.lsq_entries as u64),
            ("rob_entries", s.rob_entries as u64),
            ("store_buffer", s.store_buffer as u64),
            ("max_inflight_loads", s.max_inflight_loads as u64),
            ("local_regs", s.local_regs as u64),
            ("operand_planes", self.knobs.operand_planes as u64),
        ];
        for (name, v) in checks {
            if v == 0 {
                return Err(ConfigError::ZeroParam(name));
            }
        }
        if s.global_regs <= sharing_isa::NUM_ARCH_REGS {
            return Err(ConfigError::ZeroParam("global_regs"));
        }
        Ok(())
    }
}

/// Builder for [`SimConfig`].
#[derive(Clone, Debug)]
pub struct SimConfigBuilder {
    slices: usize,
    l2_banks: usize,
    slice: SliceParams,
    mem: MemParams,
    knobs: ModelKnobs,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        SimConfigBuilder {
            slices: 1,
            l2_banks: 2, // 128 KB: the paper's Fig 12 normalization base
            slice: SliceParams::default(),
            mem: MemParams::default(),
            knobs: ModelKnobs::default(),
        }
    }
}

impl SimConfigBuilder {
    /// Sets the Slice count.
    #[must_use]
    pub fn slices(mut self, n: usize) -> Self {
        self.slices = n;
        self
    }

    /// Sets the L2 bank count.
    #[must_use]
    pub fn l2_banks(mut self, n: usize) -> Self {
        self.l2_banks = n;
        self
    }

    /// Overrides Slice structural parameters.
    #[must_use]
    pub fn slice_params(mut self, p: SliceParams) -> Self {
        self.slice = p;
        self
    }

    /// Overrides memory parameters.
    #[must_use]
    pub fn mem_params(mut self, p: MemParams) -> Self {
        self.mem = p;
        self
    }

    /// Overrides model knobs.
    #[must_use]
    pub fn knobs(mut self, k: ModelKnobs) -> Self {
        self.knobs = k;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid shapes or zero parameters.
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        let shape = VCoreShape::new(self.slices, self.l2_banks)?;
        let cfg = SimConfig {
            shape,
            slice: self.slice,
            mem: self.mem,
            knobs: self.knobs,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_tables() {
        let cfg = SimConfig::builder().build().unwrap();
        assert_eq!(cfg.slice.issue_window, 32);
        assert_eq!(cfg.slice.lsq_entries, 32);
        assert_eq!(cfg.slice.rob_entries, 64);
        assert_eq!(cfg.slice.store_buffer, 8);
        assert_eq!(cfg.slice.max_inflight_loads, 8);
        assert_eq!(cfg.slice.local_regs, 64);
        assert_eq!(cfg.slice.global_regs, 128);
        assert_eq!(cfg.slice.fetch_width, 2);
        assert_eq!(cfg.mem.l1d_bytes, 16 << 10);
        assert_eq!(cfg.mem.l1_hit, 3);
        assert_eq!(cfg.mem.memory_delay, 100);
        assert_eq!(cfg.mem.l2_latency.hit_latency(1), 6); // distance*2+4
    }

    #[test]
    fn shape_bounds_match_equation_3() {
        assert!(VCoreShape::new(1, 0).is_ok());
        assert!(VCoreShape::new(8, 128).is_ok());
        assert_eq!(VCoreShape::new(0, 0), Err(ConfigError::BadSliceCount(0)));
        assert_eq!(VCoreShape::new(9, 0), Err(ConfigError::BadSliceCount(9)));
        assert_eq!(VCoreShape::new(4, 129), Err(ConfigError::BadBankCount(129)));
    }

    #[test]
    fn sweep_grid_covers_the_paper_space() {
        let shapes: Vec<_> = VCoreShape::sweep_grid().collect();
        assert_eq!(shapes.len(), 8 * 9);
        assert!(shapes.contains(&VCoreShape {
            slices: 1,
            l2_banks: 0
        }));
        assert!(shapes.contains(&VCoreShape {
            slices: 8,
            l2_banks: 128
        }));
    }

    #[test]
    fn l2_kb_conversion() {
        assert_eq!(VCoreShape::new(1, 2).unwrap().l2_kb(), 128);
        assert_eq!(VCoreShape::new(1, 128).unwrap().l2_kb(), 8192);
    }

    #[test]
    fn validate_rejects_zero_params() {
        let mut cfg = SimConfig::builder().build().unwrap();
        cfg.slice.issue_window = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroParam("issue_window")));
    }

    #[test]
    fn display_shape() {
        assert_eq!(VCoreShape::new(4, 8).unwrap().to_string(), "4s/512KB");
    }
}
