//! Pipeline timeline rendering.
//!
//! Turns the per-instruction [`InstTiming`](crate::InstTiming) records of
//! [`RunOptions::record_timings`](crate::RunOptions::record_timings) runs into a text
//! Gantt chart (in the spirit of gem5's O3 pipeline viewer), which makes
//! the Sharing Architecture's behaviours *visible*: the interleaved fetch
//! groups marching across Slices, remote operands stretching the
//! dispatch-to-issue span, loads sorting away to their home Slice and
//! coming back late, the in-order commit frontier.
//!
//! ```text
//! seq slice |f---d.i=e######c         | 0x10040: ld [0x1000...]
//! ```
//!
//! Legend: `f` fetch, `d` dispatch, `i` issue, `e` execution complete,
//! `c` commit; `-` front end, `.` waiting in the issue window, `=`
//! executing, `#` waiting to commit.

use crate::engine::InstTiming;
use sharing_isa::DynInst;
use std::fmt::Write as _;

/// Renders a window of instructions as a pipeline chart.
///
/// `timings` and `insts` must be parallel slices (as produced by
/// [`RunOptions::record_timings`](crate::RunOptions::record_timings) and
/// the trace it ran). At most `max_width` cycle columns are drawn; rows
/// extending past the window are truncated with `>`.
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Example
///
/// ```
/// use sharing_core::{timeline, RunOptions, SimConfig, Simulator};
/// use sharing_trace::{Benchmark, TraceSpec};
///
/// let trace = Benchmark::Gcc.generate(&TraceSpec::new(64, 1));
/// let timings = Simulator::new(SimConfig::with_shape(2, 2)?)?
///     .run_with(&trace, RunOptions::new().record_timings())
///     .timings
///     .unwrap();
/// let chart = timeline::render(&timings[..16], &trace.insts()[..16], 80);
/// assert!(chart.contains("seq"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn render(timings: &[InstTiming], insts: &[DynInst], max_width: usize) -> String {
    assert_eq!(
        timings.len(),
        insts.len(),
        "one timing record per instruction required"
    );
    let max_width = max_width.max(16);
    if timings.is_empty() {
        return "(empty window)\n".to_string();
    }
    let t0 = timings.iter().map(|t| t.fetch).min().expect("non-empty");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>5} {:>5} |{:-<max_width$}|",
        "seq", "slice", "cycles"
    );
    for (t, inst) in timings.iter().zip(insts) {
        let col = |cycle: u64| (cycle - t0) as usize;
        let mut row = vec![b' '; max_width];
        let mut truncated = false;
        for (from, to, ch) in [
            (t.fetch, t.dispatch, b'-'),
            (t.dispatch, t.issue, b'.'),
            (t.issue, t.exec_done, b'='),
            (t.exec_done, t.commit, b'#'),
        ] {
            for cell in row
                .iter_mut()
                .take(max_width.min(col(to)))
                .skip(col(from) + 1)
            {
                *cell = ch;
            }
        }
        for (cycle, ch) in [
            (t.fetch, b'f'),
            (t.dispatch, b'd'),
            (t.issue, b'i'),
            (t.exec_done, b'e'),
            (t.commit, b'c'),
        ] {
            let pos = col(cycle);
            if pos < max_width {
                row[pos] = ch;
            } else {
                truncated = true;
            }
        }
        if truncated {
            row[max_width - 1] = b'>';
        }
        let lane = String::from_utf8(row).expect("ASCII marks only");
        let _ = writeln!(out, "{:>5} {:>5} |{lane}| {inst}", t.seq, t.slice);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator};
    use sharing_trace::{Benchmark, TraceSpec};

    fn sample(n: usize) -> (Vec<InstTiming>, sharing_trace::Trace) {
        let trace = Benchmark::Gcc.generate(&TraceSpec::new(n, 3));
        let timings = Simulator::new(SimConfig::with_shape(2, 2).unwrap())
            .unwrap()
            .run_with(&trace, crate::RunOptions::new().record_timings())
            .timings
            .unwrap();
        (timings, trace)
    }

    #[test]
    fn renders_one_row_per_instruction() {
        let (timings, trace) = sample(24);
        let chart = render(&timings, trace.insts(), 100);
        assert_eq!(chart.lines().count(), 25, "header + 24 rows");
        for line in chart.lines().skip(1) {
            assert!(line.contains('f'), "every row shows fetch: {line}");
            assert!(line.contains('|'));
        }
    }

    #[test]
    fn markers_appear_in_pipeline_order() {
        let (timings, trace) = sample(12);
        let chart = render(&timings, trace.insts(), 200);
        for line in chart.lines().skip(1) {
            let lane = line.split('|').nth(1).expect("lane exists");
            let pos = |ch: char| lane.find(ch);
            if let (Some(f), Some(d)) = (pos('f'), pos('d')) {
                assert!(f < d, "fetch before dispatch: {line}");
            }
            if let (Some(d), Some(i)) = (pos('d'), pos('i')) {
                assert!(d < i, "dispatch before issue: {line}");
            }
        }
    }

    #[test]
    fn long_rows_are_truncated_with_a_marker() {
        let (timings, trace) = sample(64);
        let chart = render(&timings, trace.insts(), 16);
        // At 16 columns, later instructions necessarily run off the edge.
        assert!(chart.lines().any(|l| l.contains('>')));
        for line in chart.lines() {
            let lane_len = line.split('|').nth(1).map_or(0, str::len);
            assert!(lane_len <= 16);
        }
    }

    #[test]
    fn empty_window_is_graceful() {
        assert_eq!(render(&[], &[], 40), "(empty window)\n");
    }

    #[test]
    #[should_panic(expected = "one timing record per instruction")]
    fn mismatched_slices_panic() {
        let (timings, trace) = sample(4);
        let _ = render(&timings[..2], trace.insts(), 40);
    }
}
