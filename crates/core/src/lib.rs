//! # SSim — cycle-level simulator of the Sharing Architecture
//!
//! This crate is the reproduction of the paper's primary contribution: a
//! manycore fabric whose *Virtual Cores* are composed at run time from
//! Slices (minimal out-of-order pipelines) and 64 KB L2 cache banks, plus
//! the trace-driven simulator (SSim) the paper evaluates it with.
//!
//! * [`SimConfig`] / [`VCoreShape`] — the paper's Tables 2/3 parameters and
//!   the `(slices, cache)` configuration space of Equation 3;
//! * [`Simulator`] — run one trace on one VCore via
//!   [`Simulator::run_with`] and [`RunOptions`];
//! * [`VmSimulator`] — multi-VCore VMs sharing a coherent L2 (PARSEC);
//! * [`run_phased_with`] — dynamic reconfiguration across program phases
//!   with the paper's 500/10 000-cycle costs (§5.10);
//! * [`engine`] — the underlying timing model, exposed for composition;
//! * [`profile`] — conservation-exact cycle attribution (the `profile`
//!   feature, on by default): every simulated cycle of every Slice binned
//!   into fetch/issue/FU-busy/DRAM-stall/ROB-full/idle;
//! * [`structures`] — Table 1's replicated-vs-partitioned encoding.
//!
//! # Example
//!
//! ```
//! use sharing_core::{SimConfig, Simulator};
//! use sharing_trace::{Benchmark, TraceSpec};
//!
//! // Compare a 1-Slice and a 4-Slice VCore on the same workload.
//! use sharing_core::RunOptions;
//! let trace = Benchmark::H264ref.generate(&TraceSpec::new(4_000, 42));
//! let sim = |s| Simulator::new(SimConfig::with_shape(s, 2).unwrap()).unwrap();
//! let small = sim(1).run_with(&trace, RunOptions::new()).result;
//! let big = sim(4).run_with(&trace, RunOptions::new()).result;
//! assert!(big.ipc() > small.ipc());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod event;
pub mod multi;
pub mod par;
pub mod predictor;
pub mod profile;
pub mod reconfig;
pub mod reconfigurable;
pub mod sim;
pub mod stats;
pub mod structures;
pub mod timeline;

pub use config::{
    ConfigError, MemParams, ModelKnobs, PredictorKind, SimConfig, SliceParams, VCoreShape,
    MAX_L2_BANKS, MAX_SLICES,
};
pub use engine::{InstTiming, MemAccess, MemorySystem, VCoreEngine};
pub use event::{EngineKind, WakeHeap};
pub use multi::VmSimulator;
pub use profile::{CycleProfile, SliceCycles};
pub use reconfig::ReconfigCosts;
pub use reconfigurable::ReconfigurableVCore;
pub use sim::{run_phased_with, RunOptions, RunOutput, Simulator};
pub use stats::{MemCounters, SimResult, SliceStats, StallBreakdown};
pub use structures::{Distribution, Structure};
