//! The SSim timing engine: one hardware thread on one Virtual Core.
//!
//! The engine is a trace-driven, dependence-timing model of the paper's
//! multi-Slice pipeline. Instructions are processed in committed program
//! order; for each one the engine computes its fetch, dispatch, issue,
//! execute and commit cycles subject to:
//!
//! * PC-interleaved fetch across Slices with group breaks at taken control
//!   flow (§3.1), per-Slice bimodal predictors and replicated BTBs;
//! * two-stage renaming whose master-Slice round trip deepens the front
//!   end as Slices are added (§3.2.1), and a bounded global-logical-register
//!   free list (Table 2: 128 global registers);
//! * per-Slice ALU/LS issue windows with remote-operand wakeup one cycle
//!   before the reply arrives (§3.3);
//! * operand request/reply messages on the (optionally queued) Scalar
//!   Operand Network, with LRF copy caching so repeated reads of a remote
//!   register do not re-request (§3.2.2, §3.4);
//! * address-interleaved load/store sorting to the home Slice's unordered,
//!   age-tagged LSQ bank, with speculative loads, store forwarding and
//!   violation replay (§3.6);
//! * Slice-interleaved L1 D-caches, the banked distance-latency L2, MSHRs,
//!   and store buffers drained at commit (§3.5);
//! * a partitioned ROB whose pre-commit broadcast adds commit latency to
//!   multi-Slice VCores (§3.7).
//!
//! Branch mispredictions and LSQ violations charge the committed path with
//! redirect/replay bubbles rather than simulating wrong-path execution —
//! the same fidelity class as the paper's trace-driven SSim.

use crate::config::{PredictorKind, SimConfig};
use crate::event::{EngineKind, StoreHashBuilder, WakeHeap};
use crate::predictor::BranchPredictor;
use crate::stats::{SimResult, StallBreakdown};
use sharing_cache::mshr::MshrOutcome;
use sharing_cache::{CacheGeometry, Directory, L2Array, MshrFile, SetAssocCache};
use sharing_isa::{ArchReg, DynInst, InstKind, NUM_ARCH_REGS};
use sharing_noc::{Coord, Mesh, QueuedNetwork, Transport};
use std::collections::{HashMap, VecDeque};

/// One engine-visible access to the shared memory system: everything
/// `beyond_l1` needs to reproduce its state transition. Forked memory
/// systems record these so the barrier can replay them into the
/// authoritative system in a fixed order (see [`MemorySystem::fork`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemAccess {
    /// Requesting VCore.
    pub vcore: usize,
    /// 64-byte line number.
    pub line: u64,
    /// Write (store drain) vs read (load miss).
    pub write: bool,
    /// Request cycle on the requester's clock.
    pub now: u64,
}

/// The memory system beyond the L1s: the VCore's (or VM's shared) L2 bank
/// set, the main-memory delay, and — when several VCores share it — the
/// coherence directory.
#[derive(Debug)]
pub struct MemorySystem {
    /// The banked L2.
    pub l2: L2Array,
    /// The per-VM directory (only consulted when `coherent`).
    pub directory: Directory,
    /// Whether multiple VCores share this system (enables the directory).
    pub coherent: bool,
    /// Main-memory latency in cycles.
    pub memory_delay: u32,
    /// Latency charged per coherence hop between VCores (forward or
    /// invalidate round trip).
    pub coherence_hop: u32,
    /// Invalidations queued for other VCores' L1s: `(vcore, line)`.
    pub pending_invals: Vec<(usize, u64)>,
    /// Accesses that fell through the L2 to main memory.
    pub memory_accesses: u64,
    /// Memory-controller service calendar: each line fill occupies the
    /// DRAM channel for [`Self::dram_fill_cycles`], so cache-starved
    /// configurations queue behind their own fill traffic.
    dram: FuCalendar,
    /// Channel occupancy per 64-byte line fill.
    pub dram_fill_cycles: u64,
    /// When `Some`, every `beyond_l1` call is also appended here — set on
    /// forked systems so the barrier can replay the access stream.
    log: Option<Vec<MemAccess>>,
}

impl MemorySystem {
    /// Builds a private (single-VCore) memory system.
    #[must_use]
    pub fn private(l2_banks: usize, memory_delay: u32) -> Self {
        MemorySystem {
            l2: L2Array::new(l2_banks),
            directory: Directory::new(),
            coherent: false,
            memory_delay,
            coherence_hop: 5,
            pending_invals: Vec::new(),
            memory_accesses: 0,
            dram: FuCalendar::default(),
            dram_fill_cycles: 4,
            log: None,
        }
    }

    /// Builds a private memory system whose banks sit at the given network
    /// distances — the hypervisor's actual placement (a
    /// `sharing_hv::Lease::bank_distances` vector) instead of the default
    /// compact ring. Far-flung banks cost real cycles (§3.5: "latency
    /// increases as L2 banks are further away").
    #[must_use]
    pub fn private_placed(bank_distances: Vec<u32>, memory_delay: u32) -> Self {
        let mut mem = MemorySystem::private(bank_distances.len(), memory_delay);
        mem.l2.set_distances(bank_distances);
        mem
    }

    /// Builds a shared (multi-VCore VM) memory system with coherence.
    #[must_use]
    pub fn shared(l2_banks: usize, memory_delay: u32) -> Self {
        MemorySystem {
            coherent: true,
            ..MemorySystem::shared_base(l2_banks, memory_delay)
        }
    }

    fn shared_base(l2_banks: usize, memory_delay: u32) -> Self {
        MemorySystem::private(l2_banks, memory_delay)
    }

    /// Forks a speculative copy for one engine's barrier-to-barrier
    /// chunk: same L2/directory/DRAM state, an empty invalidation queue,
    /// and access logging armed. The fork absorbs the engine's
    /// `beyond_l1` traffic in isolation; [`MemorySystem::replay`] then
    /// applies the recorded stream to the authoritative system, so the
    /// canonical state evolution depends only on the replay order —
    /// never on how many worker threads ran the forks.
    #[must_use]
    pub fn fork(&self) -> MemorySystem {
        MemorySystem {
            l2: self.l2.clone(),
            directory: self.directory.clone(),
            coherent: self.coherent,
            memory_delay: self.memory_delay,
            coherence_hop: self.coherence_hop,
            pending_invals: Vec::new(),
            memory_accesses: 0,
            dram: self.dram.clone(),
            dram_fill_cycles: self.dram_fill_cycles,
            log: Some(Vec::new()),
        }
    }

    /// Takes the access log a forked system recorded (empty on the
    /// authoritative system).
    #[must_use]
    pub fn take_log(&mut self) -> Vec<MemAccess> {
        self.log.take().unwrap_or_default()
    }

    /// Replays a forked chunk's access stream into this (authoritative)
    /// system: L2/LRU state, directory ownership, DRAM channel claims,
    /// miss counters, and cross-VCore invalidations all evolve exactly
    /// as if the accesses had been issued here directly. Latencies are
    /// discarded — the requesting engine already charged itself the
    /// latencies its fork computed.
    pub fn replay(&mut self, log: &[MemAccess]) {
        for a in log {
            let _ = self.beyond_l1(a.vcore, a.line, a.write, a.now);
        }
    }

    /// Latency beyond the L1 for a (miss) access to `line` requested at
    /// cycle `now`, including coherence work when shared and DRAM channel
    /// queueing. Also records directory/L2 state changes.
    fn beyond_l1(&mut self, vcore: usize, line: u64, write: bool, now: u64) -> (u32, u64, u64) {
        if let Some(log) = &mut self.log {
            log.push(MemAccess {
                vcore,
                line,
                write,
                now,
            });
        }
        let mut latency = 0u32;
        let mut coh_invals = 0u64;
        let mut coh_forwards = 0u64;
        if self.coherent {
            let action = if write {
                self.directory.write(line, vcore)
            } else {
                self.directory.read(line, vcore)
            };
            if let Some(_owner) = action.fetch_from {
                latency += 2 * self.coherence_hop;
                coh_forwards += 1;
            }
            if !action.invalidate.is_empty() {
                latency += self.coherence_hop;
                coh_invals += action.invalidate.len() as u64;
                for v in action.invalidate {
                    self.pending_invals.push((v, line));
                }
            }
        }
        let out = self.l2.access(line, write);
        latency += out.latency;
        if !out.hit {
            // Fill queues on the memory channel, then pays the access
            // latency.
            let request_at = now + u64::from(latency);
            let service_start = self.dram.issue_at(request_at, self.dram_fill_cycles);
            latency += (service_start - request_at) as u32 + self.memory_delay;
            self.memory_accesses += 1;
        }
        (latency, coh_invals, coh_forwards)
    }
}

/// A bounded structural resource: a multiset of busy-until times.
///
/// `acquire(t)` finds a slot free at or before `t`, or returns the earliest
/// time one frees. The caller then sets the slot's release time.
#[derive(Clone, Debug)]
struct Slots {
    free_at: Vec<u64>,
}

impl Slots {
    fn new(n: usize) -> Self {
        Slots {
            free_at: vec![0; n],
        }
    }

    /// Earliest cycle at/after `t` a slot is available.
    fn available_at(&self, t: u64) -> u64 {
        let min = self.free_at.iter().copied().min().unwrap_or(0);
        t.max(min)
    }

    /// Occupies a slot until `until`. The earliest-free slot is reserved;
    /// callers should gate on [`Slots::available_at`] first so the chosen
    /// slot is genuinely free at the acquisition time.
    fn occupy(&mut self, _t: u64, until: u64) {
        let idx = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &v)| v)
            .map(|(i, _)| i)
            .expect("Slots is never empty");
        self.free_at[idx] = self.free_at[idx].max(until);
    }

    fn clear(&mut self) {
        self.free_at.iter_mut().for_each(|v| *v = 0);
    }
}

/// A bounded structural resource in whichever representation the
/// engine's [`EngineKind`] selects: the original linear-scanned
/// [`Slots`] (legacy) or the event-driven [`WakeHeap`]. The two are
/// observably identical — only the multiset of slot free-times can be
/// seen through `available_at`/`occupy` — which the differential suite
/// pins byte-for-byte.
#[derive(Clone, Debug)]
enum Pool {
    Scan(Slots),
    Heap(WakeHeap),
}

impl Pool {
    fn new(n: usize, kind: EngineKind) -> Self {
        match kind {
            EngineKind::Legacy => Pool::Scan(Slots::new(n)),
            EngineKind::EventDriven | EngineKind::Sharded => Pool::Heap(WakeHeap::new(n)),
        }
    }

    /// Earliest cycle at/after `t` a slot is available.
    fn available_at(&self, t: u64) -> u64 {
        match self {
            Pool::Scan(s) => s.available_at(t),
            Pool::Heap(h) => h.available_at(t),
        }
    }

    /// Occupies the earliest-free slot until `until`.
    fn occupy(&mut self, t: u64, until: u64) {
        match self {
            Pool::Scan(s) => s.occupy(t, until),
            Pool::Heap(h) => h.occupy(t, until),
        }
    }

    fn clear(&mut self) {
        match self {
            Pool::Scan(s) => s.clear(),
            Pool::Heap(h) => h.clear(),
        }
    }
}

/// [`Slots`] specialised for resources released **at commit** (ROB
/// entries, the global register free list, LRF entries).
///
/// Commit times are monotonically nondecreasing in program order
/// (`commit = commit_ready.max(prev_commit)`), so the release times form
/// a sorted circular buffer: the earliest-free slot is always the oldest
/// occupied one. That turns both the `available_at` min-scan and the
/// `occupy` argmin-scan — O(entries) per instruction in [`Slots`] — into
/// O(1) ring operations with the identical observable multiset.
#[derive(Clone, Debug)]
struct FifoSlots {
    free_at: Vec<u64>,
    head: usize,
}

impl FifoSlots {
    fn new(n: usize) -> Self {
        FifoSlots {
            free_at: vec![0; n],
            head: 0,
        }
    }

    /// Earliest cycle at/after `t` a slot is available.
    fn available_at(&self, t: u64) -> u64 {
        t.max(self.free_at[self.head])
    }

    /// Occupies the earliest-free slot until `until` (a commit time, so
    /// `until` is never below the head's current release).
    fn occupy(&mut self, _t: u64, until: u64) {
        let head = self.head;
        self.free_at[head] = self.free_at[head].max(until);
        self.head = (head + 1) % self.free_at.len();
    }
}

/// A unit-throughput functional unit as a cycle calendar.
///
/// Out-of-order issue means a younger instruction whose operands are ready
/// early must be able to claim an earlier FU cycle than an older, stalled
/// instruction. A monotonic "next free" cursor cannot express that, so the
/// FU tracks the exact set of occupied cycles and each instruction takes
/// the first free run at or after its ready time.
///
/// The set is a windowed bitmap over `[base, base + 64 * words.len())`:
/// cycle keys are dense around the issue frontier, so one word covers 64
/// cycles and claiming a slot is bit arithmetic instead of a tree probe
/// per cycle. Cycles outside the window are free, exactly like absent keys
/// in a set — pruned history stays pruned, the untouched future is open.
#[derive(Clone, Debug, Default)]
struct FuCalendar {
    words: Vec<u64>,
    /// First cycle the bitmap covers (always word-aligned).
    base: u64,
    /// Number of occupied cycles in the window.
    count: usize,
}

impl FuCalendar {
    fn contains(&self, c: u64) -> bool {
        if c < self.base {
            return false;
        }
        let off = (c - self.base) as usize;
        self.words
            .get(off / 64)
            .is_some_and(|w| w >> (off % 64) & 1 == 1)
    }

    fn insert(&mut self, c: u64) {
        if c < self.base {
            // Re-opening pruned history (possible only right after a
            // prune); grow the window backwards, keeping word alignment.
            let grow = ((self.base - c) as usize).div_ceil(64);
            self.base -= grow as u64 * 64;
            self.words.splice(0..0, std::iter::repeat_n(0u64, grow));
        }
        let off = (c - self.base) as usize;
        let w = off / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let bit = 1u64 << (off % 64);
        if self.words[w] & bit == 0 {
            self.words[w] |= bit;
            self.count += 1;
        }
    }

    /// First free cycle at or after `ready` (single-cycle fast path).
    fn first_free_at(&self, ready: u64) -> u64 {
        if ready < self.base {
            return ready;
        }
        let off = (ready - self.base) as usize;
        let mut w = off / 64;
        if w >= self.words.len() {
            return ready;
        }
        let mut mask = !0u64 << (off % 64);
        while w < self.words.len() {
            let free = !self.words[w] & mask;
            if free != 0 {
                return self.base + w as u64 * 64 + u64::from(free.trailing_zeros());
            }
            w += 1;
            mask = !0;
        }
        self.base + self.words.len() as u64 * 64
    }

    /// Claims the first `occupancy` consecutive free cycles at or after
    /// `ready`; returns the start cycle.
    fn issue_at(&mut self, ready: u64, occupancy: u64) -> u64 {
        let c = if occupancy == 1 {
            let c = self.first_free_at(ready);
            self.insert(c);
            c
        } else {
            let mut c = ready;
            'search: loop {
                for k in 0..occupancy {
                    if self.contains(c + k) {
                        c = c + k + 1;
                        continue 'search;
                    }
                }
                for k in 0..occupancy {
                    self.insert(c + k);
                }
                break c;
            }
        };
        // Bound memory: drop cycles far behind the issue frontier.
        if self.count > 8192 {
            self.prune_below(c.saturating_sub(4096));
        }
        c
    }

    /// Frees every cycle below `cutoff` and drops it from the window.
    fn prune_below(&mut self, cutoff: u64) {
        if cutoff <= self.base {
            return;
        }
        let full = (((cutoff - self.base) / 64) as usize).min(self.words.len());
        for w in &self.words[..full] {
            self.count -= w.count_ones() as usize;
        }
        self.words.drain(..full);
        self.base += full as u64 * 64;
        if cutoff > self.base {
            if let Some(w0) = self.words.first_mut() {
                let low = (1u64 << (cutoff - self.base)) - 1;
                self.count -= (*w0 & low).count_ones() as usize;
                *w0 &= !low;
            }
        }
    }

    fn clear(&mut self) {
        // Keeps the allocation: calendars are cleared at every pipeline
        // drain and refill the same window next chunk.
        self.words.clear();
        self.base = 0;
        self.count = 0;
    }
}

/// Per-Slice microarchitectural state.
#[derive(Debug)]
struct SliceState {
    predictor: BranchPredictor,
    l1i: SetAssocCache,
    /// Next sequential pair-line this Slice expects (next-line prefetch).
    l1i_expected: u64,
    l1d: SetAssocCache,
    mshr: MshrFile,
    alu: FuCalendar,
    lsu: FuCalendar,
    alu_window: Pool,
    ls_window: Pool,
    rob: FifoSlots,
    lrf: FifoSlots,
    lsq_bank: Pool,
    store_buffer: Pool,
    /// For the ordered-LSQ baseline: latest address-resolve time of any
    /// older store sorted to this bank.
    store_barrier: u64,
    /// Per-architectural-register remote-copy cache: which producer
    /// version this Slice already holds in its LRF, and when it arrived.
    local_copy: [(u64, u64); NUM_ARCH_REGS],
}

/// The most recent producer of each architectural register.
#[derive(Clone, Copy, Debug, Default)]
struct RegVersion {
    /// Producer sequence number (`u64::MAX` plus one semantics avoided by
    /// starting versions at 1; 0 = initial state, ready at cycle 0).
    seq: u64,
    slice: usize,
    exec_done: u64,
    /// The architectural value, tracked when dataflow verification is on.
    value: u64,
}

/// An in-flight (or recently completed) store, for forwarding/violations.
#[derive(Clone, Copy, Debug)]
struct StoreRec {
    seq: u64,
    /// When the store's address resolved (end of AGU).
    addr_known: u64,
    /// When the store's data is present at the home LSQ bank.
    data_at_home: u64,
    /// When the store's value lands in the home L1D (post-commit drain);
    /// `u64::MAX` until commit is processed.
    cache_written: u64,
    /// The stored value (dataflow verification).
    value: u64,
}

/// Per-instruction timing record (for tests and debugging).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstTiming {
    /// Program-order sequence number.
    pub seq: u64,
    /// Slice that fetched/executed the instruction.
    pub slice: usize,
    /// Fetch-group cycle.
    pub fetch: u64,
    /// Dispatch (post-rename) cycle.
    pub dispatch: u64,
    /// Issue cycle.
    pub issue: u64,
    /// Execution-complete cycle.
    pub exec_done: u64,
    /// Commit cycle.
    pub commit: u64,
}

/// One hardware thread executing on one VCore.
///
/// Use [`crate::Simulator`] for the single-threaded convenience wrapper; the
/// engine form exists so several VCores can share a [`MemorySystem`] (the
/// paper's multi-VCore VMs, §3.5/§5.3).
#[derive(Debug)]
pub struct VCoreEngine {
    cfg: SimConfig,
    kind: EngineKind,
    vcore_id: usize,
    slices: Vec<SliceState>,
    coords: Vec<Coord>,
    operand_net: QueuedNetwork,
    reg: [RegVersion; NUM_ARCH_REGS],
    freelist: FifoSlots,
    store_map: HashMap<u64, StoreRec, StoreHashBuilder>,
    /// Earliest cycle the next fetch group may issue.
    fetch_ready: u64,
    prev_group_time: u64,
    prev_commit: u64,
    /// Commits already performed in `prev_commit`'s cycle.
    commits_in_cycle: u32,
    seq: u64,
    result: SimResult,
    /// Timing log (only populated when detail recording is on).
    record: Option<Vec<InstTiming>>,
    /// Cycle-attribution state (only with [`Self::enable_profiling`]).
    #[cfg(feature = "profile")]
    profile: Option<ProfileState>,
    /// Dataflow verification state (only with [`Self::enable_verification`]).
    verify: Option<VerifyState>,
    /// Global History Register (gshare mode): the up-to-date history…
    ghr: u64,
    /// …and the histories still in flight across the interconnect — on an
    /// `n`-Slice VCore a Slice predicts with a history `n-1` branches
    /// stale (§3.1: the GHR is "composed across Slices … with appropriate
    /// delay").
    ghr_in_flight: VecDeque<u64>,
}

/// Cycle-attribution accounting (see [`crate::profile`]): the buckets
/// charged so far plus, per Slice, the commit frontier below which every
/// cycle has already been attributed.
#[cfg(feature = "profile")]
#[derive(Debug, Default)]
struct ProfileState {
    per_slice: Vec<crate::profile::SliceCycles>,
    frontier: Vec<u64>,
}

/// State for dataflow verification: the engine computes the architectural
/// value of every instruction through its *own* rename and
/// store-forwarding bookkeeping, and the committed destination-value
/// stream is compared against the reference [`sharing_isa::Interpreter`].
/// A divergence means the pipeline model broke program semantics — a wrong
/// forwarding source, a stale register version, a lost store.
#[derive(Debug, Default)]
struct VerifyState {
    /// Memory values as of the youngest processed store per address.
    mem_values: HashMap<u64, u64>,
    /// Destination values in commit order.
    committed: Vec<u64>,
}

impl VerifyState {
    fn mem(&self, addr: u64) -> u64 {
        self.mem_values
            .get(&addr)
            .copied()
            .unwrap_or_else(|| sharing_isa::interp::mix(0xDEAD_BEEF, addr, 0))
    }
}

impl VCoreEngine {
    /// Creates an engine for `vcore_id` with the given configuration,
    /// using the default (event-driven) scheduling.
    #[must_use]
    pub fn new(cfg: SimConfig, vcore_id: usize) -> Self {
        Self::new_with_kind(cfg, vcore_id, EngineKind::default())
    }

    /// Creates an engine with an explicit [`EngineKind`]. Legacy and
    /// event-driven engines produce byte-identical results; legacy
    /// exists as the oracle for the differential suite.
    #[must_use]
    pub fn new_with_kind(cfg: SimConfig, vcore_id: usize, kind: EngineKind) -> Self {
        let n = cfg.slices();
        // Capacities are nominal; the modeled hierarchy is co-scaled down
        // with the workloads (see `sharing_isa::CAPACITY_SCALE`) so the
        // L1 : L2 : working-set ratios match the paper's.
        let scale = sharing_isa::CAPACITY_SCALE;
        let l1d_geom = CacheGeometry::new(cfg.mem.l1d_bytes / scale, 64, cfg.mem.l1d_ways)
            .expect("L1D geometry valid");
        // The paper reduces the I-cache line to two instructions (8 bytes).
        let l1i_geom = CacheGeometry::new(cfg.mem.l1i_bytes / scale, 8, cfg.mem.l1i_ways)
            .expect("L1I geometry valid");
        let spacing: u16 = if cfg.knobs.contiguous_slices { 1 } else { 2 };
        let mesh = Mesh::new(16, 2);
        let coords: Vec<Coord> = (0..n).map(|k| Coord::new(k as u16 * spacing, 0)).collect();
        let slices = (0..n)
            .map(|_| SliceState {
                predictor: BranchPredictor::new(cfg.slice.predictor_entries, cfg.slice.btb_entries),
                l1i: SetAssocCache::new(l1i_geom),
                l1i_expected: u64::MAX,
                l1d: SetAssocCache::new(l1d_geom),
                mshr: MshrFile::new(cfg.slice.max_inflight_loads),
                alu: FuCalendar::default(),
                lsu: FuCalendar::default(),
                alu_window: Pool::new(cfg.slice.issue_window, kind),
                ls_window: Pool::new(cfg.slice.ls_window, kind),
                rob: FifoSlots::new(cfg.slice.rob_entries),
                lrf: FifoSlots::new(cfg.slice.local_regs),
                lsq_bank: Pool::new(cfg.slice.lsq_entries, kind),
                store_buffer: Pool::new(cfg.slice.store_buffer, kind),
                store_barrier: 0,
                local_copy: [(u64::MAX, 0); NUM_ARCH_REGS],
            })
            .collect();
        // "The free-list of global logical registers is distributed across
        // Slices in a VCore" (§3.2.1): capacity scales with Slice count
        // while the namespace is sized for the largest configuration.
        let freelist = FifoSlots::new((cfg.slice.global_regs - NUM_ARCH_REGS) * n);
        VCoreEngine {
            operand_net: match kind {
                EngineKind::EventDriven | EngineKind::Sharded => {
                    QueuedNetwork::new(mesh, cfg.knobs.operand_latency, cfg.knobs.operand_planes)
                }
                EngineKind::Legacy => QueuedNetwork::new_polled(
                    mesh,
                    cfg.knobs.operand_latency,
                    cfg.knobs.operand_planes,
                ),
            },
            kind,
            cfg,
            vcore_id,
            slices,
            coords,
            reg: [RegVersion::default(); NUM_ARCH_REGS],
            freelist,
            store_map: HashMap::default(),
            fetch_ready: 0,
            prev_group_time: 0,
            prev_commit: 0,
            commits_in_cycle: 0,
            seq: 0,
            result: SimResult::default(),
            record: None,
            #[cfg(feature = "profile")]
            profile: None,
            verify: None,
            ghr: 0,
            ghr_in_flight: VecDeque::new(),
        }
    }

    /// Enables per-instruction timing recording (tests/debugging).
    pub fn enable_recording(&mut self) {
        self.record = Some(Vec::new());
    }

    /// Enables dataflow verification: the engine computes architectural
    /// values through its own rename/forwarding bookkeeping; read the
    /// committed stream with [`Self::committed_values`].
    pub fn enable_verification(&mut self) {
        self.verify = Some(VerifyState::default());
    }

    /// Arms the cycle-attribution profiler (see [`crate::profile`]).
    /// Pure observation: arming it cannot change any timing result.
    #[cfg(feature = "profile")]
    pub fn enable_profiling(&mut self) {
        let n = self.cfg.slices();
        self.profile = Some(ProfileState {
            per_slice: vec![crate::profile::SliceCycles::default(); n],
            frontier: vec![0; n],
        });
    }

    /// The cycle attribution so far, if profiling is enabled. Each
    /// Slice's idle bucket is topped up to the current cycle count, so
    /// the conservation law (buckets sum to [`Self::cycles`]) holds at
    /// any point, not just at the end of the run.
    #[cfg(feature = "profile")]
    #[must_use]
    pub fn cycle_profile(&self) -> Option<crate::profile::CycleProfile> {
        let p = self.profile.as_ref()?;
        let total = self.prev_commit;
        let mut per_slice = p.per_slice.clone();
        for (sc, &frontier) in per_slice.iter_mut().zip(&p.frontier) {
            sc.idle += total - frontier;
        }
        Some(crate::profile::CycleProfile {
            cycles: total,
            per_slice,
        })
    }

    /// The committed destination-value stream (one entry per
    /// register-writing instruction), if verification is enabled. Compare
    /// against [`sharing_isa::Interpreter::run`] on the same trace.
    #[must_use]
    pub fn committed_values(&self) -> Option<&[u64]> {
        self.verify.as_ref().map(|v| v.committed.as_slice())
    }

    /// The recorded timings so far, if recording is enabled.
    #[must_use]
    pub fn timings(&self) -> Option<&[InstTiming]> {
        self.record.as_deref()
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Which scheduling implementation this engine uses.
    #[must_use]
    pub fn engine_kind(&self) -> EngineKind {
        self.kind
    }

    /// Cycles elapsed so far (the last commit).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.prev_commit
    }

    /// Which Slice fetches the pair containing `pc` (PC interleaving,
    /// §3.1).
    #[must_use]
    pub fn slice_of_pc(&self, pc: u64) -> usize {
        ((pc >> 3) % self.cfg.slices() as u64) as usize
    }

    /// Which Slice's LSQ bank / L1D homes `line` (address interleaving,
    /// §3.5/§3.6).
    #[must_use]
    pub fn home_of_line(&self, line: u64) -> usize {
        (line % self.cfg.slices() as u64) as usize
    }

    /// The home Slice's bank-local line number (interleave bits stripped so
    /// the L1D's sets are fully used).
    fn local_line(&self, line: u64) -> u64 {
        line / self.cfg.slices() as u64
    }

    /// Invalidates a line in this VCore's (home Slice's) L1D — coherence
    /// traffic from another VCore.
    pub fn invalidate_line(&mut self, line: u64) {
        let home = self.home_of_line(line);
        let local = self.local_line(line);
        if self.slices[home].l1d.invalidate(local) {
            // Dirty data returns to the L2; latency is charged to the
            // requester by the directory model.
        }
        self.result.mem.coherence_invalidations += 1;
    }

    fn operand_hops_latency(&mut self, from: usize, to: usize, at: u64) -> u64 {
        self.operand_net
            .send(self.coords[from], self.coords[to], at)
    }

    /// Rename pipeline depth for an instruction on `slice`: local rename
    /// plus, for multi-Slice VCores, the master round trip (§3.2.1). The
    /// master Slice sits in the middle of the VCore.
    fn rename_latency(&self, slice: usize) -> u64 {
        let n = self.cfg.slices();
        if n == 1 {
            return 1;
        }
        let master = n / 2;
        let hops = (slice as i64 - master as i64).unsigned_abs() as u32
            * if self.cfg.knobs.contiguous_slices {
                1
            } else {
                2
            };
        let lat = self.cfg.knobs.operand_latency;
        // Local rename, one network leg to/from the master (the send and
        // the broadcast overlap in the pipelined implementation), and the
        // correction stage (§3.2.1, Figure 6b).
        1 + u64::from(lat.latency(hops)) + 1
    }

    /// Pre-commit broadcast latency (§3.7): the distributed ROBs must agree
    /// before true commit; cost is the farthest-Slice operand latency.
    fn precommit_latency(&self) -> u64 {
        let n = self.cfg.slices();
        if n == 1 {
            return 0;
        }
        let hops = (n as u32 - 1)
            * if self.cfg.knobs.contiguous_slices {
                1
            } else {
                2
            };
        u64::from(self.cfg.knobs.operand_latency.latency(hops))
    }

    /// Simple network latency formula for the LS-sort and data-return
    /// trips (ideal transport; messages counted).
    fn ls_latency(&self, from: usize, to: usize) -> u64 {
        let hops = (from as i64 - to as i64).unsigned_abs() as u32
            * if self.cfg.knobs.contiguous_slices {
                1
            } else {
                2
            };
        u64::from(self.cfg.knobs.operand_latency.latency(hops))
    }

    /// Runs a batch of committed-path instructions against the given
    /// memory system. Can be called repeatedly with successive chunks of
    /// the same trace.
    pub fn run_chunk(&mut self, mem: &mut MemorySystem, insts: &[DynInst]) {
        let mut idx = 0usize;
        while idx < insts.len() {
            let group_end = self.find_group_end(insts, idx);
            let group_time = self.fetch_group(insts, idx, group_end);
            for inst in &insts[idx..group_end] {
                self.process_inst(mem, inst, group_time);
            }
            idx = group_end;
        }
    }

    /// Where the current fetch group ends: at most `2n` contiguous
    /// instructions, broken early by taken control flow (fetch redirects).
    fn find_group_end(&self, insts: &[DynInst], start: usize) -> usize {
        let cap = 2 * self.cfg.slices();
        let mut end = start;
        while end < insts.len() && end - start < cap {
            let inst = &insts[end];
            end += 1;
            let taken = match inst.kind {
                InstKind::Branch { taken, .. } => taken,
                InstKind::Jump { .. } | InstKind::JumpIndirect { .. } => true,
                _ => false,
            };
            if taken {
                break;
            }
        }
        end
    }

    /// Computes the group's fetch cycle, charging I-cache misses.
    fn fetch_group(&mut self, insts: &[DynInst], start: usize, end: usize) -> u64 {
        let mut t = (self.prev_group_time + 1).max(self.fetch_ready);
        let mut icache_stall = 0u64;
        let mut seen_pairs: [u64; 2 * crate::config::MAX_SLICES] = [u64::MAX; 16];
        let mut seen = 0usize;
        for inst in &insts[start..end] {
            let pair = inst.pc >> 3;
            if seen_pairs[..seen].contains(&pair) {
                continue;
            }
            if seen < seen_pairs.len() {
                seen_pairs[seen] = pair;
                seen += 1;
            }
            let s = self.slice_of_pc(inst.pc);
            let n = self.cfg.slices() as u64;
            // This Slice sees every n-th pair; strip the interleave bits.
            let local_pair = pair / n;
            let slice = &mut self.slices[s];
            let out = slice.l1i.access(local_pair, false);
            if !out.hit {
                // Next-line prefetch: a sequential miss (this Slice's next
                // expected pair) is covered by the prefetcher.
                if local_pair != slice.l1i_expected {
                    icache_stall = icache_stall.max(u64::from(self.cfg.mem.l1i_miss));
                }
            }
            slice.l1i_expected = local_pair + 1;
        }
        if icache_stall > 0 {
            self.result.stalls.icache += icache_stall;
            t += icache_stall;
        }
        self.prev_group_time = t;
        t
    }

    /// When the value of `reg` (as visible in program order) is usable by
    /// an instruction dispatching at `dispatch` on `slice`.
    fn source_ready(&mut self, reg: ArchReg, slice: usize, dispatch: u64) -> u64 {
        let v = self.reg[reg.index()];
        if v.seq == 0 {
            return 0; // initial architectural state, everywhere
        }
        if v.slice == slice {
            return v.exec_done;
        }
        // Remote operand. Already copied into this Slice's LRF?
        let (copy_seq, copy_ready) = self.slices[slice].local_copy[reg.index()];
        if copy_seq == v.seq {
            self.result.lrf_copy_hits += 1;
            return copy_ready;
        }
        // Remote operand over the Scalar Operand Network (§3.2.2). If the
        // producer is still pending, the request is enqueued on its wait
        // list (the rename broadcast already carried the mapping) and the
        // reply is *pushed* the moment the value is generated — one SON
        // message. If the value already sits in the remote LRF, an explicit
        // request message must travel there first — two SON messages.
        self.result.remote_operand_requests += 1;
        let reply_arrive = if v.exec_done > dispatch {
            self.operand_hops_latency(v.slice, slice, v.exec_done)
        } else {
            let req_arrive = self.operand_hops_latency(slice, v.slice, dispatch);
            let serve = req_arrive.max(v.exec_done);
            self.operand_hops_latency(v.slice, slice, serve)
        };
        let ready = if self.cfg.knobs.remote_wakeup_headstart {
            reply_arrive
        } else {
            reply_arrive + 1
        };
        self.slices[slice].local_copy[reg.index()] = (v.seq, ready);
        ready
    }

    /// Acquires a dispatch-side structural resource, charging the stall and
    /// back-pressuring fetch when it is not immediately available.
    fn acquire_with_backpressure(
        &mut self,
        want: u64,
        avail: u64,
        counter: fn(&mut StallBreakdown) -> &mut u64,
    ) -> u64 {
        if avail > want {
            *counter(&mut self.result.stalls) += avail - want;
            self.fetch_ready = self.fetch_ready.max(avail);
        }
        avail
    }

    #[allow(clippy::too_many_lines)]
    fn process_inst(&mut self, mem: &mut MemorySystem, inst: &DynInst, group_time: u64) {
        self.seq += 1;
        let seq = self.seq;
        let n = self.cfg.slices();
        let s = self.slice_of_pc(inst.pc);
        let fetch = group_time;
        // Architectural source values, read before the destination updates
        // (an instruction may read and write the same register).
        let sv0 = inst.srcs[0].map_or(0, |r| self.reg[r.index()].value);
        let sv1 = inst.srcs[1].map_or(0, |r| self.reg[r.index()].value);
        // Dispatch-stall watermark for the profiler's backpressure bucket
        // (three adds; kept unconditional so `profile_commit` below can be
        // the only profiling branch on the path).
        let stall_mark = {
            let st = &self.result.stalls;
            st.rob_full + st.freelist_empty + st.window_full
        };

        // ---- Dispatch (decode + two-stage rename) ----
        let mut dispatch =
            fetch + u64::from(self.cfg.knobs.frontend_depth) + self.rename_latency(s);
        if n > 1 {
            self.result.rename_broadcasts += 1;
        }
        // ROB entry (partitioned, per Slice).
        let avail = self.slices[s].rob.available_at(dispatch);
        dispatch = self.acquire_with_backpressure(dispatch, avail, |st| &mut st.rob_full);
        // Global logical register free list (only dst-writing instructions).
        if inst.dst.is_some() {
            let avail = self.freelist.available_at(dispatch);
            dispatch = self.acquire_with_backpressure(dispatch, avail, |st| &mut st.freelist_empty);
            // LRF entry on the executing Slice.
            let avail = self.slices[s].lrf.available_at(dispatch);
            dispatch = self.acquire_with_backpressure(dispatch, avail, |st| &mut st.rob_full);
        }
        // Issue-window entry (ALU vs LS).
        let is_mem = inst.is_mem();
        let avail = if is_mem {
            self.slices[s].ls_window.available_at(dispatch)
        } else {
            self.slices[s].alu_window.available_at(dispatch)
        };
        dispatch = self.acquire_with_backpressure(dispatch, avail, |st| &mut st.window_full);
        let dispatch_stall = {
            let st = &self.result.stalls;
            st.rob_full + st.freelist_empty + st.window_full - stall_mark
        };

        // ---- Operand readiness ----
        let mut ready = dispatch + 1;
        for src in inst.src_iter() {
            ready = ready.max(self.source_ready(src, s, dispatch));
        }

        // ---- Issue & execute ----
        let mut dst_value = sharing_isa::interp::mix(inst.pc, sv0, sv1);
        // Beyond-L2 memory cycles on this instruction's own miss path
        // (loads only) — the profiler's DRAM bucket.
        let mut mem_stall = 0u64;
        let (issue, exec_done) = match inst.kind {
            InstKind::Load { addr, .. } => {
                let (issue, exec_done, forwarded, load_mem_stall) =
                    self.do_load(mem, inst, seq, s, dispatch, ready, addr);
                mem_stall = load_mem_stall;
                if let Some(v) = &self.verify {
                    // The load observes either the forwarded store's value
                    // or the memory image — which must agree with program
                    // order, or the pipeline broke semantics.
                    let mem_content = forwarded.unwrap_or_else(|| v.mem(addr));
                    dst_value = sharing_isa::interp::mix(inst.pc, mem_content, sv0);
                }
                (issue, exec_done)
            }
            InstKind::Store { addr, .. } => {
                // Stores issue when address+data operands are ready; they
                // execute (AGU + LSQ insert) and wait for commit.
                let issue = self.slices[s].lsu.issue_at(ready, 1);
                let addr_known = issue + 1;
                let home = self.home_of_line(addr >> 6);
                let data_at_home = addr_known + self.ls_latency(s, home);
                self.result.ls_sort_messages += 1;
                // LSQ entry at home bank from arrival until commit-drain
                // (release time set below, once commit is known).
                let lsq_at = self.slices[home].lsq_bank.available_at(data_at_home);
                if lsq_at > data_at_home {
                    self.result.stalls.lsq_full += lsq_at - data_at_home;
                }
                self.slices[home].store_barrier = self.slices[home].store_barrier.max(addr_known);
                let store_value = sharing_isa::interp::mix(inst.pc, sv0, sv1);
                self.store_map.insert(
                    addr,
                    StoreRec {
                        seq,
                        addr_known,
                        data_at_home: lsq_at,
                        cache_written: u64::MAX,
                        value: store_value,
                    },
                );
                if let Some(v) = &mut self.verify {
                    v.mem_values.insert(addr, store_value);
                }
                (issue, addr_known)
            }
            InstKind::Branch { taken, target: _ } => {
                let issue = self.slices[s].alu.issue_at(ready, 1);
                let exec_done = issue + 1;
                let correct = match self.cfg.knobs.predictor {
                    PredictorKind::Bimodal => {
                        self.slices[s].predictor.predict_and_train(inst.pc, taken)
                    }
                    PredictorKind::Gshare { history_bits } => {
                        let mask = (1u64 << history_bits.min(63)) - 1;
                        let compose_delay = n - 1;
                        // The history visible to this Slice lags by the
                        // branches still in flight on the compose network
                        // (none on a single-Slice VCore).
                        let visible = self.ghr_in_flight.front().copied().unwrap_or(self.ghr);
                        let c = self.slices[s].predictor.predict_and_train_gshare(
                            inst.pc,
                            visible & mask,
                            taken,
                        );
                        self.ghr = ((self.ghr << 1) | u64::from(taken)) & mask;
                        self.ghr_in_flight.push_back(self.ghr);
                        while self.ghr_in_flight.len() > compose_delay {
                            self.ghr_in_flight.pop_front();
                        }
                        c
                    }
                };
                let btb_ok = if taken {
                    self.slices[s].predictor.btb_lookup_install(inst.pc)
                } else {
                    true
                };
                if !correct {
                    let redirect = exec_done + u64::from(self.cfg.knobs.mispredict_penalty);
                    if redirect > self.fetch_ready {
                        self.result.stalls.mispredict += redirect - self.fetch_ready;
                        self.fetch_ready = redirect;
                    }
                } else if !btb_ok {
                    // Direction right but target unknown at fetch: short
                    // bubble until decode produces the target.
                    self.fetch_ready = self.fetch_ready.max(group_time + 2);
                }
                (issue, exec_done)
            }
            InstKind::Jump { .. } | InstKind::JumpIndirect { .. } => {
                let issue = self.slices[s].alu.issue_at(ready, 1);
                let exec_done = issue + 1;
                if !self.slices[s].predictor.btb_lookup_install(inst.pc) {
                    let bubble = if matches!(inst.kind, InstKind::JumpIndirect { .. }) {
                        // Indirect targets resolve at execute.
                        exec_done + u64::from(self.cfg.knobs.mispredict_penalty)
                    } else {
                        group_time + 2
                    };
                    self.fetch_ready = self.fetch_ready.max(bubble);
                }
                (issue, exec_done)
            }
            _ => {
                // ALU-class.
                let occupancy = match inst.kind {
                    InstKind::IntDiv => 4, // unpipelined-ish divider
                    _ => 1,
                };
                let issue = self.slices[s].alu.issue_at(ready, occupancy);
                (issue, issue + u64::from(inst.kind.exec_latency()))
            }
        };

        // Window entry held from dispatch to issue.
        if is_mem {
            self.slices[s].ls_window.occupy(dispatch, issue);
        } else {
            self.slices[s].alu_window.occupy(dispatch, issue);
        }

        // ---- Commit (in order, pre-commit broadcast, bounded width) ----
        let commit_ready = exec_done + self.precommit_latency();
        let mut commit = commit_ready.max(self.prev_commit);
        let width = 2 * n as u32;
        if commit == self.prev_commit {
            if self.commits_in_cycle >= width {
                commit += 1;
                self.commits_in_cycle = 1;
            } else {
                self.commits_in_cycle += 1;
            }
        } else {
            self.commits_in_cycle = 1;
        }
        self.prev_commit = commit;

        // Release dispatch-side resources at commit.
        self.slices[s].rob.occupy(dispatch, commit);
        if inst.dst.is_some() {
            self.freelist.occupy(dispatch, commit);
            self.slices[s].lrf.occupy(dispatch, commit);
        }

        // Store commit: drain through the home store buffer into the L1D.
        if let InstKind::Store { addr, .. } = inst.kind {
            let line = addr >> 6;
            let home = self.home_of_line(line);
            let sb_at = self.slices[home].store_buffer.available_at(commit);
            if sb_at > commit {
                self.result.stalls.store_buffer_full += sb_at - commit;
            }
            let local = self.local_line(line);
            let out = self.slices[home].l1d.access(local, true);
            let mut lat = u64::from(self.cfg.mem.l1_hit);
            if !out.hit {
                // The fill proceeds in the background via the MSHRs; the
                // store-buffer slot only pays a short miss hand-off, not
                // the full memory latency.
                let (_, ci, cf) = mem.beyond_l1(self.vcore_id, line, true, sb_at);
                lat += 2;
                self.result.mem.coherence_invalidations += ci;
                self.result.mem.coherence_forwards += cf;
            }
            let done = sb_at + lat;
            self.slices[home].store_buffer.occupy(sb_at, done);
            self.slices[home].lsq_bank.occupy(sb_at.max(commit), done);
            if let Some(rec) = self.store_map.get_mut(&addr) {
                if rec.seq == seq {
                    rec.cache_written = done;
                }
            }
        }

        // Update register version map.
        if let Some(dst) = inst.dst {
            self.reg[dst.index()] = RegVersion {
                seq,
                slice: s,
                exec_done,
                value: dst_value,
            };
            if let Some(v) = &mut self.verify {
                v.committed.push(dst_value);
            }
        }

        self.result.instructions += 1;
        if let Some(rec) = &mut self.record {
            rec.push(InstTiming {
                seq,
                slice: s,
                fetch,
                dispatch,
                issue,
                exec_done,
                commit,
            });
        }
        self.profile_commit(
            s,
            fetch,
            dispatch,
            issue,
            exec_done,
            commit,
            mem_stall,
            dispatch_stall,
        );

        // Keep the store map bounded: drop entries long since drained.
        if self.store_map.len() > 8192 {
            let horizon = self.prev_commit;
            self.store_map
                .retain(|_, r| r.cache_written == u64::MAX || r.cache_written + 1024 > horizon);
        }
    }

    /// Attributes the commit-to-commit gap this instruction owns on its
    /// Slice to the profiler's buckets (see [`crate::profile`]): commit
    /// times are globally monotone, so `commit − frontier[s]` is exactly
    /// the not-yet-accounted stretch of Slice `s`'s timeline. It is
    /// charged backward through the instruction's own intervals, each
    /// charge capped by what is still unattributed, so overlapped
    /// latencies can never over-count and the buckets always partition
    /// the timeline. Reads timestamps only — never feeds back into
    /// timing.
    #[cfg(feature = "profile")]
    #[allow(clippy::too_many_arguments)]
    fn profile_commit(
        &mut self,
        s: usize,
        fetch: u64,
        dispatch: u64,
        issue: u64,
        exec_done: u64,
        commit: u64,
        mem_stall: u64,
        dispatch_stall: u64,
    ) {
        let Some(p) = &mut self.profile else { return };
        let gap = commit - p.frontier[s];
        p.frontier[s] = commit;
        let sc = &mut p.per_slice[s];
        let mut remaining = gap;
        let mut charge = |slot: &mut u64, amount: u64| {
            let take = amount.min(remaining);
            *slot += take;
            remaining -= take;
        };
        charge(&mut sc.dram_stall, mem_stall);
        charge(
            &mut sc.fu_busy,
            (exec_done - issue).saturating_sub(mem_stall),
        );
        charge(&mut sc.issue, issue - dispatch);
        charge(&mut sc.rob_full, dispatch_stall);
        charge(&mut sc.fetch, dispatch - fetch);
        sc.idle += remaining;
    }

    /// No-op twin of the profiling hook so the call site needs no cfg.
    #[cfg(not(feature = "profile"))]
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn profile_commit(
        &mut self,
        _s: usize,
        _fetch: u64,
        _dispatch: u64,
        _issue: u64,
        _exec_done: u64,
        _commit: u64,
        _mem_stall: u64,
        _dispatch_stall: u64,
    ) {
    }

    /// Load timing: AGU → sort to home bank → speculative access with
    /// forwarding/violation → data return (§3.5/§3.6). The final element
    /// of the return is the beyond-L2 memory time on this load's own
    /// miss path (zero on hits and forwards), for the profiler.
    #[allow(clippy::too_many_arguments)]
    fn do_load(
        &mut self,
        mem: &mut MemorySystem,
        _inst: &DynInst,
        seq: u64,
        s: usize,
        _dispatch: u64,
        ready: u64,
        addr: u64,
    ) -> (u64, u64, Option<u64>, u64) {
        let mut mem_stall = 0u64;
        let issue = self.slices[s].lsu.issue_at(ready, 1);
        let addr_ready = issue + 1;
        let line = addr >> 6;
        let home = self.home_of_line(line);
        let mut t = addr_ready + self.ls_latency(s, home);
        self.result.ls_sort_messages += 1;

        // LSQ bank entry.
        let lsq_at = self.slices[home].lsq_bank.available_at(t);
        if lsq_at > t {
            self.result.stalls.lsq_full += lsq_at - t;
        }
        t = lsq_at;

        if !self.cfg.knobs.unordered_lsq {
            // Ordered baseline: wait for all older stores in this bank to
            // resolve their addresses.
            t = t.max(self.slices[home].store_barrier);
        }

        // Forwarding / violation against the youngest older store to the
        // same address.
        let mut data_at_home: Option<u64> = None;
        let mut forwarded: Option<u64> = None;
        if let Some(st) = self.store_map.get(&addr).copied() {
            if st.seq < seq && st.cache_written > t {
                if st.addr_known <= t {
                    // Store-to-load forwarding inside the LSQ/store buffer.
                    data_at_home = Some(t.max(st.data_at_home) + 1);
                    forwarded = Some(st.value);
                    self.result.mem.store_forwards += 1;
                } else if self.cfg.knobs.unordered_lsq {
                    // The load would have executed speculatively before the
                    // store's address was known: ordering violation, replay
                    // (§3.6). Younger work is flushed.
                    self.result.mem.lsq_violations += 1;
                    let replay = st.addr_known.max(st.data_at_home)
                        + u64::from(self.cfg.knobs.violation_penalty);
                    data_at_home = Some(replay + 1);
                    forwarded = Some(st.value);
                    let refetch = replay + u64::from(self.cfg.knobs.mispredict_penalty);
                    self.fetch_ready = self.fetch_ready.max(refetch);
                } else {
                    // Ordered mode already waited for addr_known via the
                    // barrier, so this arm is unreachable in practice.
                    data_at_home = Some(st.addr_known.max(st.data_at_home) + 1);
                    forwarded = Some(st.value);
                }
            }
        }

        let data_at_home = match data_at_home {
            Some(d) => d,
            None => {
                // Cache path at the home Slice.
                let local = self.local_line(line);
                let out = self.slices[home].l1d.access(local, false);
                if out.hit {
                    t + u64::from(self.cfg.mem.l1_hit)
                } else {
                    // Non-blocking miss through the MSHRs.
                    let (extra, ci, cf) = mem.beyond_l1(self.vcore_id, line, false, t);
                    mem_stall = u64::from(extra);
                    self.result.mem.coherence_invalidations += ci;
                    self.result.mem.coherence_forwards += cf;
                    let fill = t + u64::from(self.cfg.mem.l1_hit) + u64::from(extra);
                    match self.slices[home].mshr.request(line, t, fill) {
                        MshrOutcome::Allocated(done) | MshrOutcome::Merged(done) => done,
                        MshrOutcome::Full => {
                            let retry = self.slices[home].mshr.earliest_free().unwrap_or(t).max(t);
                            self.result.stalls.mshr_full += retry - t;
                            let fill = retry + u64::from(self.cfg.mem.l1_hit) + u64::from(extra);
                            match self.slices[home].mshr.request(line, retry, fill) {
                                MshrOutcome::Allocated(done) | MshrOutcome::Merged(done) => done,
                                MshrOutcome::Full => fill,
                            }
                        }
                    }
                }
            }
        };

        // Data returns to the issuing Slice over the network.
        let exec_done = data_at_home + self.ls_latency(home, s);
        self.slices[home].lsq_bank.occupy(t, exec_done);
        (issue, exec_done, forwarded, mem_stall)
    }

    /// Finalizes and returns the result, aggregating per-Slice counters.
    #[must_use]
    pub fn finish(mut self, workload: &str) -> SimResult {
        self.result.workload = workload.to_string();
        self.result.shape = Some(self.cfg.shape());
        self.result.cycles = self.prev_commit;
        for s in &self.slices {
            self.result.per_slice.push(crate::stats::SliceStats {
                predictor: s.predictor.stats(),
                l1d: s.l1d.stats(),
                l1i: s.l1i.stats(),
            });
            let p = s.predictor.stats();
            self.result.predictor.predictions += p.predictions;
            self.result.predictor.mispredictions += p.mispredictions;
            self.result.predictor.btb_misses += p.btb_misses;
            let d = s.l1d.stats();
            self.result.mem.l1d.accesses += d.accesses;
            self.result.mem.l1d.hits += d.hits;
            self.result.mem.l1d.writebacks += d.writebacks;
            self.result.mem.l1d.invalidations += d.invalidations;
            let i = s.l1i.stats();
            self.result.mem.l1i.accesses += i.accesses;
            self.result.mem.l1i.hits += i.hits;
        }
        self.result.operand_net = self.operand_net.stats();
        self.result
    }

    /// Copies L2/memory counters from a memory system into a result (the
    /// caller decides attribution for shared systems).
    pub fn absorb_mem_stats(result: &mut SimResult, mem: &MemorySystem) {
        result.mem.l2 = mem.l2.stats();
        result.mem.memory_accesses = mem.memory_accesses;
    }

    /// Resets transient pipeline state while keeping caches/predictors warm
    /// (used across reconfigurations).
    pub fn drain_pipeline(&mut self) {
        for s in &mut self.slices {
            s.mshr.clear();
            s.alu.clear();
            s.lsu.clear();
            s.alu_window.clear();
            s.ls_window.clear();
        }
    }

    /// Advances the engine's notion of time (reconfiguration stalls).
    pub fn add_stall_cycles(&mut self, cycles: u64) {
        self.fetch_ready = self.fetch_ready.max(self.prev_commit) + cycles;
        self.prev_commit += cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharing_isa::MemSize;

    #[test]
    fn fu_calendar_allows_out_of_order_claims() {
        let mut fu = FuCalendar::default();
        // An older instruction claims a late cycle…
        assert_eq!(fu.issue_at(100, 1), 100);
        // …and a younger, early-ready one still gets an earlier cycle.
        assert_eq!(fu.issue_at(5, 1), 5);
        // Conflicts walk forward.
        assert_eq!(fu.issue_at(5, 1), 6);
        assert_eq!(fu.issue_at(99, 1), 99);
        assert_eq!(fu.issue_at(99, 1), 101, "100 is taken");
    }

    #[test]
    fn fu_calendar_multi_cycle_occupancy_is_contiguous() {
        let mut fu = FuCalendar::default();
        assert_eq!(fu.issue_at(10, 4), 10); // 10..14 busy
        assert_eq!(fu.issue_at(11, 4), 14); // next free run of 4
        assert_eq!(fu.issue_at(0, 4), 0);
    }

    #[test]
    fn slots_capacity_and_availability() {
        let mut s = Slots::new(2);
        assert_eq!(s.available_at(5), 5);
        s.occupy(5, 50);
        s.occupy(5, 60);
        // Both busy: next availability is the earliest release.
        assert_eq!(s.available_at(5), 50);
        s.occupy(50, 70); // replaces the slot that freed at 50
        assert_eq!(s.available_at(0), 60);
    }

    #[test]
    fn fu_calendar_matches_btreeset_reference() {
        // The bitmap calendar must be observably identical to the exact
        // set-of-busy-cycles model it replaced, prune rule included.
        use std::collections::BTreeSet;
        struct Reference {
            busy: BTreeSet<u64>,
        }
        impl Reference {
            fn issue_at(&mut self, ready: u64, occupancy: u64) -> u64 {
                let mut c = ready;
                'search: loop {
                    for k in 0..occupancy {
                        if self.busy.contains(&(c + k)) {
                            c = c + k + 1;
                            continue 'search;
                        }
                    }
                    for k in 0..occupancy {
                        self.busy.insert(c + k);
                    }
                    break;
                }
                if self.busy.len() > 8192 {
                    let cutoff = c.saturating_sub(4096);
                    self.busy = self.busy.split_off(&cutoff);
                }
                c
            }
        }
        let mut fu = FuCalendar::default();
        let mut reference = Reference {
            busy: BTreeSet::new(),
        };
        // A deterministic pseudo-random stream of (ready, occupancy)
        // claims, wide enough to drive both through several prunes.
        let mut x = 0x2014_u64;
        let mut frontier = 0u64;
        for i in 0..30_000u64 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            frontier += x >> 61; // advance 0..=7 cycles
            let ready = frontier.saturating_sub(x >> 56 & 0x3F); // jitter back
            let occupancy = if x & 0xF == 0 { 4 } else { 1 };
            assert_eq!(
                fu.issue_at(ready, occupancy),
                reference.issue_at(ready, occupancy),
                "claim {i} diverged"
            );
            assert_eq!(fu.count, reference.busy.len(), "claim {i} count diverged");
        }
        assert!(frontier > 100_000, "stream should outrun the prune window");
    }

    #[test]
    fn fifo_slots_match_slots_for_monotonic_releases() {
        // FifoSlots is only used for commit-released resources, where the
        // release times are nondecreasing; under that contract it must be
        // observably identical to the min-scan Slots.
        let mut ring = FifoSlots::new(7);
        let mut reference = Slots::new(7);
        let mut x = 0xA5_u64;
        let mut commit = 0u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let t = commit.saturating_sub(x >> 60);
            assert_eq!(ring.available_at(t), reference.available_at(t));
            commit += x >> 62; // nondecreasing, advances 0..=3
            ring.occupy(t, commit);
            reference.occupy(t, commit);
        }
    }

    #[test]
    fn memory_system_dram_channel_queues_fills() {
        let mut m = MemorySystem::private(0, 100); // no L2: every access fills
        let (a, _, _) = m.beyond_l1(0, 1, false, 0);
        let (b, _, _) = m.beyond_l1(0, 2, false, 0);
        let (c, _, _) = m.beyond_l1(0, 3, false, 0);
        assert_eq!(a, 100, "first fill sees raw memory latency");
        assert_eq!(b, 104, "second queues one service slot");
        assert_eq!(c, 108);
        assert_eq!(m.memory_accesses, 3);
    }

    #[test]
    fn memory_system_l2_hits_skip_dram() {
        let mut m = MemorySystem::private(2, 100);
        let (miss, _, _) = m.beyond_l1(0, 7, false, 0);
        let (hit, _, _) = m.beyond_l1(0, 7, false, 1000);
        assert!(miss > 100);
        assert!(hit < 20, "an L2 hit costs only the bank trip: {hit}");
        assert_eq!(m.memory_accesses, 1);
    }

    #[test]
    fn shared_memory_system_tracks_coherence() {
        let mut m = MemorySystem::shared(2, 100);
        let _ = m.beyond_l1(0, 7, true, 0); // VCore 0 owns the line
        let (_, invals, forwards) = m.beyond_l1(1, 7, true, 10);
        assert_eq!(invals, 1, "owner invalidated");
        assert_eq!(forwards, 1, "dirty line forwarded");
        assert_eq!(m.pending_invals, vec![(0, 7)]);
    }

    fn engine(slices: usize) -> VCoreEngine {
        VCoreEngine::new(SimConfig::with_shape(slices, 2).unwrap(), 0)
    }

    #[test]
    fn pc_interleaving_is_pairwise_round_robin() {
        let e = engine(4);
        // Pairs of 8 bytes rotate across slices.
        assert_eq!(e.slice_of_pc(0x00), 0);
        assert_eq!(e.slice_of_pc(0x04), 0);
        assert_eq!(e.slice_of_pc(0x08), 1);
        assert_eq!(e.slice_of_pc(0x10), 2);
        assert_eq!(e.slice_of_pc(0x18), 3);
        assert_eq!(e.slice_of_pc(0x20), 0);
    }

    #[test]
    fn line_interleaving_spreads_homes() {
        let e = engine(4);
        for line in 0..16u64 {
            assert_eq!(e.home_of_line(line), (line % 4) as usize);
        }
        assert_eq!(e.local_line(12), 3);
    }

    #[test]
    fn rename_depth_grows_with_distance_to_master() {
        let e = engine(8); // master at slice 4
        let at = |k: usize| e.rename_latency(k);
        assert_eq!(at(4), 1 + 1 + 1, "master-local rename");
        assert!(at(0) > at(3), "farther slices rename later");
        let single = engine(1);
        assert_eq!(single.rename_latency(0), 1);
    }

    #[test]
    fn precommit_broadcast_scales_with_vcore_width() {
        assert_eq!(engine(1).precommit_latency(), 0);
        let two = engine(2).precommit_latency();
        let eight = engine(8).precommit_latency();
        assert!(eight > two);
    }

    #[test]
    fn fetch_groups_break_at_taken_control_flow() {
        let e = engine(4);
        let r = sharing_isa::ArchReg::new(1);
        let insts = vec![
            DynInst::alu(0x00, r, &[]),
            DynInst::branch(0x04, r, false, 0x40), // not taken: no break
            DynInst::alu(0x08, r, &[]),
            DynInst::branch(0x0C, r, true, 0x40), // taken: group ends here
            DynInst::alu(0x40, r, &[]),
        ];
        assert_eq!(e.find_group_end(&insts, 0), 4);
        assert_eq!(e.find_group_end(&insts, 4), 5);
    }

    #[test]
    fn fetch_groups_cap_at_twice_the_slice_count() {
        let e = engine(2);
        let r = sharing_isa::ArchReg::new(1);
        let insts: Vec<DynInst> = (0..10).map(|i| DynInst::alu(4 * i, r, &[])).collect();
        assert_eq!(e.find_group_end(&insts, 0), 4, "2 slices fetch 4/cycle");
    }

    #[test]
    fn invalidate_line_counts_and_clears() {
        let mut e = engine(2);
        let mut mem = MemorySystem::private(2, 100);
        // Touch a line so some L1D holds it.
        let r = sharing_isa::ArchReg::new(1);
        let insts = vec![DynInst::load(0x0, r, None, 0x40, MemSize::B8)];
        e.run_chunk(&mut mem, &insts);
        e.invalidate_line(0x40 >> 6);
        let result = e.finish("t");
        assert_eq!(result.mem.coherence_invalidations, 1);
    }

    #[test]
    fn add_stall_cycles_advances_time() {
        let mut e = engine(1);
        let mut mem = MemorySystem::private(2, 100);
        e.run_chunk(&mut mem, &[DynInst::nop(0)]);
        let before = e.cycles();
        e.add_stall_cycles(500);
        assert_eq!(e.cycles(), before + 500);
    }

    #[test]
    fn store_load_forwarding_is_observed() {
        // A store immediately followed by a load of the same address must
        // forward (the store cannot have drained yet).
        let mut e = engine(1);
        let mut mem = MemorySystem::private(2, 100);
        let r = sharing_isa::ArchReg::new(1);
        let d = sharing_isa::ArchReg::new(2);
        let insts = vec![
            DynInst::alu(0x0, r, &[]),
            DynInst::store(0x4, r, None, 0x1000, MemSize::B8),
            DynInst::load(0x8, d, None, 0x1000, MemSize::B8),
        ];
        e.run_chunk(&mut mem, &insts);
        let result = e.finish("t");
        assert_eq!(result.mem.store_forwards, 1);
        assert_eq!(result.mem.lsq_violations, 0, "load is younger and later");
    }
}
