//! Event-driven scheduling primitives for the timing engine.
//!
//! SSim is trace-driven: the engine never literally ticks a global
//! clock, but its bounded structural resources used to be *polled* —
//! every instruction linearly scanned each pool of busy-until times
//! ([`crate::engine`]'s `Slots`) and the queued operand network walked
//! link calendars one cycle at a time. This module replaces that with
//! discrete-event bookkeeping: each resource keeps its wake-ups (the
//! `next_tick` at which a slot frees) in a min-heap, so dead cycles are
//! skipped and a claim costs `O(log n)` instead of `O(n)` — the
//! Component/`next_tick` model described in DESIGN.md §13.
//!
//! The hard bar is byte-identity: [`WakeHeap`] must be *observably
//! identical* to the scan it replaces. That holds because a pool's
//! slots are interchangeable — only the multiset of free-times is
//! observable. `available_at` returns the multiset minimum either way,
//! and `occupy` replaces one minimum instance with
//! `max(minimum, until)`; which physical slot holds the value cannot be
//! seen. The differential suite (`tests/event_equiv.rs` and the PR 5
//! style unit pins) enforces this bit-for-bit across every benchmark.

use std::hash::{BuildHasherDefault, Hasher};

/// Which engine implementation a run uses. All kinds produce
/// byte-identical [`crate::SimResult`]s; they differ only in how
/// resource wake-ups are found and how many host threads advance a VM.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Discrete-event scheduling: min-heap wake-ups for structural
    /// pools, bitmap calendars for FUs and network links. The default.
    #[default]
    EventDriven,
    /// The original polled implementation: linear scans over busy-until
    /// times and per-cycle `BTreeSet` walks on network links. Kept as
    /// the oracle for differential tests.
    Legacy,
    /// Event-driven internals plus intra-run worker threads inside a
    /// [`crate::VmSimulator`]: each VCore engine advances its chunk on a
    /// forked memory system between deterministic barriers, and the
    /// access streams are merged in VCore order (DESIGN.md §14). For a
    /// single-trace [`crate::Simulator`] run there is only one engine,
    /// so this is exactly `EventDriven`. Byte-identical to both other
    /// kinds for any worker count.
    Sharded,
}

impl EngineKind {
    /// Short name for logs and CLI flags.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::EventDriven => "event",
            EngineKind::Legacy => "legacy",
            EngineKind::Sharded => "sharded",
        }
    }

    /// Parses a CLI spelling.
    #[must_use]
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "event" | "event-driven" | "event_driven" => Some(EngineKind::EventDriven),
            "legacy" | "polled" => Some(EngineKind::Legacy),
            "sharded" | "threads" => Some(EngineKind::Sharded),
            _ => None,
        }
    }
}

/// A bounded structural resource as a min-heap of slot wake-up times.
///
/// The event-driven twin of the engine's `Slots`: a pool of `n`
/// interchangeable slots, each free again at its recorded time.
/// `available_at` peeks the earliest wake-up; `occupy` reschedules that
/// earliest slot to `max(its time, until)` and sifts it down. Starting
/// state (all zeros) is a valid heap, so `clear` is a fill.
#[derive(Clone, Debug)]
pub struct WakeHeap {
    /// Binary min-heap of per-slot free times.
    heap: Vec<u64>,
}

impl WakeHeap {
    /// A pool of `n` slots, all free at cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a resource pool needs at least one slot");
        WakeHeap { heap: vec![0; n] }
    }

    /// Earliest cycle at/after `t` a slot is available (the heap root).
    #[must_use]
    pub fn available_at(&self, t: u64) -> u64 {
        t.max(self.heap[0])
    }

    /// Occupies the earliest-free slot until `until`: replaces the root
    /// with `max(root, until)` and restores the heap. Mirrors the
    /// scanned pool's argmin-replace exactly (same multiset evolution).
    pub fn occupy(&mut self, _t: u64, until: u64) {
        self.heap[0] = self.heap[0].max(until);
        self.sift_down();
    }

    /// Frees every slot (pipeline drain).
    pub fn clear(&mut self) {
        self.heap.fill(0);
    }

    fn sift_down(&mut self) {
        let heap = &mut self.heap;
        let n = heap.len();
        let mut i = 0;
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let c = if r < n && heap[r] < heap[l] { r } else { l };
            if heap[c] >= heap[i] {
                break;
            }
            heap.swap(i, c);
            i = c;
        }
    }
}

/// `BuildHasher` for the engine's `u64`-keyed maps (store forwarding):
/// one `splitmix64` finalization instead of SipHash's full permutation.
/// Safe for byte-identity because map iteration order is never
/// observable there — lookups and inserts are by key, and the only
/// iteration (`retain`) decides per entry.
pub type StoreHashBuilder = BuildHasherDefault<SplitMix64>;

/// The `splitmix64` finalizer as a [`Hasher`] for fixed-width keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct SplitMix64 {
    state: u64,
}

impl Hasher for SplitMix64 {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-fixed-width keys; the engine only hashes u64s.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn write_u64(&mut self, n: u64) {
        let mut z = self.state ^ n;
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.state = z ^ (z >> 31);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_kind_names_round_trip() {
        for k in [
            EngineKind::EventDriven,
            EngineKind::Legacy,
            EngineKind::Sharded,
        ] {
            assert_eq!(EngineKind::from_name(k.name()), Some(k));
        }
        assert_eq!(EngineKind::from_name("polled"), Some(EngineKind::Legacy));
        assert_eq!(EngineKind::from_name("quantum"), None);
    }

    #[test]
    fn wake_heap_tracks_min_and_capacity() {
        let mut h = WakeHeap::new(2);
        assert_eq!(h.available_at(5), 5);
        h.occupy(5, 50);
        h.occupy(5, 60);
        // Both busy: next availability is the earliest release.
        assert_eq!(h.available_at(5), 50);
        h.occupy(50, 70); // reschedules the slot that freed at 50
        assert_eq!(h.available_at(0), 60);
    }

    /// The PR 5-style pin: the heap must evolve the identical observable
    /// multiset as the linear-scanned pool it replaces, under adversarial
    /// interleavings including `until` below the current minimum.
    #[test]
    fn wake_heap_matches_scanned_slots_reference() {
        struct ScanRef {
            free_at: Vec<u64>,
        }
        impl ScanRef {
            fn available_at(&self, t: u64) -> u64 {
                t.max(self.free_at.iter().copied().min().unwrap())
            }
            fn occupy(&mut self, until: u64) {
                let idx = (0..self.free_at.len())
                    .min_by_key(|&i| self.free_at[i])
                    .unwrap();
                self.free_at[idx] = self.free_at[idx].max(until);
            }
        }
        let mut seed = 0x1234_5678_9ABC_DEF0u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for n in [1usize, 2, 8, 32] {
            let mut heap = WakeHeap::new(n);
            let mut scan = ScanRef {
                free_at: vec![0; n],
            };
            let mut now = 0u64;
            for step in 0..10_000u64 {
                let r = rng();
                now += r % 7;
                assert_eq!(
                    heap.available_at(now),
                    scan.available_at(now),
                    "n={n} step={step}"
                );
                // Mostly forward releases, occasionally below the min.
                let until = if r % 13 == 0 { now / 2 } else { now + r % 40 };
                heap.occupy(now, until);
                scan.occupy(until);
            }
            let mut a = heap.heap.clone();
            let mut b = scan.free_at.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "multisets diverged for n={n}");
        }
    }

    /// A counting-multiset reference model over `BTreeMap<u64, usize>`:
    /// the heap is *only* a multiset of free-times, so `available_at`
    /// must peek the least key and `occupy` must remove one instance of
    /// the minimum and insert `max(min, until)` — including when several
    /// slots share a wake time and when `until` is below the minimum.
    struct MultisetRef {
        times: std::collections::BTreeMap<u64, usize>,
    }

    impl MultisetRef {
        fn new(n: usize) -> Self {
            let mut times = std::collections::BTreeMap::new();
            times.insert(0u64, n);
            MultisetRef { times }
        }

        fn min(&self) -> u64 {
            *self.times.keys().next().expect("pool is never empty")
        }

        fn available_at(&self, t: u64) -> u64 {
            t.max(self.min())
        }

        fn occupy(&mut self, until: u64) {
            let min = self.min();
            match self.times.get_mut(&min) {
                Some(c) if *c > 1 => *c -= 1,
                _ => {
                    self.times.remove(&min);
                }
            }
            *self.times.entry(min.max(until)).or_insert(0) += 1;
        }

        fn sorted(&self) -> Vec<u64> {
            self.times
                .iter()
                .flat_map(|(&t, &c)| std::iter::repeat_n(t, c))
                .collect()
        }
    }

    #[test]
    fn wake_heap_handles_duplicate_wake_times() {
        // Drive every slot to the same release time, then reschedule:
        // each occupy must consume exactly one duplicate instance.
        let mut heap = WakeHeap::new(4);
        let mut model = MultisetRef::new(4);
        for _ in 0..4 {
            heap.occupy(0, 10);
            model.occupy(10);
        }
        assert_eq!(heap.available_at(0), 10);
        for k in 0..4u64 {
            assert_eq!(heap.available_at(0), model.available_at(0), "dup {k}");
            heap.occupy(10, 20 + k);
            model.occupy(20 + k);
        }
        let mut a = heap.heap.clone();
        a.sort_unstable();
        assert_eq!(a, model.sorted());
    }

    #[test]
    fn wake_heap_occupy_below_min_keeps_the_min() {
        // The "pop at empty-equivalent" edge: occupying with `until`
        // below the current minimum must re-insert the minimum itself
        // (a slot can never free earlier than it already does), so the
        // multiset is unchanged.
        let mut heap = WakeHeap::new(3);
        for _ in 0..3 {
            heap.occupy(0, 40);
        }
        let before = heap.heap.clone();
        heap.occupy(40, 7); // far below every release time
        assert_eq!(heap.heap, before, "an earlier `until` must be a no-op");
        assert_eq!(heap.available_at(0), 40);
    }

    #[test]
    fn single_slot_heap_serializes_all_claims() {
        let mut heap = WakeHeap::new(1);
        let mut model = MultisetRef::new(1);
        for (t, until) in [(0u64, 5u64), (5, 9), (9, 9), (9, 2), (20, 31)] {
            assert_eq!(heap.available_at(t), model.available_at(t));
            heap.occupy(t, until);
            model.occupy(until);
        }
        assert_eq!(heap.heap, model.sorted());
    }

    #[test]
    fn wake_heap_matches_btreemap_multiset_reference() {
        // Interleaved push/pop under a seeded stream heavy in ties (small
        // `until` range ⇒ many duplicate keys) across pool sizes.
        let mut seed = 0xD1CE_2014_u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for n in [1usize, 2, 3, 8, 17] {
            let mut heap = WakeHeap::new(n);
            let mut model = MultisetRef::new(n);
            let mut now = 0u64;
            for step in 0..20_000u64 {
                let r = rng();
                now += r % 3;
                assert_eq!(
                    heap.available_at(now),
                    model.available_at(now),
                    "n={n} step={step}"
                );
                // Coarse quantization forces duplicate wake times; the
                // `% 11 == 0` arm drives `until` beneath the minimum.
                let until = if r % 11 == 0 {
                    now / 2
                } else {
                    (now + r % 16) / 4 * 4
                };
                heap.occupy(now, until);
                model.occupy(until);
                if step % 1_024 == 0 {
                    let mut a = heap.heap.clone();
                    a.sort_unstable();
                    assert_eq!(a, model.sorted(), "n={n} step={step} multiset");
                }
            }
            let mut a = heap.heap.clone();
            a.sort_unstable();
            assert_eq!(a, model.sorted(), "final multiset for n={n}");
        }
    }

    #[test]
    fn clear_frees_everything() {
        let mut h = WakeHeap::new(4);
        for _ in 0..4 {
            h.occupy(0, 99);
        }
        assert_eq!(h.available_at(1), 99);
        h.clear();
        assert_eq!(h.available_at(1), 1);
    }

    #[test]
    fn splitmix_hashes_u64s_like_its_byte_stream() {
        let mut a = SplitMix64::default();
        a.write_u64(0xDEAD_BEEF);
        let mut b = SplitMix64::default();
        b.write(&0xDEAD_BEEFu64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }
}
