//! Distributed branch prediction (paper §3.1).
//!
//! Each Slice has a local bimodal predictor indexed by PC; because fetch is
//! PC-interleaved, "the same PC is always fetched by the same Slice", so
//! effective predictor capacity grows with Slice count. BTB entries are
//! replicated (with slice-interleaved "fake" entries) so any Slice can
//! redirect fetch for a taken branch it did not itself execute.

/// A 2-bit saturating counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Counter2(u8);

impl Counter2 {
    fn predict_taken(self) -> bool {
        self.0 >= 2
    }

    fn train(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// Prediction counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Conditional branches predicted.
    pub predictions: u64,
    /// Direction mispredictions.
    pub mispredictions: u64,
    /// Taken control transfers whose target missed in the BTB.
    pub btb_misses: u64,
}

sharing_json::json_struct!(PredictorStats {
    predictions,
    mispredictions,
    btb_misses
});

impl PredictorStats {
    /// Direction misprediction rate in `[0, 1]`.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

/// A Slice's bimodal predictor plus its (replicated) BTB.
///
/// # Example
///
/// ```
/// use sharing_core::predictor::BranchPredictor;
///
/// let mut bp = BranchPredictor::new(1024, 256);
/// // Bimodal counters start weakly not-taken; train towards taken.
/// assert!(!bp.predict_taken(0x40));
/// bp.train(0x40, true);
/// bp.train(0x40, true);
/// assert!(bp.predict_taken(0x40));
/// ```
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    table: Vec<Counter2>,
    /// Direct-mapped BTB of branch PCs (tag per entry; `u64::MAX` = empty).
    btb: Vec<u64>,
    stats: PredictorStats,
}

impl BranchPredictor {
    /// Creates a predictor with the given table sizes (rounded up to powers
    /// of two).
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    #[must_use]
    pub fn new(predictor_entries: usize, btb_entries: usize) -> Self {
        assert!(
            predictor_entries > 0 && btb_entries > 0,
            "predictor sizes must be positive"
        );
        BranchPredictor {
            table: vec![Counter2(1); predictor_entries.next_power_of_two()],
            btb: vec![u64::MAX; btb_entries.next_power_of_two()],
            stats: PredictorStats::default(),
        }
    }

    fn pht_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.table.len() - 1)
    }

    fn btb_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.btb.len() - 1)
    }

    /// Predicts the direction of the conditional branch at `pc` (counts a
    /// prediction).
    pub fn predict_taken(&mut self, pc: u64) -> bool {
        self.stats.predictions += 1;
        self.table[self.pht_index(pc)].predict_taken()
    }

    /// Trains the direction counter and records a mispredict if the
    /// previous prediction was wrong. Returns whether the (pre-training)
    /// prediction matched.
    pub fn train(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.pht_index(pc);
        let correct = self.table[idx].predict_taken() == taken;
        self.table[idx].train(taken);
        correct
    }

    /// Full conditional-branch flow: predict, train, account. Returns
    /// `true` when the direction was predicted correctly.
    pub fn predict_and_train(&mut self, pc: u64, taken: bool) -> bool {
        self.stats.predictions += 1;
        let idx = self.pht_index(pc);
        let correct = self.table[idx].predict_taken() == taken;
        if !correct {
            self.stats.mispredictions += 1;
        }
        self.table[idx].train(taken);
        correct
    }

    /// gshare variant (paper §3.1's global-scheme option): the prediction
    /// table is indexed by `pc ⊕ history`. The caller supplies the Global
    /// History Register — on a multi-Slice VCore that register is composed
    /// across Slices over the switched interconnect, so the caller passes
    /// an appropriately *delayed* history.
    pub fn predict_and_train_gshare(&mut self, pc: u64, history: u64, taken: bool) -> bool {
        self.stats.predictions += 1;
        let idx = ((pc >> 2) ^ history) as usize & (self.table.len() - 1);
        let correct = self.table[idx].predict_taken() == taken;
        if !correct {
            self.stats.mispredictions += 1;
        }
        self.table[idx].train(taken);
        correct
    }

    /// Looks the branch up in the BTB and installs it. Returns `true` on a
    /// hit (the target was known to fetch). Tag-match is by full PC.
    pub fn btb_lookup_install(&mut self, pc: u64) -> bool {
        let idx = self.btb_index(pc);
        let hit = self.btb[idx] == pc;
        if !hit {
            self.stats.btb_misses += 1;
            self.btb[idx] = pc;
        }
        hit
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_saturate() {
        let mut c = Counter2(0);
        c.train(false);
        assert_eq!(c.0, 0);
        for _ in 0..5 {
            c.train(true);
        }
        assert_eq!(c.0, 3);
        assert!(c.predict_taken());
    }

    #[test]
    fn biased_branches_predict_well() {
        let mut bp = BranchPredictor::new(256, 64);
        let mut correct = 0;
        for i in 0..1000 {
            // Loop branch: taken 9 of 10.
            let taken = i % 10 != 9;
            if bp.predict_and_train(0x100, taken) {
                correct += 1;
            }
        }
        assert!(correct > 750, "correct = {correct}");
    }

    #[test]
    fn alternating_branch_defeats_bimodal() {
        // A strictly alternating branch is the bimodal worst case; with
        // initial state 1 it mispredicts heavily.
        let mut bp = BranchPredictor::new(256, 64);
        for i in 0..100 {
            bp.predict_and_train(0x200, i % 2 == 0);
        }
        assert!(bp.stats().mispredict_rate() > 0.4);
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut bp = BranchPredictor::new(256, 64);
        for _ in 0..10 {
            bp.predict_and_train(0x100, true);
            bp.predict_and_train(0x104, false);
        }
        assert!(bp.predict_taken(0x100));
        assert!(!bp.predict_taken(0x104));
    }

    #[test]
    fn btb_misses_then_hits() {
        let mut bp = BranchPredictor::new(256, 8);
        assert!(!bp.btb_lookup_install(0x40));
        assert!(bp.btb_lookup_install(0x40));
        assert_eq!(bp.stats().btb_misses, 1);
    }

    #[test]
    fn btb_conflicts_evict() {
        let mut bp = BranchPredictor::new(256, 4);
        // PCs 0x10 and 0x50 collide in a 4-entry BTB ((pc>>2) & 3).
        assert!(!bp.btb_lookup_install(0x10));
        assert!(!bp.btb_lookup_install(0x50));
        assert!(!bp.btb_lookup_install(0x10), "0x50 evicted 0x10");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_sizes_rejected() {
        let _ = BranchPredictor::new(0, 8);
    }
}
