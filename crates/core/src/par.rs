//! A minimal scoped-thread work queue for deterministic fan-out.
//!
//! Every sweep consumer (the CLI grid, `SuiteSurfaces`, the dc
//! simulator's surface build) runs the same shape of job: an indexed
//! task list whose results must come back **in task order** so rendered
//! tables and serialized caches are byte-identical no matter how many
//! workers ran. [`map_indexed`] is that loop: workers pull the next
//! index from an atomic counter, write results into their own slot, and
//! the caller gets a `Vec` in input order.
//!
//! [`bsp_loop`] is the intra-run twin (DESIGN.md §14): a persistent
//! pool of workers advancing bulk-synchronous rounds between barriers,
//! with a caller-side merge step in between — the machinery behind
//! `VmSimulator`'s sharded execution.
//!
//! std-only by design — the workspace builds offline with zero external
//! dependencies (DESIGN.md §5).
//!
//! # Example
//!
//! ```
//! use sharing_core::par;
//!
//! let squares = par::map_indexed(4, &[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

/// Resolves a `--jobs`-style knob: `Some(n)` is used as given (minimum
/// 1), `None` sizes to the machine.
#[must_use]
pub fn resolve_jobs(jobs: Option<usize>) -> usize {
    match jobs {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get),
    }
}

/// Applies `f` to every task on up to `jobs` worker threads and returns
/// the results **in task order**. `f` receives `(index, &task)`.
///
/// With `jobs <= 1` (or a single task) everything runs inline on the
/// calling thread — no threads are spawned, and side effects (spans,
/// counters) happen in task order, exactly as a plain sequential loop.
/// With more workers the task order of side effects is unspecified, but
/// the returned `Vec` is always index-ordered, which is what makes
/// parallel sweeps byte-identical to sequential ones.
///
/// # Panics
///
/// Propagates the first worker panic with its original payload: the
/// remaining workers stop pulling new tasks, the scope joins, and the
/// panic resumes on the caller. (Without the catch, the scope's own
/// join would replace the payload with a generic "a scoped thread
/// panicked" — losing the actual failure message.)
pub fn map_indexed<T, R, F>(jobs: usize, tasks: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if jobs <= 1 || tasks.len() <= 1 {
        return tasks.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = jobs.min(tasks.len());
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let panicked: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let slots: Vec<Mutex<Option<R>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(task) = tasks.get(i) else { break };
                match catch_unwind(AssertUnwindSafe(|| f(i, task))) {
                    Ok(r) => *slots[i].lock().expect("par slot lock") = Some(r),
                    Err(payload) => {
                        stop.store(true, Ordering::Relaxed);
                        let mut slot = panicked.lock().expect("par panic slot");
                        slot.get_or_insert(payload);
                        break;
                    }
                }
            });
        }
    });
    if let Some(payload) = panicked.into_inner().expect("par panic slot") {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("par slot lock")
                .unwrap_or_else(|| panic!("task {i} produced no result"))
        })
        .collect()
}

/// A persistent pool of `workers` scoped threads advancing
/// bulk-synchronous rounds (the sharded engine's barrier protocol,
/// DESIGN.md §14).
///
/// Each iteration: `coordinate()` runs on the **calling thread** with
/// exclusive access to all shared state (the merge step — and, before
/// the first round, setup). If it returns `true`, every worker runs
/// `step(worker_index)` once, concurrently, between two barriers; then
/// the loop repeats. When `coordinate()` returns `false` the workers
/// shut down and the call returns. The compute and merge phases never
/// overlap, so `step` closures may partition shared state by worker
/// index (e.g. interior mutability locked only during compute) while
/// `coordinate` walks all of it.
///
/// With `workers <= 1` everything runs inline on the calling thread —
/// no threads, no barriers, byte-identical side-effect order to the
/// threaded form by construction.
///
/// # Panics
///
/// Propagates the first panic from `step` or `coordinate` with its
/// original payload after parking the pool (workers drain at the next
/// barrier rather than deadlocking on a missing participant).
pub fn bsp_loop<C, S>(workers: usize, mut coordinate: C, step: S)
where
    C: FnMut() -> bool,
    S: Fn(usize) + Sync,
{
    if workers <= 1 {
        while coordinate() {
            step(0);
        }
        return;
    }
    let barrier = Barrier::new(workers + 1);
    let stop = AtomicBool::new(false);
    let panicked: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let mut pending: Option<Box<dyn Any + Send>> = None;
    std::thread::scope(|scope| {
        for w in 0..workers {
            let barrier = &barrier;
            let stop = &stop;
            let panicked = &panicked;
            let step = &step;
            scope.spawn(move || loop {
                barrier.wait(); // round start (or shutdown signal)
                if stop.load(Ordering::Acquire) {
                    break;
                }
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| step(w))) {
                    let mut slot = panicked.lock().expect("bsp panic slot");
                    slot.get_or_insert(payload);
                }
                barrier.wait(); // round end
            });
        }
        loop {
            let more = if pending.is_some() {
                false
            } else {
                match catch_unwind(AssertUnwindSafe(&mut coordinate)) {
                    Ok(m) => m,
                    Err(payload) => {
                        pending = Some(payload);
                        false
                    }
                }
            };
            if !more {
                stop.store(true, Ordering::Release);
                barrier.wait(); // release workers into the stop check
                break;
            }
            barrier.wait(); // open the compute phase
            barrier.wait(); // wait for every worker to finish it
            if let Some(payload) = panicked.lock().expect("bsp panic slot").take() {
                pending = Some(payload);
            }
        }
    });
    if let Some(payload) = pending {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        let tasks: Vec<usize> = (0..100).collect();
        for jobs in [1, 2, 4, 16] {
            let out = map_indexed(jobs, &tasks, |i, &t| {
                assert_eq!(i, t);
                t * 10
            });
            assert_eq!(out, tasks.iter().map(|t| t * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let tasks: Vec<u64> = (0..57).map(|i| i * 31 + 7).collect();
        let seq = map_indexed(1, &tasks, |i, &t| t.wrapping_mul(i as u64 + 1));
        let par = map_indexed(8, &tasks, |i, &t| t.wrapping_mul(i as u64 + 1));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single_task_lists() {
        let none: Vec<u32> = vec![];
        assert!(map_indexed(4, &none, |_, &x| x).is_empty());
        assert_eq!(map_indexed(4, &[9u32], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..200).map(|_| AtomicUsize::new(0)).collect();
        let tasks: Vec<usize> = (0..200).collect();
        let _ = map_indexed(6, &tasks, |_, &t| hits[t].fetch_add(1, Ordering::Relaxed));
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn resolve_jobs_floors_at_one() {
        assert_eq!(resolve_jobs(Some(0)), 1);
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    fn worker_panic_propagates_with_its_payload() {
        let tasks: Vec<usize> = (0..64).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            map_indexed(4, &tasks, |_, &t| {
                assert!(t != 17, "task seventeen is cursed");
                t
            })
        }))
        .expect_err("the worker panic must reach the caller");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| (*err.downcast_ref::<&str>().unwrap_or(&"")).to_string());
        assert!(
            msg.contains("task seventeen is cursed"),
            "original panic payload must survive, got: {msg:?}"
        );
    }

    #[test]
    fn worker_panic_stops_remaining_tasks_early() {
        // After the panic is observed, workers stop pulling new indexes —
        // the queue must not be fully drained (with 200 tasks and the
        // panic at index 0, at most a handful of in-flight tasks finish).
        let done = AtomicUsize::new(0);
        let tasks: Vec<usize> = (0..200).collect();
        let _ = catch_unwind(AssertUnwindSafe(|| {
            map_indexed(2, &tasks, |_, &t| {
                if t == 0 {
                    panic!("early abort");
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
                done.fetch_add(1, Ordering::Relaxed);
            })
        }))
        .expect_err("must propagate");
        assert!(
            done.load(Ordering::Relaxed) < 200,
            "remaining tasks should have been abandoned"
        );
    }

    #[test]
    fn bsp_loop_rounds_are_barrier_separated() {
        // Every worker adds to its own cell during compute; the merge
        // must always observe a full round (all workers ran exactly
        // once) — a torn round means the barrier protocol leaks.
        for workers in [1usize, 2, 4, 8] {
            let cells: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();
            let mut round = 0usize;
            bsp_loop(
                workers,
                || {
                    for (w, c) in cells.iter().enumerate() {
                        assert_eq!(
                            c.load(Ordering::SeqCst),
                            round,
                            "worker {w} out of lockstep at round {round}"
                        );
                    }
                    round += 1;
                    round <= 5
                },
                |w| {
                    cells[w].fetch_add(1, Ordering::SeqCst);
                },
            );
            assert!(cells.iter().all(|c| c.load(Ordering::SeqCst) == 5));
        }
    }

    #[test]
    fn bsp_loop_propagates_step_panics() {
        for workers in [1usize, 4] {
            let mut rounds = 0;
            let err = catch_unwind(AssertUnwindSafe(|| {
                bsp_loop(
                    workers,
                    || {
                        rounds += 1;
                        rounds <= 3
                    },
                    |w| assert!(w != 0, "round two exploded"),
                );
            }))
            .expect_err("step panic must propagate");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| (*err.downcast_ref::<&str>().unwrap_or(&"")).to_string());
            assert!(msg.contains("round two exploded"), "got: {msg:?}");
        }
    }

    #[test]
    fn bsp_loop_propagates_coordinate_panics() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            bsp_loop(4, || panic!("merge failed"), |_w| {});
        }))
        .expect_err("coordinate panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_default()
            .to_string();
        assert!(msg.contains("merge failed"), "got: {msg:?}");
    }

    #[test]
    fn bsp_loop_with_zero_rounds_spawns_and_joins_cleanly() {
        bsp_loop(8, || false, |_w| panic!("never runs"));
    }
}
