//! A minimal scoped-thread work queue for deterministic fan-out.
//!
//! Every sweep consumer (the CLI grid, `SuiteSurfaces`, the dc
//! simulator's surface build) runs the same shape of job: an indexed
//! task list whose results must come back **in task order** so rendered
//! tables and serialized caches are byte-identical no matter how many
//! workers ran. [`map_indexed`] is that loop: workers pull the next
//! index from an atomic counter, write results into their own slot, and
//! the caller gets a `Vec` in input order.
//!
//! std-only by design — the workspace builds offline with zero external
//! dependencies (DESIGN.md §5).
//!
//! # Example
//!
//! ```
//! use sharing_core::par;
//!
//! let squares = par::map_indexed(4, &[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a `--jobs`-style knob: `Some(n)` is used as given (minimum
/// 1), `None` sizes to the machine.
#[must_use]
pub fn resolve_jobs(jobs: Option<usize>) -> usize {
    match jobs {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get),
    }
}

/// Applies `f` to every task on up to `jobs` worker threads and returns
/// the results **in task order**. `f` receives `(index, &task)`.
///
/// With `jobs <= 1` (or a single task) everything runs inline on the
/// calling thread — no threads are spawned, and side effects (spans,
/// counters) happen in task order, exactly as a plain sequential loop.
/// With more workers the task order of side effects is unspecified, but
/// the returned `Vec` is always index-ordered, which is what makes
/// parallel sweeps byte-identical to sequential ones.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins its workers first).
pub fn map_indexed<T, R, F>(jobs: usize, tasks: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if jobs <= 1 || tasks.len() <= 1 {
        return tasks.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = jobs.min(tasks.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(task) = tasks.get(i) else { break };
                let r = f(i, task);
                *slots[i].lock().expect("par slot lock") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("par slot lock")
                .unwrap_or_else(|| panic!("task {i} produced no result"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        let tasks: Vec<usize> = (0..100).collect();
        for jobs in [1, 2, 4, 16] {
            let out = map_indexed(jobs, &tasks, |i, &t| {
                assert_eq!(i, t);
                t * 10
            });
            assert_eq!(out, tasks.iter().map(|t| t * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let tasks: Vec<u64> = (0..57).map(|i| i * 31 + 7).collect();
        let seq = map_indexed(1, &tasks, |i, &t| t.wrapping_mul(i as u64 + 1));
        let par = map_indexed(8, &tasks, |i, &t| t.wrapping_mul(i as u64 + 1));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single_task_lists() {
        let none: Vec<u32> = vec![];
        assert!(map_indexed(4, &none, |_, &x| x).is_empty());
        assert_eq!(map_indexed(4, &[9u32], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..200).map(|_| AtomicUsize::new(0)).collect();
        let tasks: Vec<usize> = (0..200).collect();
        let _ = map_indexed(6, &tasks, |_, &t| hits[t].fetch_add(1, Ordering::Relaxed));
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn resolve_jobs_floors_at_one() {
        assert_eq!(resolve_jobs(Some(0)), 1);
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(None) >= 1);
    }
}
