//! Prometheus text exposition (format version 0.0.4), hand-rolled.
//!
//! [`PromWriter`] builds one exposition document: `# HELP` / `# TYPE`
//! headers once per family, then sample lines. [`percentile`] is the
//! shared nearest-rank helper used for `{quantile="..."}` summaries.

use crate::hist::Histogram;
use std::fmt::Write as _;

/// Builds one Prometheus text-exposition document.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

impl PromWriter {
    /// An empty document.
    #[must_use]
    pub fn new() -> Self {
        PromWriter::default()
    }

    fn header(&mut self, name: &str, help: &str, ty: &str) {
        let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.out, "# TYPE {name} {ty}");
    }

    /// One unlabelled counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// A counter family with one label dimension, e.g.
    /// `jobs_total{kind="simulate"} 3`.
    pub fn counter_family(&mut self, name: &str, help: &str, label: &str, samples: &[(&str, u64)]) {
        self.header(name, help, "counter");
        for (label_value, value) in samples {
            let _ = writeln!(
                self.out,
                "{name}{{{label}=\"{}\"}} {value}",
                escape_label(label_value)
            );
        }
    }

    /// A gauge family with one label dimension, e.g.
    /// `worker_healthy{worker="host:42014"} 1`.
    pub fn gauge_family(&mut self, name: &str, help: &str, label: &str, samples: &[(&str, i64)]) {
        self.header(name, help, "gauge");
        for (label_value, value) in samples {
            let _ = writeln!(
                self.out,
                "{name}{{{label}=\"{}\"}} {value}",
                escape_label(label_value)
            );
        }
    }

    /// One unlabelled gauge (integer).
    pub fn gauge_i64(&mut self, name: &str, help: &str, value: i64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// One unlabelled gauge (float).
    pub fn gauge_f64(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// A summary: quantile sample lines plus `_count`. `quantiles` pairs
    /// a quantile (e.g. `0.99`) with its value.
    pub fn summary(&mut self, name: &str, help: &str, quantiles: &[(f64, u64)], count: u64) {
        self.header(name, help, "summary");
        for (q, v) in quantiles {
            let _ = writeln!(self.out, "{name}{{quantile=\"{q}\"}} {v}");
        }
        let _ = writeln!(self.out, "{name}_count {count}");
    }

    /// A histogram: cumulative `_bucket{le="..."}` lines (Prometheus
    /// buckets are cumulative; [`Histogram`] counts are per-bucket, so
    /// the running sum happens here), the `+Inf` bucket, `_sum`, and
    /// `_count`. `_count` equals the `+Inf` bucket by construction,
    /// as the exposition format requires.
    pub fn histogram(&mut self, name: &str, help: &str, hist: &Histogram) {
        self.header(name, help, "histogram");
        let counts = hist.bucket_counts();
        let mut cumulative = 0u64;
        for (bound, count) in hist.bounds().iter().zip(&counts) {
            cumulative += count;
            let _ = writeln!(self.out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        cumulative += counts.last().copied().unwrap_or(0);
        let _ = writeln!(self.out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(self.out, "{name}_sum {}", hist.sum());
        let _ = writeln!(self.out, "{name}_count {cumulative}");
    }

    /// The finished document.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

/// Nearest-rank percentile over an already **sorted** slice; returns 0
/// for an empty slice. `p` is in `[0, 1]`.
#[must_use]
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_emits_help_type_and_samples() {
        let mut w = PromWriter::new();
        w.counter("jobs_total", "total jobs", 7);
        w.gauge_f64("utilization", "busy fraction", 0.5);
        w.counter_family(
            "jobs_by_kind_total",
            "per-kind jobs",
            "kind",
            &[("simulate", 3), ("dc", 4)],
        );
        w.gauge_family(
            "worker_healthy",
            "per-worker health",
            "worker",
            &[("a:1", 1), ("b:2", 0)],
        );
        w.summary("latency_us", "latency", &[(0.5, 10), (0.99, 90)], 100);
        let text = w.finish();
        assert!(text.contains("# HELP jobs_total total jobs\n"));
        assert!(text.contains("# TYPE jobs_total counter\n"));
        assert!(text.contains("jobs_total 7\n"));
        assert!(text.contains("utilization 0.5\n"));
        assert!(text.contains("jobs_by_kind_total{kind=\"simulate\"} 3\n"));
        assert!(text.contains("# TYPE worker_healthy gauge\n"));
        assert!(text.contains("worker_healthy{worker=\"a:1\"} 1\n"));
        assert!(text.contains("worker_healthy{worker=\"b:2\"} 0\n"));
        assert!(text.contains("latency_us{quantile=\"0.5\"} 10\n"));
        assert!(text.contains("latency_us{quantile=\"0.99\"} 90\n"));
        assert!(text.contains("latency_us_count 100\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut w = PromWriter::new();
        w.counter_family("m_total", "m", "k", &[("a\"b", 1)]);
        assert!(w.finish().contains("m_total{k=\"a\\\"b\"} 1"));
    }

    #[test]
    #[cfg(feature = "enabled")]
    fn histogram_buckets_are_cumulative_and_count_matches_inf() {
        let h = Histogram::with_bounds(vec![10, 100]);
        h.observe(5);
        h.observe(7);
        h.observe(50);
        h.observe(5000); // overflow
        let mut w = PromWriter::new();
        w.histogram("latency_us", "latency", &h);
        let text = w.finish();
        assert!(text.contains("# TYPE latency_us histogram\n"));
        assert!(text.contains("latency_us_bucket{le=\"10\"} 2\n"));
        assert!(text.contains("latency_us_bucket{le=\"100\"} 3\n"));
        assert!(text.contains("latency_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("latency_us_sum 5062\n"));
        assert!(text.contains("latency_us_count 4\n"));
    }

    #[test]
    fn percentile_matches_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 1.0), 100);
        let p50 = percentile(&v, 0.5);
        assert!((49..=51).contains(&p50));
        let p99 = percentile(&v, 0.99);
        assert!((98..=100).contains(&p99));
    }
}
