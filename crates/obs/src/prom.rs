//! Prometheus text exposition (format version 0.0.4), hand-rolled.
//!
//! [`PromWriter`] builds one exposition document: `# HELP` / `# TYPE`
//! headers once per family, then sample lines. [`percentile`] is the
//! shared nearest-rank helper used for `{quantile="..."}` summaries.

use crate::hist::Histogram;
use std::fmt::Write as _;

/// Builds one Prometheus text-exposition document.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label *value* per the exposition format: backslash, double
/// quote, and newline. Public because the ssimd metrics federator needs
/// the same escaping when it stamps `instance="worker:<k>"` onto
/// relayed worker samples.
#[must_use]
pub fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Rewrites one exposition document so every sample line carries an
/// extra `label="value"` pair — the metrics-federation primitive: a
/// coordinator relays each worker's scrape under
/// `instance="worker:<k>"`. Comment (`# HELP`/`# TYPE`) lines are
/// dropped, because the coordinator already emitted headers for its own
/// families and duplicate headers are invalid exposition text; blank
/// lines are dropped too. The metric name never contains `{`, `"` or a
/// space, so splitting at the first `{` or space is exact even when
/// existing label values contain braces or escaped quotes.
#[must_use]
pub fn inject_label(doc: &str, label: &str, value: &str) -> String {
    let escaped = escape_label(value);
    let mut out = String::with_capacity(doc.len() + 32);
    for line in doc.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cut = line.find(['{', ' ']).unwrap_or(line.len());
        let (name, rest) = line.split_at(cut);
        if let Some(labels) = rest.strip_prefix('{') {
            let _ = writeln!(out, "{name}{{{label}=\"{escaped}\",{labels}");
        } else {
            let _ = writeln!(out, "{name}{{{label}=\"{escaped}\"}}{rest}");
        }
    }
    out
}

impl PromWriter {
    /// An empty document.
    #[must_use]
    pub fn new() -> Self {
        PromWriter::default()
    }

    fn header(&mut self, name: &str, help: &str, ty: &str) {
        let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.out, "# TYPE {name} {ty}");
    }

    /// One unlabelled counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// A counter family with one label dimension, e.g.
    /// `jobs_total{kind="simulate"} 3`.
    pub fn counter_family(&mut self, name: &str, help: &str, label: &str, samples: &[(&str, u64)]) {
        self.header(name, help, "counter");
        for (label_value, value) in samples {
            let _ = writeln!(
                self.out,
                "{name}{{{label}=\"{}\"}} {value}",
                escape_label(label_value)
            );
        }
    }

    /// A gauge family with one label dimension, e.g.
    /// `worker_healthy{worker="host:42014"} 1`.
    pub fn gauge_family(&mut self, name: &str, help: &str, label: &str, samples: &[(&str, i64)]) {
        self.header(name, help, "gauge");
        for (label_value, value) in samples {
            let _ = writeln!(
                self.out,
                "{name}{{{label}=\"{}\"}} {value}",
                escape_label(label_value)
            );
        }
    }

    /// One unlabelled gauge (integer).
    pub fn gauge_i64(&mut self, name: &str, help: &str, value: i64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// One unlabelled gauge (float).
    pub fn gauge_f64(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// One sample line with an arbitrary label set (no header — pair
    /// with [`PromWriter::header_only`] or a preceding family call).
    /// Every label value is escaped.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        if labels.is_empty() {
            let _ = writeln!(self.out, "{name} {value}");
            return;
        }
        let _ = write!(self.out, "{name}{{");
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
        }
        let _ = writeln!(self.out, "}} {value}");
    }

    /// Just the `# HELP`/`# TYPE` header for a family whose samples are
    /// emitted via [`PromWriter::sample`].
    pub fn header_only(&mut self, name: &str, help: &str, ty: &str) {
        self.header(name, help, ty);
    }

    /// An info-style gauge: constant value `1`, identity in the labels
    /// (the `ssimd_build_info{version=...,features=...}` idiom).
    pub fn info(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) {
        self.header(name, help, "gauge");
        self.sample(name, labels, 1);
    }

    /// A summary: quantile sample lines plus `_count`. `quantiles` pairs
    /// a quantile (e.g. `0.99`) with its value.
    pub fn summary(&mut self, name: &str, help: &str, quantiles: &[(f64, u64)], count: u64) {
        self.header(name, help, "summary");
        for (q, v) in quantiles {
            let _ = writeln!(self.out, "{name}{{quantile=\"{q}\"}} {v}");
        }
        let _ = writeln!(self.out, "{name}_count {count}");
    }

    /// A histogram: cumulative `_bucket{le="..."}` lines (Prometheus
    /// buckets are cumulative; [`Histogram`] counts are per-bucket, so
    /// the running sum happens here), the `+Inf` bucket, `_sum`, and
    /// `_count`. `_count` equals the `+Inf` bucket by construction,
    /// as the exposition format requires.
    pub fn histogram(&mut self, name: &str, help: &str, hist: &Histogram) {
        self.header(name, help, "histogram");
        let counts = hist.bucket_counts();
        let mut cumulative = 0u64;
        for (bound, count) in hist.bounds().iter().zip(&counts) {
            cumulative += count;
            let _ = writeln!(self.out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        cumulative += counts.last().copied().unwrap_or(0);
        let _ = writeln!(self.out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(self.out, "{name}_sum {}", hist.sum());
        let _ = writeln!(self.out, "{name}_count {cumulative}");
    }

    /// The finished document.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

/// Nearest-rank percentile over an already **sorted** slice; returns 0
/// for an empty slice. `p` is in `[0, 1]`.
#[must_use]
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_emits_help_type_and_samples() {
        let mut w = PromWriter::new();
        w.counter("jobs_total", "total jobs", 7);
        w.gauge_f64("utilization", "busy fraction", 0.5);
        w.counter_family(
            "jobs_by_kind_total",
            "per-kind jobs",
            "kind",
            &[("simulate", 3), ("dc", 4)],
        );
        w.gauge_family(
            "worker_healthy",
            "per-worker health",
            "worker",
            &[("a:1", 1), ("b:2", 0)],
        );
        w.summary("latency_us", "latency", &[(0.5, 10), (0.99, 90)], 100);
        let text = w.finish();
        assert!(text.contains("# HELP jobs_total total jobs\n"));
        assert!(text.contains("# TYPE jobs_total counter\n"));
        assert!(text.contains("jobs_total 7\n"));
        assert!(text.contains("utilization 0.5\n"));
        assert!(text.contains("jobs_by_kind_total{kind=\"simulate\"} 3\n"));
        assert!(text.contains("# TYPE worker_healthy gauge\n"));
        assert!(text.contains("worker_healthy{worker=\"a:1\"} 1\n"));
        assert!(text.contains("worker_healthy{worker=\"b:2\"} 0\n"));
        assert!(text.contains("latency_us{quantile=\"0.5\"} 10\n"));
        assert!(text.contains("latency_us{quantile=\"0.99\"} 90\n"));
        assert!(text.contains("latency_us_count 100\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut w = PromWriter::new();
        w.counter_family("m_total", "m", "k", &[("a\"b", 1)]);
        assert!(w.finish().contains("m_total{k=\"a\\\"b\"} 1"));
    }

    #[test]
    fn backslash_quote_and_newline_all_escape_in_label_values() {
        // The full hostile triple in one value: a raw backslash, a
        // quote, and a newline (think a worker "addr" pasted from a
        // config with a path in it). Exposition text is line-oriented,
        // so an unescaped newline or quote corrupts the document.
        let hostile = "C:\\host\"A\nB";
        assert_eq!(escape_label(hostile), "C:\\\\host\\\"A\\nB");
        let mut w = PromWriter::new();
        w.gauge_family("worker_up", "h", "worker", &[(hostile, 1)]);
        let text = w.finish();
        assert!(
            text.contains("worker_up{worker=\"C:\\\\host\\\"A\\nB\"} 1"),
            "{text}"
        );
        // The document still has exactly one sample line per sample.
        assert_eq!(text.lines().filter(|l| !l.starts_with('#')).count(), 1);
    }

    #[test]
    fn multi_label_sample_and_info_escape_every_value() {
        let mut w = PromWriter::new();
        w.info(
            "build_info",
            "build identity",
            &[("version", "1.2.3"), ("features", "obs\"x")],
        );
        w.header_only("jobs_total", "relayed", "counter");
        w.sample(
            "jobs_total",
            &[("instance", "worker:0"), ("kind", "run")],
            9,
        );
        w.sample("plain_total", &[], 4);
        let text = w.finish();
        assert!(text.contains("# TYPE build_info gauge\n"));
        assert!(text.contains("build_info{version=\"1.2.3\",features=\"obs\\\"x\"} 1\n"));
        assert!(text.contains("jobs_total{instance=\"worker:0\",kind=\"run\"} 9\n"));
        assert!(text.contains("plain_total 4\n"));
    }

    #[test]
    fn inject_label_stamps_every_sample_and_drops_comments() {
        let doc = "# HELP jobs_total j\n# TYPE jobs_total counter\njobs_total 7\n\
                   jobs_by_kind_total{kind=\"a\\\"b\"} 3\nlatency_us_bucket{le=\"+Inf\"} 12\n";
        let out = inject_label(doc, "instance", "worker:1");
        assert_eq!(
            out,
            "jobs_total{instance=\"worker:1\"} 7\n\
             jobs_by_kind_total{instance=\"worker:1\",kind=\"a\\\"b\"} 3\n\
             latency_us_bucket{instance=\"worker:1\",le=\"+Inf\"} 12\n"
        );
        // Hostile instance values are escaped on the way in.
        let out = inject_label("m 1\n", "instance", "w\"0");
        assert_eq!(out, "m{instance=\"w\\\"0\"} 1\n");
    }

    #[test]
    #[cfg(feature = "enabled")]
    fn histogram_buckets_are_cumulative_and_count_matches_inf() {
        let h = Histogram::with_bounds(vec![10, 100]);
        h.observe(5);
        h.observe(7);
        h.observe(50);
        h.observe(5000); // overflow
        let mut w = PromWriter::new();
        w.histogram("latency_us", "latency", &h);
        let text = w.finish();
        assert!(text.contains("# TYPE latency_us histogram\n"));
        assert!(text.contains("latency_us_bucket{le=\"10\"} 2\n"));
        assert!(text.contains("latency_us_bucket{le=\"100\"} 3\n"));
        assert!(text.contains("latency_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("latency_us_sum 5062\n"));
        assert!(text.contains("latency_us_count 4\n"));
    }

    #[test]
    fn percentile_matches_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 1.0), 100);
        let p50 = percentile(&v, 0.5);
        assert!((49..=51).contains(&p50));
        let p99 = percentile(&v, 0.99);
        assert!((98..=100).contains(&p99));
    }
}
