//! The process-global metric registry: named counters and gauges.
//!
//! Lookup by name takes a short mutex (registration is rare); updates are
//! single relaxed atomics. Hot loops should look a metric up once and
//! keep the `&'static` handle:
//!
//! ```
//! use sharing_obs::counter;
//!
//! let cycles = counter("ssim_cycles_total"); // once, outside the loop
//! for _ in 0..4 {
//!     cycles.add(10_000);
//! }
//! assert!(cycles.get() >= 40_000);
//! ```

use crate::prom::PromWriter;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh, unregistered counter (registered ones come from
    /// [`counter`]).
    #[must_use]
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. A no-op without the `enabled` feature.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        self.value.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// The current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh, unregistered gauge (registered ones come from [`gauge`]).
    #[must_use]
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Sets the value. A no-op without the `enabled` feature.
    #[inline]
    pub fn set(&self, v: i64) {
        #[cfg(feature = "enabled")]
        self.value.store(v, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Adds `delta` (may be negative). A no-op without the `enabled`
    /// feature.
    #[inline]
    pub fn add(&self, delta: i64) {
        #[cfg(feature = "enabled")]
        self.value.fetch_add(delta, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = delta;
    }

    /// The current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<Vec<(&'static str, &'static Counter)>>,
    gauges: Mutex<Vec<(&'static str, &'static Gauge)>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Returns the process-global counter with this name, registering it on
/// first use. The handle is `'static`; cache it outside hot loops.
#[must_use]
pub fn counter(name: &'static str) -> &'static Counter {
    let mut table = registry().counters.lock().expect("registry lock");
    if let Some((_, c)) = table.iter().find(|(n, _)| *n == name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::new(Counter::new()));
    table.push((name, c));
    c
}

/// Returns the process-global gauge with this name, registering it on
/// first use. The handle is `'static`; cache it outside hot loops.
#[must_use]
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut table = registry().gauges.lock().expect("registry lock");
    if let Some((_, g)) = table.iter().find(|(n, _)| *n == name) {
        return g;
    }
    let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
    table.push((name, g));
    g
}

/// Renders every registered counter and gauge as Prometheus text
/// exposition, sorted by metric name for deterministic output.
#[must_use]
pub fn prometheus_text() -> String {
    let mut w = PromWriter::new();
    let mut counters: Vec<(&str, u64)> = registry()
        .counters
        .lock()
        .expect("registry lock")
        .iter()
        .map(|(n, c)| (*n, c.get()))
        .collect();
    counters.sort_unstable_by_key(|(n, _)| *n);
    for (name, value) in counters {
        w.counter(name, "registered process-global counter", value);
    }
    let mut gauges: Vec<(&str, i64)> = registry()
        .gauges
        .lock()
        .expect("registry lock")
        .iter()
        .map(|(n, g)| (*n, g.get()))
        .collect();
    gauges.sort_unstable_by_key(|(n, _)| *n);
    for (name, value) in gauges {
        w.gauge_i64(name, "registered process-global gauge", value);
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_once_and_accumulate() {
        let a = counter("obs_test_counter_total");
        let b = counter("obs_test_counter_total");
        assert!(std::ptr::eq(a, b), "same name, same counter");
        let before = a.get();
        b.add(3);
        assert_eq!(a.get(), before + 3);
    }

    #[test]
    fn gauges_move_both_ways() {
        let g = gauge("obs_test_gauge");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set(0);
    }

    #[test]
    fn prometheus_text_lists_registered_metrics() {
        counter("obs_test_exposed_total").add(1);
        gauge("obs_test_exposed_gauge").set(7);
        let text = prometheus_text();
        assert!(text.contains("# TYPE obs_test_exposed_total counter"));
        assert!(text.contains("obs_test_exposed_total "));
        assert!(text.contains("# TYPE obs_test_exposed_gauge gauge"));
        assert!(text.contains("obs_test_exposed_gauge 7"));
    }
}
