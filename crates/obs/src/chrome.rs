//! Chrome `trace_event` export.
//!
//! The output is the JSON Object Format of the Trace Event spec:
//! `{"displayTimeUnit":"ms","traceEvents":[...]}`. Load it in Perfetto
//! (<https://ui.perfetto.dev>) or `about://tracing`.
//!
//! The two clocks become two Chrome "processes": pid 0 is wall time
//! (µs), pid 1 is logical simulated time (cycles rendered as µs).
//! Metadata events name both so the viewer labels the tracks.

use crate::span::{Clock, Phase, SpanEvent};
use sharing_json::Json;

/// Chrome pid for wall-clock events.
pub const WALL_PID: u64 = 0;
/// Chrome pid for logical-cycle events.
pub const LOGICAL_PID: u64 = 1;

fn pid_of(clock: Clock) -> u64 {
    match clock {
        Clock::Wall => WALL_PID,
        Clock::Logical => LOGICAL_PID,
    }
}

fn metadata(pid: u64, label: &str) -> Json {
    Json::obj(vec![
        ("name", Json::Str("process_name".into())),
        ("ph", Json::Str("M".into())),
        ("pid", Json::Int(i128::from(pid))),
        ("tid", Json::Int(0)),
        ("args", Json::obj(vec![("name", Json::Str(label.into()))])),
    ])
}

/// One process-name metadata record as a Chrome event object (used by
/// the full-document exporter and by [`crate::sink::jsonl_to_chrome`]).
#[must_use]
pub fn metadata_json(pid: u64, label: &str) -> Json {
    metadata(pid, label)
}

/// Renders one span as its Chrome `trace_event` JSON object — the line
/// format of the streaming [`crate::sink::SpanSink`].
#[must_use]
pub fn event_json(ev: &SpanEvent) -> Json {
    event(ev)
}

fn event(ev: &SpanEvent) -> Json {
    let ph = match ev.phase {
        Phase::Complete => "X",
        Phase::Instant => "i",
        Phase::Counter => "C",
    };
    let mut pairs: Vec<(&str, Json)> = vec![
        ("name", Json::Str(ev.name.clone())),
        ("cat", Json::Str(ev.cat.into())),
        ("ph", Json::Str(ph.into())),
        ("pid", Json::Int(i128::from(pid_of(ev.clock)))),
        ("tid", Json::Int(i128::from(ev.track))),
        ("ts", Json::Int(i128::from(ev.ts))),
    ];
    if ev.phase == Phase::Complete {
        pairs.push(("dur", Json::Int(i128::from(ev.dur))));
    }
    if ev.phase == Phase::Instant {
        pairs.push(("s", Json::Str("t".into())));
    }
    if !ev.args.is_empty() {
        pairs.push((
            "args",
            Json::Obj(
                ev.args
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect(),
            ),
        ));
    }
    Json::obj(pairs)
}

/// Renders events as a Chrome trace JSON document. Always emits the two
/// process-name metadata records, so even an empty buffer produces a
/// valid, loadable trace.
#[must_use]
pub fn to_chrome_json(events: &[SpanEvent]) -> String {
    let mut out: Vec<Json> = vec![
        metadata(WALL_PID, "wall clock (us)"),
        metadata(LOGICAL_PID, "logical cycles"),
    ];
    out.extend(events.iter().map(event));
    Json::obj(vec![
        ("displayTimeUnit", Json::Str("ms".into())),
        ("traceEvents", Json::Arr(out)),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::TraceBuffer;

    #[test]
    fn export_parses_and_has_nonnegative_ts_dur() {
        let buf = TraceBuffer::new();
        {
            let _s = buf.span("wall-phase", "test", 0);
        }
        buf.record_logical(
            "epoch 0",
            "dc",
            1,
            0,
            5_000,
            vec![("tenants".into(), Json::Int(3))],
        );
        let text = buf.to_chrome_json();
        let v = Json::parse(&text).unwrap();
        let events = v.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 2 metadata + 2 recorded.
        assert_eq!(events.len(), 4);
        for ev in events {
            if let Some(ts) = ev.get("ts").and_then(Json::as_int) {
                assert!(ts >= 0, "ts must be non-negative");
            }
            if let Some(dur) = ev.get("dur").and_then(Json::as_int) {
                assert!(dur >= 0, "dur must be non-negative");
            }
        }
    }

    #[test]
    fn clocks_map_to_distinct_pids() {
        let buf = TraceBuffer::new();
        {
            let _s = buf.span("w", "test", 0);
        }
        buf.record_logical("l", "test", 0, 1, 2, Vec::new());
        let v = Json::parse(&buf.to_chrome_json()).unwrap();
        let events = v.get("traceEvents").and_then(Json::as_arr).unwrap();
        let pid_of = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .and_then(|e| e.get("pid"))
                .and_then(Json::as_int)
                .unwrap()
        };
        assert_eq!(pid_of("w"), i128::from(WALL_PID));
        assert_eq!(pid_of("l"), i128::from(LOGICAL_PID));
    }

    #[test]
    fn empty_buffer_is_still_a_valid_trace() {
        let buf = TraceBuffer::new();
        let v = Json::parse(&buf.to_chrome_json()).unwrap();
        let events = v.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2, "metadata only");
    }
}
