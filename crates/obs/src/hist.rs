//! Fixed-bucket histograms for latency distributions.
//!
//! The ssimd `stats` reply keeps its windowed p50/p99 summaries, but a
//! Prometheus scraper wants *histograms*: cumulative bucket counters it
//! can aggregate across daemons and turn into any quantile with
//! `histogram_quantile()`. [`Histogram`] is the recording half — fixed
//! log-scale bucket bounds chosen at construction, one atomic counter
//! per bucket, so `observe` is lock-free and never allocates —
//! and [`crate::PromWriter::histogram`] is the exposition half
//! (`*_bucket{le=...}` / `*_sum` / `*_count`).

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-bucket histogram with atomic counters. Buckets are defined
/// by their inclusive upper bounds; one extra overflow bucket catches
/// everything above the last bound (exposed as `le="+Inf"`).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` counters; the last is the overflow bucket.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram over explicit upper bounds.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is empty or not strictly increasing.
    #[must_use]
    pub fn with_bounds(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            sum: AtomicU64::new(0),
        }
    }

    /// The standard latency histogram: 1-2-5 log-scale bounds in
    /// microseconds from 1µs to 50s (24 buckets), wide enough to span
    /// a cache hit and a cold 72-point sweep in one family.
    #[must_use]
    pub fn log_scale_us() -> Self {
        let mut bounds = Vec::with_capacity(24);
        let mut decade = 1u64;
        while decade <= 10_000_000 {
            for mantissa in [1, 2, 5] {
                bounds.push(decade * mantissa);
            }
            decade *= 10;
        }
        Histogram::with_bounds(bounds)
    }

    /// Records one observation. A no-op without the `enabled` feature.
    #[inline]
    pub fn observe(&self, value: u64) {
        #[cfg(feature = "enabled")]
        {
            let idx = self.bounds.partition_point(|&b| b < value);
            self.counts[idx].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(value, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = value;
    }

    /// The bucket upper bounds.
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) counts; the final entry is the
    /// overflow bucket.
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_right_buckets() {
        let h = Histogram::with_bounds(vec![10, 100, 1000]);
        h.observe(5); // <= 10
        h.observe(10); // boundary value stays in its own bucket (le)
        h.observe(11); // <= 100
        h.observe(1000); // <= 1000
        h.observe(5000); // overflow
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5 + 10 + 11 + 1000 + 5000);
    }

    #[test]
    fn log_scale_covers_micro_to_tens_of_seconds() {
        let h = Histogram::log_scale_us();
        assert_eq!(h.bounds().first(), Some(&1));
        assert_eq!(h.bounds().last(), Some(&50_000_000));
        assert_eq!(h.bounds().len(), 24);
        assert!(h.bounds().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        let _ = Histogram::with_bounds(vec![10, 10]);
    }

    #[test]
    fn concurrent_observes_never_lose_counts() {
        let h = std::sync::Arc::new(Histogram::log_scale_us());
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.observe(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 8000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 8000);
    }
}
