//! sharing-obs — the workspace's observability substrate.
//!
//! The paper's SSim exists to *explain* where cycles go; this crate is
//! the measurement layer that lets every long-running path in the
//! reproduction say the same thing about itself, with no external
//! dependencies:
//!
//! * [`registry`] — a process-global table of named [`Counter`]s and
//!   [`Gauge`]s behind atomics, cheap enough for per-job accounting and
//!   rendered as Prometheus text exposition by
//!   [`registry::prometheus_text`];
//! * [`span`] — [`TraceBuffer`], an explicit, caller-owned buffer of
//!   [`SpanEvent`]s on **two clocks**: wall-clock spans (microseconds
//!   since the buffer was created) for daemons and CLI phases, and
//!   *logical-cycle* spans (simulated cycles) for the deterministic
//!   simulators, so tracing can never perturb bit-for-bit replay;
//! * [`chrome`] — exports a buffer as Chrome `trace_event` JSON,
//!   loadable in Perfetto (<https://ui.perfetto.dev>) or
//!   `about://tracing`;
//! * [`prom`] — a small Prometheus text-exposition writer plus the
//!   percentile helper the ssimd metrics endpoint uses;
//! * [`hist`] — [`Histogram`], fixed log-scale buckets behind atomic
//!   counters, exposed as Prometheus `*_bucket`/`*_sum`/`*_count`
//!   families by [`PromWriter::histogram`](prom::PromWriter::histogram);
//! * [`sink`] — [`SpanSink`], a bounded-buffer JSONL writer thread a
//!   [`TraceBuffer`] can stream into (one Chrome event per line,
//!   flushed per line), so long daemon runs and killed processes still
//!   yield usable traces; overflow drops are counted in
//!   `obs_spans_dropped_total`, never blocking the emitter.
//!
//! # The two-clock model
//!
//! Wall-clock spans answer "where did the *real* time go" (ssimd
//! queue-wait vs execute, sweep throughput). Logical spans answer
//! "where did the *simulated* time go" (datacenter epoch phases at
//! their cycle timestamps). Both land in the same [`TraceBuffer`] and
//! the Chrome exporter places them under two separate process tracks,
//! so a single trace file shows both timelines without conflating them.
//!
//! # Compile-out
//!
//! Everything that records is gated on the crate's `enabled` feature
//! (on by default). Built with `default-features = false`, every
//! `inc`/`add`/`record` call is an empty inline function and the
//! exporters emit empty traces — dependents keep compiling unchanged.
//!
//! # Example
//!
//! ```
//! use sharing_obs::{counter, TraceBuffer};
//!
//! let jobs = counter("demo_jobs_total");
//! jobs.inc();
//!
//! let trace = TraceBuffer::new();
//! {
//!     let _span = trace.span("phase-one", "demo", 0);
//!     // ... timed work ...
//! }
//! trace.record_logical("epoch 0", "sim", 0, 0, 10_000, Vec::new());
//! let json = trace.to_chrome_json();
//! assert!(json.contains("traceEvents"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod hist;
pub mod prom;
pub mod registry;
pub mod sink;
pub mod span;

pub use hist::Histogram;
pub use prom::{escape_label, inject_label, percentile, PromWriter};
pub use registry::{counter, gauge, prometheus_text, Counter, Gauge};
pub use sink::{jsonl_to_chrome, SpanSink, SPANS_DROPPED_COUNTER};
pub use span::{Clock, Phase, SpanEvent, SpanGuard, TraceBuffer};
