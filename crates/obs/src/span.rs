//! Span events and the caller-owned trace buffer.
//!
//! A [`TraceBuffer`] is explicit state, not a global: the CLI owns one
//! per invocation, ssimd owns one per daemon. That keeps traces scoped
//! to the run that produced them and keeps the deterministic simulators
//! honest — they only ever *append* events with logical-cycle
//! timestamps and never read a clock.

use sharing_json::Json;
use std::sync::Mutex;
use std::time::Instant;

/// Which timeline a span lives on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Clock {
    /// Real time, in microseconds since the buffer was created.
    Wall,
    /// Simulated time, in cycles. Deterministic by construction.
    Logical,
}

/// The Chrome `trace_event` phase an event maps to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// A complete span (`"ph":"X"`): has a start and a duration.
    Complete,
    /// An instant marker (`"ph":"i"`).
    Instant,
    /// A counter sample (`"ph":"C"`): `args` carry the series values.
    Counter,
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Display name.
    pub name: String,
    /// Category (comma-separated in Chrome tooling).
    pub cat: &'static str,
    /// Which clock `ts`/`dur` are measured on.
    pub clock: Clock,
    /// Event kind.
    pub phase: Phase,
    /// Start timestamp: wall µs since buffer creation, or logical cycles.
    pub ts: u64,
    /// Duration in the same unit as `ts` (0 for instants and counters).
    pub dur: u64,
    /// Track (Chrome `tid`) within the clock's process.
    pub track: u64,
    /// Structured payload, exported as the event's `args`.
    pub args: Vec<(String, Json)>,
}

impl SpanEvent {
    /// A complete logical-cycle span.
    #[must_use]
    pub fn logical(
        name: impl Into<String>,
        cat: &'static str,
        track: u64,
        ts_cycles: u64,
        dur_cycles: u64,
        args: Vec<(String, Json)>,
    ) -> Self {
        SpanEvent {
            name: name.into(),
            cat,
            clock: Clock::Logical,
            phase: Phase::Complete,
            ts: ts_cycles,
            dur: dur_cycles,
            track,
            args,
        }
    }

    /// A complete wall-clock span (timestamps relative to a buffer).
    #[must_use]
    pub fn wall(
        name: impl Into<String>,
        cat: &'static str,
        track: u64,
        ts_us: u64,
        dur_us: u64,
        args: Vec<(String, Json)>,
    ) -> Self {
        SpanEvent {
            name: name.into(),
            cat,
            clock: Clock::Wall,
            phase: Phase::Complete,
            ts: ts_us,
            dur: dur_us,
            track,
            args,
        }
    }

    /// Serializes the span for the wire (worker span batches travelling
    /// back with job replies). Round-trips through
    /// [`SpanEvent::from_json`].
    #[must_use]
    pub fn to_json(&self) -> Json {
        let clock = match self.clock {
            Clock::Wall => "wall",
            Clock::Logical => "logical",
        };
        let phase = match self.phase {
            Phase::Complete => "X",
            Phase::Instant => "i",
            Phase::Counter => "C",
        };
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("cat", Json::Str(self.cat.into())),
            ("clock", Json::Str(clock.into())),
            ("ph", Json::Str(phase.into())),
            ("ts", Json::Int(i128::from(self.ts))),
            ("dur", Json::Int(i128::from(self.dur))),
            ("track", Json::Int(i128::from(self.track))),
            ("args", Json::Obj(self.args.to_vec())),
        ])
    }

    /// Parses a span serialized by [`SpanEvent::to_json`]. The category
    /// is interned against the known set (unknown categories become
    /// `"remote"` — categories are display hints, not identity).
    #[must_use]
    pub fn from_json(v: &Json) -> Option<SpanEvent> {
        const KNOWN_CATS: &[&str] = &[
            "ssim", "ssimd", "sweep", "dispatch", "dc", "counter", "test", "remote",
        ];
        let cat_raw = v.get("cat")?.as_str()?;
        let cat = KNOWN_CATS
            .iter()
            .copied()
            .find(|k| *k == cat_raw)
            .unwrap_or("remote");
        let clock = match v.get("clock")?.as_str()? {
            "logical" => Clock::Logical,
            _ => Clock::Wall,
        };
        let phase = match v.get("ph")?.as_str()? {
            "i" => Phase::Instant,
            "C" => Phase::Counter,
            _ => Phase::Complete,
        };
        let as_u64 = |key: &str| -> Option<u64> { u64::try_from(v.get(key)?.as_int()?).ok() };
        let args = match v.get("args") {
            Some(Json::Obj(pairs)) => pairs.clone(),
            _ => Vec::new(),
        };
        Some(SpanEvent {
            name: v.get("name")?.as_str()?.to_string(),
            cat,
            clock,
            phase,
            ts: as_u64("ts")?,
            dur: as_u64("dur")?,
            track: as_u64("track")?,
            args,
        })
    }
}

/// An append-only buffer of [`SpanEvent`]s plus the wall-clock epoch
/// they are measured against.
#[derive(Debug)]
pub struct TraceBuffer {
    base: Instant,
    events: Mutex<Vec<SpanEvent>>,
    /// When attached, events stream to the sink instead of buffering —
    /// bounded memory for arbitrarily long daemon runs.
    sink: Mutex<Option<crate::sink::SpanSink>>,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceBuffer {
    /// A fresh buffer; wall timestamps are measured from this moment.
    #[must_use]
    pub fn new() -> Self {
        TraceBuffer {
            base: Instant::now(),
            events: Mutex::new(Vec::new()),
            sink: Mutex::new(None),
        }
    }

    /// Switches the buffer to streaming mode: every subsequent event
    /// goes to `sink` (one JSONL line each) instead of accumulating in
    /// RAM. Events already buffered are flushed to the sink first so a
    /// daemon that attaches at startup loses nothing.
    pub fn attach_sink(&self, sink: crate::sink::SpanSink) {
        let backlog: Vec<SpanEvent> = {
            let mut events = self.events.lock().expect("trace lock");
            std::mem::take(&mut *events)
        };
        for ev in backlog {
            sink.emit(ev);
        }
        *self.sink.lock().expect("sink lock") = Some(sink);
    }

    /// Whether a streaming sink is attached.
    #[must_use]
    pub fn has_sink(&self) -> bool {
        self.sink.lock().expect("sink lock").is_some()
    }

    /// Detaches and closes the streaming sink, flushing the file. A
    /// no-op when no sink is attached.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error the writer thread hit.
    pub fn close_sink(&self) -> std::io::Result<()> {
        match self.sink.lock().expect("sink lock").take() {
            Some(sink) => sink.close(),
            None => Ok(()),
        }
    }

    /// Microseconds of wall time since the buffer was created.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.base.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Appends one event — or streams it when a sink is attached. A
    /// no-op without the `enabled` feature.
    pub fn record(&self, ev: SpanEvent) {
        #[cfg(feature = "enabled")]
        {
            if let Some(sink) = self.sink.lock().expect("sink lock").as_ref() {
                sink.emit(ev);
                return;
            }
            self.events.lock().expect("trace lock").push(ev);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = ev;
    }

    /// Appends a complete logical-cycle span.
    pub fn record_logical(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        track: u64,
        ts_cycles: u64,
        dur_cycles: u64,
        args: Vec<(String, Json)>,
    ) {
        self.record(SpanEvent::logical(
            name, cat, track, ts_cycles, dur_cycles, args,
        ));
    }

    /// Appends a wall-clock counter sample (one series per arg).
    pub fn record_counter(&self, name: impl Into<String>, track: u64, args: Vec<(String, Json)>) {
        self.record(SpanEvent {
            name: name.into(),
            cat: "counter",
            clock: Clock::Wall,
            phase: Phase::Counter,
            ts: self.now_us(),
            dur: 0,
            track,
            args,
        });
    }

    /// Starts a wall-clock span; the span is recorded when the returned
    /// guard drops.
    #[must_use]
    pub fn span(&self, name: impl Into<String>, cat: &'static str, track: u64) -> SpanGuard<'_> {
        SpanGuard {
            buf: self,
            name: name.into(),
            cat,
            track,
            start_us: self.now_us(),
            args: Vec::new(),
        }
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace lock").len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the recorded events.
    #[must_use]
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        self.events.lock().expect("trace lock").clone()
    }

    /// Exports the buffer as Chrome `trace_event` JSON (see
    /// [`crate::chrome`]).
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        crate::chrome::to_chrome_json(&self.snapshot())
    }

    /// Writes the Chrome trace JSON to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_chrome(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }
}

/// RAII guard for a wall-clock span; records on drop.
pub struct SpanGuard<'a> {
    buf: &'a TraceBuffer,
    name: String,
    cat: &'static str,
    track: u64,
    start_us: u64,
    args: Vec<(String, Json)>,
}

impl SpanGuard<'_> {
    /// Attaches a structured argument (builder style).
    #[must_use]
    pub fn arg(mut self, key: impl Into<String>, value: Json) -> Self {
        self.args.push((key.into(), value));
        self
    }

    /// Attaches a structured argument in place (for mid-span data).
    pub fn add_arg(&mut self, key: impl Into<String>, value: Json) {
        self.args.push((key.into(), value));
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end = self.buf.now_us();
        self.buf.record(SpanEvent {
            name: std::mem::take(&mut self.name),
            cat: self.cat,
            clock: Clock::Wall,
            phase: Phase::Complete,
            ts: self.start_us,
            dur: end.saturating_sub(self.start_us),
            track: self.track,
            args: std::mem::take(&mut self.args),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_guard_records_on_drop_with_args() {
        let buf = TraceBuffer::new();
        {
            let mut s = buf.span("work", "test", 3).arg("k", Json::Int(1));
            s.add_arg("v", Json::Str("x".into()));
        }
        let evs = buf.snapshot();
        assert_eq!(evs.len(), 1);
        let ev = &evs[0];
        assert_eq!(ev.name, "work");
        assert_eq!(ev.clock, Clock::Wall);
        assert_eq!(ev.phase, Phase::Complete);
        assert_eq!(ev.track, 3);
        assert_eq!(ev.args.len(), 2);
    }

    #[test]
    fn logical_spans_keep_their_cycle_timestamps() {
        let buf = TraceBuffer::new();
        buf.record_logical("epoch 4", "dc", 0, 40_000, 10_000, Vec::new());
        let evs = buf.snapshot();
        assert_eq!(evs[0].ts, 40_000);
        assert_eq!(evs[0].dur, 10_000);
        assert_eq!(evs[0].clock, Clock::Logical);
    }

    #[test]
    fn wall_timestamps_are_monotonic() {
        let buf = TraceBuffer::new();
        let a = buf.now_us();
        let b = buf.now_us();
        assert!(b >= a);
    }

    #[test]
    fn span_event_round_trips_through_wire_json() {
        let ev = SpanEvent::wall(
            "simulate job",
            "ssimd",
            7,
            1234,
            5678,
            vec![
                ("kind".into(), Json::Str("run".into())),
                ("trace".into(), Json::Int(42)),
            ],
        );
        let back = SpanEvent::from_json(&ev.to_json()).unwrap();
        assert_eq!(back.name, ev.name);
        assert_eq!(back.cat, "ssimd");
        assert_eq!(back.clock, ev.clock);
        assert_eq!(back.phase, ev.phase);
        assert_eq!((back.ts, back.dur, back.track), (ev.ts, ev.dur, ev.track));
        assert_eq!(back.args.len(), 2);

        // Unknown categories intern to "remote" rather than leaking.
        let mut odd = ev.to_json();
        if let Json::Obj(pairs) = &mut odd {
            for (k, v) in pairs.iter_mut() {
                if k == "cat" {
                    *v = Json::Str("something-else".into());
                }
            }
        }
        assert_eq!(SpanEvent::from_json(&odd).unwrap().cat, "remote");
    }

    #[test]
    #[cfg(feature = "enabled")]
    fn attached_sink_streams_instead_of_buffering() {
        let path = std::env::temp_dir()
            .join(format!("obs-span-sink-{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let buf = TraceBuffer::new();
        buf.record_logical("buffered-before", "test", 0, 0, 1, Vec::new());
        buf.attach_sink(crate::sink::SpanSink::create(&path).unwrap());
        assert!(buf.has_sink());
        buf.record_logical("streamed-after", "test", 0, 1, 1, Vec::new());
        assert!(buf.is_empty(), "streaming mode must not grow the buffer");
        buf.close_sink().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("buffered-before"), "backlog flushed: {text}");
        assert!(text.contains("streamed-after"));
        assert_eq!(text.lines().count(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
