//! Streaming span sink: a bounded-buffer JSONL writer thread.
//!
//! [`TraceBuffer`](crate::TraceBuffer) accumulates spans in RAM and dumps
//! one Chrome-JSON blob at exit — fine for a CLI invocation, useless for
//! a daemon that runs for days or gets SIGKILLed by a chaos plan. A
//! [`SpanSink`] replaces the dump: spans are handed to a bounded channel
//! and a dedicated writer thread appends them to a file as JSON Lines,
//! one Chrome `trace_event` object per line, flushed per line. Killing
//! the process at any instant leaves a file that is truncated at worst
//! mid-way through its final line; every complete line is a valid event.
//!
//! The channel is bounded so a slow disk can never block the simulation
//! or dispatch hot paths: when the buffer is full the span is dropped
//! and counted in the process-global `obs_spans_dropped_total` counter
//! instead. [`jsonl_to_chrome`] re-wraps a (possibly truncated) JSONL
//! stream into the Chrome JSON Object Format for Perfetto.

use crate::span::SpanEvent;
use std::io::Write as _;
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::thread::JoinHandle;

/// Default bound on spans buffered between emitters and the writer.
pub const DEFAULT_SINK_CAPACITY: usize = 4096;

/// Name of the drop counter in the process-global registry.
pub const SPANS_DROPPED_COUNTER: &str = "obs_spans_dropped_total";

/// A handle to the writer thread. Emitting never blocks; closing (or
/// dropping) the sink drains the channel and flushes the file.
#[derive(Debug)]
pub struct SpanSink {
    tx: Option<SyncSender<SpanEvent>>,
    writer: Option<JoinHandle<std::io::Result<()>>>,
}

impl SpanSink {
    /// Opens (truncating) `path` and starts the writer thread with the
    /// default channel capacity.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create(path: &str) -> std::io::Result<Self> {
        SpanSink::with_capacity(path, DEFAULT_SINK_CAPACITY)
    }

    /// Opens (truncating) `path` with an explicit channel capacity
    /// (tests use tiny capacities to exercise the overflow path).
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn with_capacity(path: &str, capacity: usize) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        let (tx, rx) = sync_channel::<SpanEvent>(capacity.max(1));
        let writer = std::thread::Builder::new()
            .name("obs-span-sink".into())
            .spawn(move || {
                let mut out = std::io::BufWriter::new(file);
                while let Ok(ev) = rx.recv() {
                    // One complete event object per line, flushed before
                    // the next recv: a SIGKILL between lines loses
                    // nothing, and mid-write loses only the last line.
                    writeln!(out, "{}", crate::chrome::event_json(&ev))?;
                    out.flush()?;
                }
                out.flush()
            })
            .expect("spawn span-sink writer");
        Ok(SpanSink {
            tx: Some(tx),
            writer: Some(writer),
        })
    }

    /// Hands one event to the writer. Never blocks: a full buffer (or a
    /// dead writer) drops the event, bumps `obs_spans_dropped_total`,
    /// and returns `false`.
    pub fn emit(&self, ev: SpanEvent) -> bool {
        let Some(tx) = &self.tx else {
            return false;
        };
        match tx.try_send(ev) {
            Ok(()) => true,
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                crate::registry::counter(SPANS_DROPPED_COUNTER).inc();
                false
            }
        }
    }

    /// Closes the channel, drains the writer, and flushes the file.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error the writer thread hit.
    pub fn close(mut self) -> std::io::Result<()> {
        self.shutdown()
    }

    fn shutdown(&mut self) -> std::io::Result<()> {
        drop(self.tx.take());
        match self.writer.take() {
            Some(handle) => handle.join().unwrap_or(Ok(())),
            None => Ok(()),
        }
    }
}

impl Drop for SpanSink {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// Re-wraps a JSONL span stream (as written by [`SpanSink`]) into the
/// Chrome JSON Object Format, prepending the two process-name metadata
/// records. An incomplete trailing line — the signature of a killed
/// writer — is skipped, as is anything else that does not parse; the
/// count of skipped lines is returned alongside the document.
#[must_use]
pub fn jsonl_to_chrome(jsonl: &str) -> (String, usize) {
    use sharing_json::Json;
    let mut events: Vec<Json> = vec![
        crate::chrome::metadata_json(crate::chrome::WALL_PID, "wall clock (us)"),
        crate::chrome::metadata_json(crate::chrome::LOGICAL_PID, "logical cycles"),
    ];
    let mut skipped = 0usize;
    for line in jsonl.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match Json::parse(line) {
            Ok(v) => events.push(v),
            Err(_) => skipped += 1,
        }
    }
    let doc = Json::obj(vec![
        ("displayTimeUnit", Json::Str("ms".into())),
        ("traceEvents", Json::Arr(events)),
    ])
    .to_string();
    (doc, skipped)
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use sharing_json::Json;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("obs-sink-{}-{name}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    fn ev(name: &str, ts: u64) -> SpanEvent {
        SpanEvent::wall(name, "test", 1, ts, 5, Vec::new())
    }

    #[test]
    fn writes_one_valid_json_line_per_event() {
        let path = tmp("basic");
        let sink = SpanSink::create(&path).unwrap();
        for i in 0..100u64 {
            assert!(sink.emit(ev(&format!("span-{i}"), i)));
        }
        sink.close().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 100);
        for (i, line) in lines.iter().enumerate() {
            let v = Json::parse(line).expect("every line is a complete event");
            assert_eq!(
                v.get("name").and_then(Json::as_str),
                Some(format!("span-{i}").as_str())
            );
            assert_eq!(v.get("ph").and_then(Json::as_str), Some("X"));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_hammer_yields_valid_jsonl() {
        let path = tmp("hammer");
        let sink = std::sync::Arc::new(SpanSink::with_capacity(&path, 100_000).unwrap());
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let sink = std::sync::Arc::clone(&sink);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        sink.emit(ev(&format!("t{t}-{i}"), i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        std::sync::Arc::try_unwrap(sink)
            .expect("all emitters done")
            .close()
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 8 * 500, "no interleaving, no lost lines");
        for line in lines {
            Json::parse(line).expect("concurrent emission must not interleave lines");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn overflow_drops_and_counts_instead_of_blocking() {
        let path = tmp("overflow");
        // Capacity 1 and a writer racing the emitter: flood it so at
        // least one span must be dropped, then verify the counter moved
        // by exactly the number of `false` returns.
        let sink = SpanSink::with_capacity(&path, 1).unwrap();
        let before = crate::registry::counter(SPANS_DROPPED_COUNTER).get();
        let mut dropped = 0u64;
        for i in 0..10_000u64 {
            if !sink.emit(ev("flood", i)) {
                dropped += 1;
            }
        }
        sink.close().unwrap();
        let after = crate::registry::counter(SPANS_DROPPED_COUNTER).get();
        assert_eq!(after - before, dropped);
        let written = std::fs::read_to_string(&path).unwrap().lines().count() as u64;
        assert_eq!(written + dropped, 10_000, "every span written or counted");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_stream_recovers_every_complete_line() {
        let path = tmp("truncated");
        let sink = SpanSink::create(&path).unwrap();
        for i in 0..50u64 {
            sink.emit(ev(&format!("s{i}"), i));
        }
        sink.close().unwrap();
        // Simulate a SIGKILL mid-write: chop the file mid final line.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 7);
        let text = String::from_utf8(bytes).unwrap();
        let (doc, skipped) = jsonl_to_chrome(&text);
        assert_eq!(skipped, 1, "only the chopped line is lost");
        let v = Json::parse(&doc).unwrap();
        let events = v.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2 + 49, "metadata + every complete line");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn emit_after_close_is_rejected() {
        let path = tmp("closed");
        let mut sink = SpanSink::create(&path).unwrap();
        sink.shutdown().unwrap();
        assert!(!sink.emit(ev("late", 0)), "closed sink refuses spans");
        let _ = std::fs::remove_file(&path);
    }
}
