//! Reuse-distance analysis.
//!
//! The cache-size sensitivity curves of the paper's Figure 13 are, at
//! bottom, reuse-distance distributions: a fully-associative LRU cache of
//! `C` lines hits exactly the accesses whose reuse distance (distinct
//! lines touched since the previous access to the same line) is below `C`.
//! This module computes that distribution for a trace, both as a
//! calibration diagnostic for the synthetic workloads and as an analytic
//! predictor: [`ReuseProfile::hit_rate`] gives the LRU hit rate at any
//! capacity without running the simulator.

use crate::trace::Trace;
use std::collections::HashMap;

/// Reuse-distance distribution of a trace's memory accesses, over
/// 64-byte lines, with power-of-two distance buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReuseProfile {
    /// `buckets[k]` counts accesses with reuse distance in
    /// `[2^k, 2^(k+1))` lines (bucket 0 holds distances 0 and 1).
    buckets: Vec<u64>,
    /// First-ever touches of a line (infinite reuse distance).
    cold: u64,
    /// Total memory accesses analysed.
    total: u64,
}

impl ReuseProfile {
    /// Computes the profile of a trace.
    ///
    /// Uses the classic stack-distance algorithm over an LRU stack;
    /// quadratic in the worst case but traces here are ≤10⁶ accesses with
    /// shallow working sets, so it is fast in practice.
    #[must_use]
    pub fn of(trace: &Trace) -> Self {
        let mut stack: Vec<u64> = Vec::new(); // MRU at the end
        let mut positions: HashMap<u64, usize> = HashMap::new();
        let mut buckets = vec![0u64; 40];
        let mut cold = 0u64;
        let mut total = 0u64;
        for inst in trace.iter() {
            let Some(addr) = inst.kind.mem_addr() else {
                continue;
            };
            let line = addr >> 6;
            total += 1;
            if let Some(&pos) = positions.get(&line) {
                let distance = stack.len() - 1 - pos;
                let bucket = (64 - (distance.max(1) as u64).leading_zeros() - 1) as usize;
                let last = buckets.len() - 1;
                buckets[bucket.min(last)] += 1;
                // Move to MRU.
                stack.remove(pos);
                for p in positions.values_mut() {
                    if *p > pos {
                        *p -= 1;
                    }
                }
            } else {
                cold += 1;
            }
            positions.insert(line, stack.len());
            stack.push(line);
        }
        ReuseProfile {
            buckets,
            cold,
            total,
        }
    }

    /// Total memory accesses analysed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// First-touch (cold) accesses.
    #[must_use]
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Predicted hit rate of a fully-associative LRU cache holding
    /// `capacity_lines` lines: the fraction of accesses with reuse
    /// distance below the capacity.
    #[must_use]
    pub fn hit_rate(&self, capacity_lines: u64) -> f64 {
        if self.total == 0 || capacity_lines == 0 {
            return 0.0;
        }
        let mut hits = 0u64;
        for (k, &count) in self.buckets.iter().enumerate() {
            let bucket_lo = 1u64 << k;
            if bucket_lo < capacity_lines {
                hits += count;
            }
        }
        hits as f64 / self.total as f64
    }

    /// The smallest power-of-two line capacity achieving at least
    /// `target` of the maximum achievable hit rate — the workload's
    /// working-set knee.
    #[must_use]
    pub fn working_set_lines(&self, target: f64) -> u64 {
        let max = self.hit_rate(u64::MAX);
        if max <= 0.0 {
            return 0;
        }
        let mut cap = 1u64;
        while self.hit_rate(cap) < target * max && cap < (1 << 41) {
            cap *= 2;
        }
        cap
    }

    /// Bucketed counts, for reports: `(distance_lower_bound, count)`.
    pub fn histogram(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (1u64 << k, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;
    use crate::trace::TraceSpec;
    use sharing_isa::{ArchReg, DynInst, MemSize};

    fn load(pc: u64, addr: u64) -> DynInst {
        DynInst::load(pc, ArchReg::new(1), None, addr, MemSize::B8)
    }

    #[test]
    fn cold_misses_are_counted() {
        let t = Trace::from_insts("t", vec![load(0, 0x000), load(4, 0x040), load(8, 0x080)]);
        let p = ReuseProfile::of(&t);
        assert_eq!(p.total(), 3);
        assert_eq!(p.cold(), 3);
        assert_eq!(p.hit_rate(1024), 0.0, "no reuse at all");
    }

    #[test]
    fn immediate_reuse_hits_in_any_cache() {
        let t = Trace::from_insts("t", vec![load(0, 0x100), load(4, 0x108)]);
        let p = ReuseProfile::of(&t);
        assert_eq!(p.cold(), 1);
        assert!(p.hit_rate(2) > 0.0);
    }

    #[test]
    fn cyclic_walk_has_a_capacity_knee() {
        // Walk 64 lines cyclically, 4 passes.
        let mut insts = Vec::new();
        let mut pc = 0;
        for _ in 0..4 {
            for l in 0..64u64 {
                insts.push(load(pc, l * 64));
                pc += 4;
            }
        }
        let p = ReuseProfile::of(&Trace::from_insts("cyclic", insts));
        // Below the working set: LRU thrash predicts ~0 hits.
        assert_eq!(p.hit_rate(16), 0.0);
        // At/above the working set: the three re-walks hit.
        assert!(p.hit_rate(128) > 0.70, "{}", p.hit_rate(128));
        let knee = p.working_set_lines(0.99);
        assert!((64..=256).contains(&knee), "knee at {knee} lines");
    }

    #[test]
    fn hit_rate_is_monotone_in_capacity() {
        let t = Benchmark::Gcc.generate(&TraceSpec::new(10_000, 3));
        let p = ReuseProfile::of(&t);
        let mut last = 0.0;
        for cap in [1u64, 8, 64, 512, 4096, 1 << 20] {
            let h = p.hit_rate(cap);
            assert!(h >= last, "hit rate must grow with capacity");
            last = h;
        }
        assert!(p.total() > 0);
    }

    #[test]
    fn calibration_sanity_omnetpp_has_deeper_reuse_than_hmmer() {
        let spec = TraceSpec::new(20_000, 3);
        let h = ReuseProfile::of(&Benchmark::Hmmer.generate(&spec));
        let o = ReuseProfile::of(&Benchmark::Omnetpp.generate(&spec));
        // hmmer's knee fits a small cache; omnetpp's does not.
        assert!(
            h.working_set_lines(0.9) < o.working_set_lines(0.9),
            "hmmer {} vs omnetpp {}",
            h.working_set_lines(0.9),
            o.working_set_lines(0.9)
        );
    }

    #[test]
    fn histogram_covers_all_reused_accesses() {
        let t = Benchmark::Bzip.generate(&TraceSpec::new(10_000, 3));
        let p = ReuseProfile::of(&t);
        let bucketed: u64 = p.histogram().map(|(_, c)| c).sum();
        assert_eq!(bucketed + p.cold(), p.total());
    }
}
