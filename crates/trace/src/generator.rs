//! Deterministic synthetic program generator.
//!
//! The generator builds a *static program* — a set of loops whose bodies are
//! instruction templates — from a [`WorkloadProfile`] and a seed, then walks
//! that program to emit a committed-path dynamic trace. Because the static
//! program has stable PCs, branch biases, and loop structure, the simulator's
//! bimodal predictor, BTB, and caches see realistic, trainable behaviour
//! rather than white noise:
//!
//! * loop-end branches are taken for every iteration but the last → highly
//!   predictable, one mispredict per loop exit;
//! * "hard" branches flip with a per-execution coin → mispredict at
//!   ≈ `2·p·(1-p)` under a bimodal predictor;
//! * streaming memory slots advance a cursor through their region →
//!   spatial locality proportional to the stride;
//! * random memory slots sample their region uniformly → hit rate tracks
//!   the cache-size : region-size ratio, producing the paper's Figure 13
//!   sensitivity shapes;
//! * pointer-chase loads form a serial dependence chain through a dedicated
//!   register, capping memory-level parallelism like mcf/omnetpp.

use crate::profile::{AccessPattern, WorkloadProfile};
use crate::rng::Rng64;
use crate::trace::{ThreadedTrace, Trace, TraceSpec};
use sharing_isa::{ArchReg, DynInst, InstKind, MemSize};

/// Register assignment conventions used by generated programs.
mod regs {
    /// Chains occupy r0..r23 (cap on `WorkloadProfile::chains`).
    pub const MAX_CHAINS: usize = 24;
    /// The pointer-chase serial register.
    pub const PTR: u8 = 30;
    /// Scratch base register for address operands of non-chasing accesses.
    pub const BASE: u8 = 29;
    /// The induction register: updated once per loop iteration by a pure
    /// ALU op, and read by loop-exit tests and most forward branches, so
    /// control mostly resolves fast — like real loop-counter code.
    pub const IND: u8 = 26;
}

/// Arithmetic flavour of an ALU slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AluOp {
    Alu,
    Mul,
    Div,
}

/// Address behaviour of a memory slot.
#[derive(Clone, Copy, Debug)]
enum SlotMode {
    Stream { stride: u64, cursor: u64 },
    Random,
}

/// One instruction template in a loop body.
#[derive(Clone, Debug)]
enum Slot {
    Alu {
        op: AluOp,
        chain: u8,
        extra_src: Option<u8>,
    },
    Load {
        region: usize,
        mode: SlotMode,
        chain: u8,
        chase: bool,
    },
    Store {
        region: usize,
        mode: SlotMode,
        data_chain: u8,
    },
    /// Pure-ALU induction update (`r26 <- f(r26)`), once per loop body.
    InductionUpdate,
    /// Conditional forward branch skipping `skip` following slots when
    /// taken. `cond` is the register tested. Outcomes come from one of
    /// three processes: a Bernoulli coin (`taken_p`, `pattern: None`), or a
    /// repeating history pattern of the given period (`pattern: Some(k)`,
    /// taken on the last execution of each period) — the kind of
    /// correlated behaviour only history-based predictors capture.
    Branch {
        cond: u8,
        skip: usize,
        taken_p: f64,
        pattern: Option<u8>,
    },
    /// The backward loop-closing branch (always the last slot); tests the
    /// induction register.
    LoopEnd,
}

#[derive(Clone, Debug)]
struct Loop {
    base_pc: u64,
    slots: Vec<Slot>,
    iters: usize,
}

impl Loop {
    fn slot_pc(&self, idx: usize) -> u64 {
        self.base_pc + 4 * idx as u64
    }
}

/// Where each memory region lives in the flat address space.
#[derive(Clone, Debug)]
struct RegionLayout {
    base: u64,
    bytes: u64,
    access: AccessPattern,
    /// Cumulative, normalized selection weight.
    cum_weight: f64,
}

const SHARED_REGION_BASE: u64 = 0x7000_0000_0000;
const SHARED_REGION_BYTES: u64 = (1 << 20) / sharing_isa::CAPACITY_SCALE;
/// Per-thread offset keeps private working sets disjoint between threads.
const THREAD_STRIDE: u64 = 1 << 40;
const FIRST_LOOP_PC: u64 = 0x1_0000;

/// Deterministic generator producing [`Trace`]s from a [`WorkloadProfile`].
///
/// # Example
///
/// ```
/// use sharing_trace::{ProgramGenerator, TraceSpec, WorkloadProfile};
///
/// let profile = WorkloadProfile::builder("toy").chains(2).build();
/// let gen = ProgramGenerator::new(&profile, TraceSpec::new(1_000, 7)).unwrap();
/// let t = gen.generate_single();
/// assert_eq!(t.len(), 1_000);
/// // Same inputs, same trace:
/// let t2 = ProgramGenerator::new(&profile, TraceSpec::new(1_000, 7)).unwrap().generate_single();
/// assert_eq!(t, t2);
/// ```
#[derive(Clone, Debug)]
pub struct ProgramGenerator {
    profile: WorkloadProfile,
    spec: TraceSpec,
}

impl ProgramGenerator {
    /// Creates a generator after validating the profile.
    ///
    /// # Errors
    ///
    /// Returns the profile's validation error, or a complaint if `chains`
    /// exceeds the register budget, or if the spec length is zero.
    pub fn new(profile: &WorkloadProfile, spec: TraceSpec) -> Result<Self, String> {
        profile.validate()?;
        if profile.chains > regs::MAX_CHAINS {
            return Err(format!(
                "at most {} chains supported (got {})",
                regs::MAX_CHAINS,
                profile.chains
            ));
        }
        if spec.len == 0 {
            return Err("trace length must be positive".to_string());
        }
        Ok(ProgramGenerator {
            profile: profile.clone(),
            spec,
        })
    }

    /// The profile this generator was built from.
    #[must_use]
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Generates the full (possibly multi-threaded) workload.
    #[must_use]
    pub fn generate(&self) -> ThreadedTrace {
        let threads: Vec<Trace> = (0..self.profile.threads)
            .map(|tid| self.generate_thread(tid))
            .collect();
        ThreadedTrace::new(self.profile.name.clone(), threads)
    }

    /// Generates thread 0 only (convenience for single-threaded workloads).
    #[must_use]
    pub fn generate_single(&self) -> Trace {
        self.generate_thread(0)
    }

    fn generate_thread(&self, tid: usize) -> Trace {
        let p = &self.profile;
        // The static program is identical across threads (same binary); only
        // the dynamic randomness (hard-branch outcomes, random addresses)
        // and the private address offset differ.
        let mut prog_rng = Rng64::seed_from_u64(self.spec.seed ^ 0xA5A5_0000);
        let (loops, regions) = self.build_program(&mut prog_rng);
        let mut dyn_rng =
            Rng64::seed_from_u64(self.spec.seed.wrapping_add(0x1357 * (tid as u64 + 1)));
        let mut walker = Walker {
            profile: p,
            loops: &loops,
            regions: &regions,
            rng: &mut dyn_rng,
            tid: tid as u64,
            stream_cursors: Vec::new(),
            burst_state: Vec::new(),
            out: Vec::with_capacity(self.spec.len),
        };
        walker.run(self.spec.len);
        Trace::from_insts(p.name.clone(), walker.out)
    }

    /// Builds the static program: loops, slots, and the region layout.
    fn build_program(&self, rng: &mut Rng64) -> (Vec<Loop>, Vec<RegionLayout>) {
        let p = &self.profile;
        let regions = layout_regions(p);
        let mut loops = Vec::with_capacity(p.n_loops);
        let mut base_pc = FIRST_LOOP_PC;
        for _ in 0..p.n_loops {
            let body = p.loop_body;
            let mut slots = Vec::with_capacity(body);
            for idx in 0..body {
                if idx == 0 {
                    slots.push(Slot::InductionUpdate);
                    continue;
                }
                if idx == body - 1 {
                    slots.push(Slot::LoopEnd);
                    continue;
                }
                slots.push(self.sample_slot(rng, &regions, idx, body));
            }
            // Jitter iteration counts ±25% so loops don't beat in lockstep.
            let jitter = (p.loop_iters / 4).max(1);
            let iters =
                (p.loop_iters - jitter.min(p.loop_iters - 1)) + rng.usize_inclusive(0, 2 * jitter);
            loops.push(Loop {
                base_pc,
                slots,
                iters: iters.max(1),
            });
            // Body plus the inter-loop jump slot.
            base_pc += 4 * (p.loop_body as u64 + 1);
        }
        (loops, regions)
    }

    fn sample_slot(
        &self,
        rng: &mut Rng64,
        regions: &[RegionLayout],
        idx: usize,
        body: usize,
    ) -> Slot {
        let p = &self.profile;
        let roll: f64 = rng.f64();
        if roll < p.branch_frac && idx + 2 < body {
            // Forward conditional branch. Skip must stay inside the body
            // (never skipping the loop-end slot).
            let max_skip = (body - 2 - idx).min(3);
            let skip = rng.usize_inclusive(1, max_skip.max(1));
            let hard = rng.bool(p.hard_branch_frac);
            let taken_p = if hard {
                p.hard_taken
            } else if rng.bool(0.5) {
                0.04
            } else {
                0.96
            };
            // Hard (data-dependent) branches test the chain being computed
            // right here (a just-produced value); easy branches mostly test
            // the fast induction value.
            let cond = if hard || rng.bool(0.35) {
                ((idx / 3) % p.chains) as u8
            } else {
                regs::IND
            };
            // A share of the hard branches follow a short repeating
            // pattern instead of a coin: correlated, history-predictable.
            let pattern =
                (hard && rng.bool(p.pattern_branch_frac)).then(|| rng.range_inclusive(3, 6) as u8);
            return Slot::Branch {
                cond,
                skip,
                taken_p,
                pattern,
            };
        }
        // Dependent operations cluster in program order, the way compiled
        // expression code does: a short run of slots extends one chain
        // before the body moves on to the next. Under PC-interleaved fetch
        // this keeps most dataflow edges on the same or an adjacent Slice,
        // matching the locality real schedules exhibit.
        let run_chain = ((idx / 3) % p.chains) as u8;
        if roll < p.branch_frac + p.mem_frac {
            let region = pick_region(regions, rng.f64());
            let mode = match regions[region].access {
                AccessPattern::Streaming { stride } => SlotMode::Stream {
                    stride,
                    cursor: rng.below(regions[region].bytes) & !7,
                },
                AccessPattern::Random => SlotMode::Random,
            };
            if rng.bool(p.store_frac) {
                return Slot::Store {
                    region,
                    mode,
                    data_chain: run_chain,
                };
            }
            let chase = rng.bool(p.pointer_chase_frac);
            return Slot::Load {
                region,
                mode,
                chain: run_chain,
                chase,
            };
        }
        let op_roll: f64 = rng.f64();
        let op = if op_roll < p.div_frac {
            AluOp::Div
        } else if op_roll < p.div_frac + p.mul_frac {
            AluOp::Mul
        } else {
            AluOp::Alu
        };
        let chain = run_chain;
        // Occasionally read a second register: usually the cheap induction
        // value, rarely another chain — heavy cross-chain coupling would
        // tie every chain to the globally slowest value, which real
        // dataflow graphs do not do.
        let extra_src = rng
            .bool(0.12)
            .then(|| {
                if rng.bool(0.3) {
                    rng.below(p.chains as u64) as u8
                } else {
                    regs::IND
                }
            })
            .filter(|&c| c != chain);
        Slot::Alu {
            op,
            chain,
            extra_src,
        }
    }
}

fn layout_regions(p: &WorkloadProfile) -> Vec<RegionLayout> {
    let total: f64 = p.regions.iter().map(|r| r.weight).sum();
    let mut cum = 0.0;
    let mut base = 0x1000_0000u64;
    let mut out = Vec::with_capacity(p.regions.len());
    for r in &p.regions {
        cum += r.weight / total;
        // Region sizes are nominal; the modeled footprint is co-scaled
        // with the cache hierarchy (see `sharing_isa::CAPACITY_SCALE`).
        let effective = (r.bytes / sharing_isa::CAPACITY_SCALE).max(64);
        out.push(RegionLayout {
            base,
            bytes: effective,
            access: r.access,
            cum_weight: cum,
        });
        // Pad generously so regions never alias.
        base += r.bytes.next_power_of_two().max(1 << 20) * 2;
    }
    // Guard against float drift: the last region must cover roll = 1.0.
    if let Some(last) = out.last_mut() {
        last.cum_weight = 1.0;
    }
    out
}

fn pick_region(regions: &[RegionLayout], roll: f64) -> usize {
    regions
        .iter()
        .position(|r| roll <= r.cum_weight)
        .unwrap_or(regions.len() - 1)
}

/// Dynamic-trace walker over the static program.
struct Walker<'a> {
    profile: &'a WorkloadProfile,
    loops: &'a [Loop],
    regions: &'a [RegionLayout],
    rng: &'a mut Rng64,
    tid: u64,
    /// Streaming cursor per (loop, slot), lazily initialized from the
    /// template cursor. Indexed `loop * body + slot`.
    stream_cursors: Vec<Option<u64>>,
    /// Spatial-burst state per (loop, slot) for random regions:
    /// `(current line offset, accesses left in this line)`.
    burst_state: Vec<(u64, u32)>,
    out: Vec<DynInst>,
}

impl Walker<'_> {
    fn run(&mut self, len: usize) {
        let body = self.profile.loop_body;
        self.stream_cursors = vec![None; self.loops.len() * body];
        self.burst_state = vec![(0, 0); self.loops.len() * body];
        let mut cur_loop = 0usize;
        let mut iter = 0usize;
        let mut slot = 0usize;
        while self.out.len() < len {
            let l = &self.loops[cur_loop];
            let pc = l.slot_pc(slot);
            match &l.slots[slot] {
                Slot::Alu {
                    op,
                    chain,
                    extra_src,
                } => {
                    let dst = ArchReg::new(*chain);
                    let mut srcs = vec![dst];
                    if let Some(e) = extra_src {
                        srcs.push(ArchReg::new(*e));
                    }
                    let inst = match op {
                        AluOp::Alu => DynInst::alu(pc, dst, &srcs),
                        AluOp::Mul => DynInst::mul(pc, dst, &srcs),
                        AluOp::Div => DynInst {
                            kind: InstKind::IntDiv,
                            ..DynInst::mul(pc, dst, &srcs)
                        },
                    };
                    self.out.push(inst);
                    slot += 1;
                }
                Slot::Load {
                    region,
                    mode,
                    chain,
                    chase,
                } => {
                    let addr = self.next_addr(cur_loop, slot, *region, mode);
                    let (dst, base) = if *chase {
                        (ArchReg::new(regs::PTR), Some(ArchReg::new(regs::PTR)))
                    } else {
                        (ArchReg::new(*chain), Some(ArchReg::new(regs::BASE)))
                    };
                    self.out
                        .push(DynInst::load(pc, dst, base, addr, MemSize::B8));
                    slot += 1;
                }
                Slot::Store {
                    region,
                    mode,
                    data_chain,
                } => {
                    let addr = self.next_addr(cur_loop, slot, *region, mode);
                    self.out.push(DynInst::store(
                        pc,
                        ArchReg::new(*data_chain),
                        Some(ArchReg::new(regs::BASE)),
                        addr,
                        MemSize::B8,
                    ));
                    slot += 1;
                }
                Slot::InductionUpdate => {
                    let ind = ArchReg::new(regs::IND);
                    self.out.push(DynInst::alu(pc, ind, &[ind]));
                    slot += 1;
                }
                Slot::Branch {
                    cond,
                    skip,
                    taken_p,
                    pattern,
                } => {
                    let taken = match pattern {
                        // Iteration-correlated: taken on the last iteration
                        // of each period (e.g. a condition true every 4th
                        // element), so outcomes are periodic in the loop
                        // index — learnable from branch history.
                        Some(period) => iter as u64 % u64::from(*period) == u64::from(*period) - 1,
                        None => self.rng.bool(*taken_p),
                    };
                    let target = l.slot_pc(slot + skip + 1);
                    self.out
                        .push(DynInst::branch(pc, ArchReg::new(*cond), taken, target));
                    slot += if taken { skip + 1 } else { 1 };
                }
                Slot::LoopEnd => {
                    iter += 1;
                    let taken = iter < l.iters;
                    self.out.push(DynInst::branch(
                        pc,
                        ArchReg::new(regs::IND),
                        taken,
                        l.base_pc,
                    ));
                    if taken {
                        slot = 0;
                    } else {
                        // Fall through to the inter-loop jump slot.
                        iter = 0;
                        let next = (cur_loop + 1) % self.loops.len();
                        self.out
                            .push(DynInst::jump(pc + 4, self.loops[next].base_pc));
                        cur_loop = next;
                        slot = 0;
                    }
                }
            }
        }
        self.out.truncate(len);
    }

    fn next_addr(&mut self, loop_idx: usize, slot: usize, region: usize, mode: &SlotMode) -> u64 {
        let p = self.profile;
        // Shared accesses (multi-threaded workloads) hit a common region so
        // VCores contend and cohere over the same lines.
        if p.threads > 1 && self.rng.bool(p.shared_frac) {
            let off = self.rng.below(SHARED_REGION_BYTES) & !7;
            return SHARED_REGION_BASE + off;
        }
        let r = &self.regions[region];
        let off = match *mode {
            SlotMode::Stream { stride, cursor } => {
                let key = loop_idx * p.loop_body + slot;
                let cur = self.stream_cursors[key].get_or_insert(cursor);
                let off = *cur;
                *cur = (*cur + stride) % r.bytes;
                off & !7
            }
            SlotMode::Random => {
                // Spatial burst: revisit the current line a few times before
                // jumping, like field accesses within one structure.
                let key = loop_idx * p.loop_body + slot;
                let (line_off, left) = self.burst_state[key];
                if left > 0 {
                    self.burst_state[key] = (line_off, left - 1);
                    line_off + (self.rng.below(64) & !7)
                } else {
                    let new_line = (self.rng.below(r.bytes) >> 6) << 6;
                    self.burst_state[key] = (new_line, p.spatial_burst as u32 - 1);
                    new_line + (self.rng.below(64) & !7)
                }
            }
        };
        r.base + off + self.tid * THREAD_STRIDE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::MemRegion;

    fn toy(chains: usize) -> WorkloadProfile {
        WorkloadProfile::builder("toy")
            .chains(chains)
            .mem_frac(0.3)
            .branch_frac(0.15)
            .region(MemRegion::random(256 << 10, 1.0))
            .build()
    }

    #[test]
    fn generation_is_deterministic() {
        let p = toy(4);
        let spec = TraceSpec::new(5_000, 99);
        let a = ProgramGenerator::new(&p, spec).unwrap().generate_single();
        let b = ProgramGenerator::new(&p, spec).unwrap().generate_single();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let p = toy(4);
        let a = ProgramGenerator::new(&p, TraceSpec::new(5_000, 1))
            .unwrap()
            .generate_single();
        let b = ProgramGenerator::new(&p, TraceSpec::new(5_000, 2))
            .unwrap()
            .generate_single();
        assert_ne!(a, b);
    }

    #[test]
    fn exact_requested_length() {
        let p = toy(2);
        for len in [1, 17, 1000] {
            let t = ProgramGenerator::new(&p, TraceSpec::new(len, 3))
                .unwrap()
                .generate_single();
            assert_eq!(t.len(), len);
        }
    }

    #[test]
    fn control_flow_is_consistent() {
        // Every instruction's next_pc must equal the following
        // instruction's pc: the committed path is a real path.
        let p = toy(4);
        let t = ProgramGenerator::new(&p, TraceSpec::new(20_000, 5))
            .unwrap()
            .generate_single();
        for w in t.insts().windows(2) {
            assert_eq!(w[0].next_pc(), w[1].pc, "control-flow break after {}", w[0]);
        }
    }

    #[test]
    fn instruction_mix_tracks_profile() {
        let p = WorkloadProfile::builder("mix")
            .chains(4)
            .mem_frac(0.4)
            .branch_frac(0.1)
            .build();
        let t = ProgramGenerator::new(&p, TraceSpec::new(50_000, 11))
            .unwrap()
            .generate_single();
        let s = t.stats();
        assert!((s.mem_frac - 0.4).abs() < 0.08, "mem_frac {}", s.mem_frac);
        assert!(
            (s.branch_frac - 0.1).abs() < 0.08,
            "branch_frac {}",
            s.branch_frac
        );
    }

    #[test]
    fn threads_generate_disjoint_private_spaces() {
        let p = WorkloadProfile::builder("mt")
            .chains(2)
            .threads(4, 0.0)
            .build();
        let tt = ProgramGenerator::new(&p, TraceSpec::new(2_000, 7))
            .unwrap()
            .generate();
        assert_eq!(tt.thread_count(), 4);
        let spaces: Vec<std::collections::HashSet<u64>> = tt
            .threads()
            .iter()
            .map(|t| {
                t.iter()
                    .filter_map(|i| i.kind.mem_addr())
                    .map(|a| a >> 40)
                    .collect()
            })
            .collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(spaces[i].is_disjoint(&spaces[j]));
            }
        }
    }

    #[test]
    fn shared_fraction_produces_shared_addresses() {
        let p = WorkloadProfile::builder("mt")
            .chains(2)
            .threads(2, 0.5)
            .build();
        let tt = ProgramGenerator::new(&p, TraceSpec::new(5_000, 7))
            .unwrap()
            .generate();
        for t in tt.threads() {
            let shared = t
                .iter()
                .filter_map(|i| i.kind.mem_addr())
                .filter(|a| {
                    (SHARED_REGION_BASE..SHARED_REGION_BASE + SHARED_REGION_BYTES).contains(a)
                })
                .count();
            assert!(shared > 0, "expected shared-region traffic");
        }
    }

    #[test]
    fn rejects_too_many_chains() {
        let p = toy(4);
        let mut bad = p.clone();
        bad.chains = 64;
        assert!(ProgramGenerator::new(&bad, TraceSpec::default()).is_err());
    }

    #[test]
    fn rejects_zero_length() {
        let p = toy(2);
        assert!(ProgramGenerator::new(&p, TraceSpec::new(0, 1)).is_err());
    }

    #[test]
    fn pointer_chase_loads_serialize_through_ptr_reg() {
        let p = WorkloadProfile::builder("chase")
            .chains(2)
            .mem_frac(0.5)
            .pointer_chase(1.0)
            .region(MemRegion::random(8 << 20, 1.0))
            .build();
        let t = ProgramGenerator::new(&p, TraceSpec::new(10_000, 13))
            .unwrap()
            .generate_single();
        let ptr = ArchReg::new(super::regs::PTR);
        let chasing = t
            .iter()
            .filter(|i| i.kind.is_load() && i.dst == Some(ptr) && i.srcs[0] == Some(ptr))
            .count();
        assert!(chasing > 1_000, "chasing loads: {chasing}");
    }
}

#[cfg(test)]
mod pattern_tests {
    use super::*;
    use crate::profile::WorkloadProfile;
    use sharing_isa::InstKind;
    use std::collections::HashMap;

    #[test]
    fn pattern_branches_repeat_their_period() {
        let p = WorkloadProfile::builder("pat")
            .chains(2)
            .branch_frac(0.25)
            .hard_branches(1.0, 0.5)
            .pattern_branches(1.0)
            .build();
        let t = ProgramGenerator::new(&p, TraceSpec::new(30_000, 3))
            .unwrap()
            .generate_single();
        // Group outcomes by branch PC; patterned branches must be exactly
        // periodic (ignore loop-end branches, whose period is the
        // iteration count).
        let mut outcomes: HashMap<u64, Vec<bool>> = HashMap::new();
        for i in t.iter() {
            if let InstKind::Branch { taken, .. } = i.kind {
                outcomes.entry(i.pc).or_default().push(taken);
            }
        }
        let mut periodic = 0;
        for seq in outcomes.values().filter(|v| v.len() >= 12) {
            for period in 3..=6usize {
                let ok = seq
                    .iter()
                    .enumerate()
                    .all(|(i, &t)| t == ((i % period) == period - 1));
                if ok {
                    periodic += 1;
                    break;
                }
            }
        }
        assert!(
            periodic >= 3,
            "expected several periodic branches, got {periodic}"
        );
    }

    #[test]
    fn pattern_share_zero_means_no_patterns_needed_for_validity() {
        let p = WorkloadProfile::builder("nopat")
            .chains(2)
            .pattern_branches(0.0)
            .build();
        assert!(p.validate().is_ok());
        let t = ProgramGenerator::new(&p, TraceSpec::new(2_000, 3))
            .unwrap()
            .generate_single();
        assert_eq!(t.len(), 2_000);
    }
}
