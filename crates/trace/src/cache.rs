//! Memoized trace generation.
//!
//! A trace depends only on the workload and its [`TraceSpec`] — never on
//! the VCore shape it will be simulated at — so a 72-shape sweep needs
//! **one** generation, not 72. The [`TraceCache`] memoizes generated
//! traces behind [`Arc`]s keyed by `(workload, len, seed)`: every sweep
//! consumer (the CLI grid, `SuiteSurfaces`, ssimd's executor) shares one
//! copy per key, across threads.
//!
//! Concurrency contract: when N threads request the same missing key at
//! once, exactly one runs the generator; the rest block on the same slot
//! and receive clones of the same `Arc`. Hits and misses are counted both
//! on the cache instance (for tests) and in the global `sharing-obs`
//! registry as `trace_cache_hits_total` / `trace_cache_misses_total` /
//! `trace_cache_generations_total` (for ssimd's metrics endpoint).
//!
//! # Example
//!
//! ```
//! use sharing_trace::{Benchmark, TraceCache, TraceSpec};
//!
//! let cache = TraceCache::new();
//! let spec = TraceSpec::new(2_000, 7);
//! let a = cache.single(Benchmark::Gcc, &spec);
//! let b = cache.single(Benchmark::Gcc, &spec);
//! assert!(std::sync::Arc::ptr_eq(&a, &b));
//! assert_eq!(cache.generations(), 1);
//! ```

use crate::benchmarks::Benchmark;
use crate::generator::ProgramGenerator;
use crate::profile::WorkloadProfile;
use crate::trace::{ThreadedTrace, Trace, TraceSpec};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default number of memoized traces. A standard-length trace is a few
/// megabytes, so the default bounds a long-lived daemon to tens of
/// megabytes while still covering a full suite sweep (15 benchmarks)
/// with room for mixed lengths and seeds.
pub const DEFAULT_CAPACITY: usize = 64;

/// What a workload generated: sweeps mix single-threaded SPEC-style
/// traces and threaded PARSEC-style traces, and keys encode which kind
/// they want, so a slot never holds the wrong one.
#[derive(Clone)]
enum Generated {
    Single(Arc<Trace>),
    Threaded(Arc<ThreadedTrace>),
}

/// Cache key. `workload` is the benchmark name, or the serialized profile
/// prefixed with `"profile:"` so user profiles can never alias a built-in
/// benchmark name.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
struct Key {
    workload: String,
    threaded: bool,
    len: usize,
    seed: u64,
}

struct Inner {
    slots: HashMap<Key, Arc<OnceLock<Generated>>>,
    /// Insertion order, for bounded-capacity eviction.
    order: VecDeque<Key>,
}

/// A bounded, thread-safe memo table for generated traces.
pub struct TraceCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    generations: AtomicU64,
}

impl Default for TraceCache {
    fn default() -> Self {
        TraceCache::new()
    }
}

fn observe(hit: bool) {
    static HITS: OnceLock<&'static sharing_obs::Counter> = OnceLock::new();
    static MISSES: OnceLock<&'static sharing_obs::Counter> = OnceLock::new();
    if hit {
        HITS.get_or_init(|| sharing_obs::counter("trace_cache_hits_total"))
            .add(1);
    } else {
        MISSES
            .get_or_init(|| sharing_obs::counter("trace_cache_misses_total"))
            .add(1);
    }
}

fn observe_generation() {
    static GENS: OnceLock<&'static sharing_obs::Counter> = OnceLock::new();
    GENS.get_or_init(|| sharing_obs::counter("trace_cache_generations_total"))
        .add(1);
}

impl TraceCache {
    /// Creates a cache with [`DEFAULT_CAPACITY`] slots.
    #[must_use]
    pub fn new() -> Self {
        TraceCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a cache bounded to `capacity` memoized traces; the oldest
    /// entry is dropped when a new key would exceed it (outstanding
    /// `Arc`s keep evicted traces alive until their holders finish).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace cache capacity must be positive");
        TraceCache {
            capacity,
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                order: VecDeque::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            generations: AtomicU64::new(0),
        }
    }

    /// The process-wide shared cache. The CLI, `SuiteSurfaces`, and ssimd
    /// all route through this instance so a daemon serving repeated jobs
    /// for the same workload generates its trace once.
    #[must_use]
    pub fn global() -> &'static TraceCache {
        static GLOBAL: OnceLock<TraceCache> = OnceLock::new();
        GLOBAL.get_or_init(TraceCache::new)
    }

    /// Looks up (or creates) the slot for `key` and resolves it. Exactly
    /// one caller runs `make`; concurrent requesters block on the slot's
    /// `OnceLock` and clone the same value.
    fn resolve(&self, key: Key, make: impl FnOnce() -> Generated) -> Generated {
        let slot = {
            let mut inner = self.inner.lock().expect("trace cache lock");
            if let Some(slot) = inner.slots.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                observe(true);
                Arc::clone(slot)
            } else {
                self.misses.fetch_add(1, Ordering::Relaxed);
                observe(false);
                while inner.slots.len() >= self.capacity {
                    let Some(old) = inner.order.pop_front() else {
                        break;
                    };
                    inner.slots.remove(&old);
                }
                let slot = Arc::new(OnceLock::new());
                inner.slots.insert(key.clone(), Arc::clone(&slot));
                inner.order.push_back(key);
                slot
            }
        };
        slot.get_or_init(|| {
            self.generations.fetch_add(1, Ordering::Relaxed);
            observe_generation();
            make()
        })
        .clone()
    }

    /// A single-threaded benchmark trace, generated at most once per
    /// `(benchmark, len, seed)`.
    #[must_use]
    pub fn single(&self, bench: Benchmark, spec: &TraceSpec) -> Arc<Trace> {
        let key = Key {
            workload: bench.name().to_string(),
            threaded: false,
            len: spec.len,
            seed: spec.seed,
        };
        match self.resolve(key, || Generated::Single(Arc::new(bench.generate(spec)))) {
            Generated::Single(t) => t,
            Generated::Threaded(_) => unreachable!("single key resolved to threaded trace"),
        }
    }

    /// A threaded (PARSEC-style) benchmark trace, generated at most once
    /// per `(benchmark, len, seed)`.
    #[must_use]
    pub fn threaded(&self, bench: Benchmark, spec: &TraceSpec) -> Arc<ThreadedTrace> {
        let key = Key {
            workload: bench.name().to_string(),
            threaded: true,
            len: spec.len,
            seed: spec.seed,
        };
        match self.resolve(key, || {
            Generated::Threaded(Arc::new(bench.generate_threaded(spec)))
        }) {
            Generated::Threaded(t) => t,
            Generated::Single(_) => unreachable!("threaded key resolved to single trace"),
        }
    }

    fn profile_key(profile: &WorkloadProfile, threaded: bool, spec: &TraceSpec) -> Key {
        Key {
            // The serialized profile is the identity: two profiles that
            // differ in any field get different keys, and the `profile:`
            // prefix keeps them disjoint from benchmark names.
            workload: format!("profile:{}", sharing_json::to_string(profile)),
            threaded,
            len: spec.len,
            seed: spec.seed,
        }
    }

    /// A single-threaded trace for a user [`WorkloadProfile`], keyed by
    /// the profile's serialized content.
    ///
    /// # Errors
    ///
    /// Propagates profile validation errors from [`ProgramGenerator::new`].
    pub fn profile_single(
        &self,
        profile: &WorkloadProfile,
        spec: &TraceSpec,
    ) -> Result<Arc<Trace>, String> {
        // Validate outside the slot so errors surface to this caller
        // instead of poisoning a shared entry.
        let generator = ProgramGenerator::new(profile, *spec)?;
        let key = Self::profile_key(profile, false, spec);
        match self.resolve(key, || {
            Generated::Single(Arc::new(generator.generate_single()))
        }) {
            Generated::Single(t) => Ok(t),
            Generated::Threaded(_) => unreachable!("single key resolved to threaded trace"),
        }
    }

    /// A threaded trace for a user [`WorkloadProfile`], keyed by the
    /// profile's serialized content.
    ///
    /// # Errors
    ///
    /// Propagates profile validation errors from [`ProgramGenerator::new`].
    pub fn profile_threaded(
        &self,
        profile: &WorkloadProfile,
        spec: &TraceSpec,
    ) -> Result<Arc<ThreadedTrace>, String> {
        let generator = ProgramGenerator::new(profile, *spec)?;
        let key = Self::profile_key(profile, true, spec);
        match self.resolve(key, || Generated::Threaded(Arc::new(generator.generate()))) {
            Generated::Threaded(t) => Ok(t),
            Generated::Single(_) => unreachable!("threaded key resolved to single trace"),
        }
    }

    /// Lookups that found an existing slot.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that created a new slot.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Generator runs — under concurrency this can be smaller than
    /// [`TraceCache::misses`] would suggest only if a slot was evicted
    /// mid-flight; otherwise one generation per miss.
    #[must_use]
    pub fn generations(&self) -> u64 {
        self.generations.load(Ordering::Relaxed)
    }

    /// Memoized traces currently held.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace cache lock").slots.len()
    }

    /// Whether the cache holds no traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_lookups_share_one_generation() {
        let cache = TraceCache::new();
        let spec = TraceSpec::new(1_000, 42);
        let a = cache.single(Benchmark::Gcc, &spec);
        let b = cache.single(Benchmark::Gcc, &spec);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.generations(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let cache = TraceCache::new();
        let spec = TraceSpec::new(1_000, 42);
        let a = cache.single(Benchmark::Gcc, &spec);
        let b = cache.single(Benchmark::Mcf, &spec);
        let c = cache.single(Benchmark::Gcc, &TraceSpec::new(1_000, 43));
        let d = cache.single(Benchmark::Gcc, &TraceSpec::new(1_001, 42));
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(cache.generations(), 4);
    }

    #[test]
    fn cached_trace_matches_fresh_generation() {
        let cache = TraceCache::new();
        let spec = TraceSpec::new(2_000, 7);
        let cached = cache.single(Benchmark::Omnetpp, &spec);
        let fresh = Benchmark::Omnetpp.generate(&spec);
        assert_eq!(cached.insts(), fresh.insts());
    }

    #[test]
    fn threaded_and_single_keys_are_disjoint() {
        let cache = TraceCache::new();
        let spec = TraceSpec::new(1_000, 1);
        let _ = cache.single(Benchmark::Swaptions, &spec);
        let t = cache.threaded(Benchmark::Swaptions, &spec);
        assert!(t.thread_count() > 1);
        assert_eq!(cache.generations(), 2);
    }

    #[test]
    fn hammer_many_threads_one_generation() {
        let cache = TraceCache::new();
        let spec = TraceSpec::new(5_000, 0xBEEF);
        let ptrs: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| Arc::as_ptr(&cache.single(Benchmark::Sjeng, &spec)) as usize))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(
            ptrs.windows(2).all(|w| w[0] == w[1]),
            "all threads must share one Arc"
        );
        assert_eq!(cache.generations(), 1, "generator must run exactly once");
        assert_eq!(cache.hits() + cache.misses(), 8);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let cache = TraceCache::with_capacity(2);
        let spec = TraceSpec::new(500, 1);
        let first = cache.single(Benchmark::Gcc, &spec);
        let _ = cache.single(Benchmark::Mcf, &spec);
        let _ = cache.single(Benchmark::Astar, &spec); // evicts gcc
        assert_eq!(cache.len(), 2);
        let again = cache.single(Benchmark::Gcc, &spec);
        assert!(
            !Arc::ptr_eq(&first, &again),
            "evicted entry must be regenerated"
        );
        assert_eq!(cache.generations(), 4);
    }

    #[test]
    fn profile_lookups_memoize_and_validate() {
        let cache = TraceCache::new();
        let spec = TraceSpec::new(1_000, 3);
        let profile = Benchmark::Gcc.profile();
        let a = cache.profile_single(&profile, &spec).unwrap();
        let b = cache.profile_single(&profile, &spec).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.generations(), 1);
        let mut bad = profile;
        bad.threads = 0;
        assert!(cache.profile_single(&bad, &spec).is_err());
    }
}
