//! Summary statistics over a trace.

use sharing_isa::{DynInst, InstKind};
use std::collections::HashSet;

/// Instruction-mix and footprint statistics for a trace.
///
/// # Example
///
/// ```
/// use sharing_isa::{ArchReg, DynInst, MemSize};
/// use sharing_trace::TraceStats;
///
/// let insts = vec![
///     DynInst::alu(0x0, ArchReg::new(1), &[]),
///     DynInst::load(0x4, ArchReg::new(2), None, 0x100, MemSize::B8),
///     DynInst::branch(0x8, ArchReg::new(1), true, 0x0),
/// ];
/// let s = TraceStats::from_insts(&insts);
/// assert_eq!(s.total, 3);
/// assert_eq!(s.loads, 1);
/// assert_eq!(s.branches, 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceStats {
    /// Total dynamic instructions.
    pub total: u64,
    /// Plain ALU operations (including nops).
    pub alu: u64,
    /// Multiplies.
    pub mul: u64,
    /// Divides.
    pub div: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Unconditional jumps (direct + indirect).
    pub jumps: u64,
    /// Taken conditional branches.
    pub taken_branches: u64,
    /// Fraction of instructions that are memory operations.
    pub mem_frac: f64,
    /// Fraction of instructions that are conditional branches.
    pub branch_frac: f64,
    /// Distinct 64-byte data lines touched.
    pub data_lines: u64,
    /// Distinct instruction PCs (static footprint).
    pub static_insts: u64,
    /// Approximate data working set in bytes (distinct lines × 64).
    pub data_footprint: u64,
}

impl TraceStats {
    /// Computes statistics from an instruction slice.
    #[must_use]
    pub fn from_insts(insts: &[DynInst]) -> Self {
        let mut s = TraceStats::default();
        let mut lines: HashSet<u64> = HashSet::new();
        let mut pcs: HashSet<u64> = HashSet::new();
        for i in insts {
            s.total += 1;
            pcs.insert(i.pc);
            match i.kind {
                InstKind::IntAlu | InstKind::Nop => s.alu += 1,
                InstKind::IntMul => s.mul += 1,
                InstKind::IntDiv => s.div += 1,
                InstKind::Load { addr, .. } => {
                    s.loads += 1;
                    lines.insert(addr >> 6);
                }
                InstKind::Store { addr, .. } => {
                    s.stores += 1;
                    lines.insert(addr >> 6);
                }
                InstKind::Branch { taken, .. } => {
                    s.branches += 1;
                    if taken {
                        s.taken_branches += 1;
                    }
                }
                InstKind::Jump { .. } | InstKind::JumpIndirect { .. } => s.jumps += 1,
            }
        }
        if s.total > 0 {
            s.mem_frac = (s.loads + s.stores) as f64 / s.total as f64;
            s.branch_frac = s.branches as f64 / s.total as f64;
        }
        s.data_lines = lines.len() as u64;
        s.static_insts = pcs.len() as u64;
        s.data_footprint = s.data_lines * 64;
        s
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} insts: {:.1}% mem ({} ld / {} st), {:.1}% br ({:.1}% taken), footprint {} KB, {} static insts",
            self.total,
            100.0 * self.mem_frac,
            self.loads,
            self.stores,
            100.0 * self.branch_frac,
            if self.branches > 0 {
                100.0 * self.taken_branches as f64 / self.branches as f64
            } else {
                0.0
            },
            self.data_footprint >> 10,
            self.static_insts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharing_isa::{ArchReg, MemSize};

    #[test]
    fn empty_trace_yields_zeroes() {
        let s = TraceStats::from_insts(&[]);
        assert_eq!(s.total, 0);
        assert_eq!(s.mem_frac, 0.0);
    }

    #[test]
    fn counts_every_class() {
        let r = ArchReg::new(1);
        let insts = vec![
            DynInst::alu(0, r, &[]),
            DynInst::mul(4, r, &[]),
            DynInst {
                kind: InstKind::IntDiv,
                ..DynInst::mul(8, r, &[])
            },
            DynInst::load(12, r, None, 0x40, MemSize::B8),
            DynInst::store(16, r, None, 0x80, MemSize::B8),
            DynInst::branch(20, r, true, 0x0),
            DynInst::branch(24, r, false, 0x0),
            DynInst::jump(28, 0x0),
            DynInst::nop(32),
        ];
        let s = TraceStats::from_insts(&insts);
        assert_eq!(s.total, 9);
        assert_eq!(s.alu, 2); // alu + nop
        assert_eq!(s.mul, 1);
        assert_eq!(s.div, 1);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.branches, 2);
        assert_eq!(s.taken_branches, 1);
        assert_eq!(s.jumps, 1);
        assert_eq!(s.data_lines, 2);
        assert_eq!(s.static_insts, 9);
    }

    #[test]
    fn footprint_counts_distinct_lines() {
        let r = ArchReg::new(1);
        // Two addresses in the same 64-byte line, one in another.
        let insts = vec![
            DynInst::load(0, r, None, 0x100, MemSize::B8),
            DynInst::load(4, r, None, 0x108, MemSize::B8),
            DynInst::load(8, r, None, 0x140, MemSize::B8),
        ];
        let s = TraceStats::from_insts(&insts);
        assert_eq!(s.data_lines, 2);
        assert_eq!(s.data_footprint, 128);
    }

    #[test]
    fn display_is_nonempty() {
        let s = TraceStats::from_insts(&[DynInst::nop(0)]);
        assert!(s.to_string().contains("insts"));
    }
}
