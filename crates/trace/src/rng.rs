//! A small deterministic PRNG for workload generation.
//!
//! The generator previously used `rand::StdRng`; the workspace must build
//! with no external dependencies, so this module provides the few
//! operations the generator needs on top of **xoshiro256++** seeded
//! through **SplitMix64** — the standard construction (Blackman &
//! Vigna), deterministic across platforms and Rust versions, which is
//! what trace reproducibility (and the `ssimd` result cache) relies on.

/// xoshiro256++ seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expands the seed into the full state; it cannot
        // produce the all-zero state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng64 {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output.
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 random bits).
    #[must_use]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[must_use]
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniform integer in `[0, bound)`. `bound` must be positive.
    ///
    /// Uses Lemire's multiply-shift rejection method: unbiased, and
    /// usually a single multiply.
    #[must_use]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        let mut x = self.next_u64();
        let mut m = (u128::from(x)) * (u128::from(bound));
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (u128::from(x)) * (u128::from(bound));
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    #[must_use]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive({lo}, {hi})");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// A uniform `usize` in `[lo, hi]`.
    #[must_use]
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        self.range_inclusive(lo as u64, hi as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(Rng64::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn below_is_roughly_uniform_and_in_range() {
        let mut r = Rng64::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v = r.below(10) as usize;
            counts[v] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut r = Rng64::seed_from_u64(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match r.range_inclusive(5, 8) {
                5 => lo_seen = true,
                8 => hi_seen = true,
                6 | 7 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn bool_probability_tracks_p() {
        let mut r = Rng64::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
    }
}
