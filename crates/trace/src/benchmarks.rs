//! The paper's benchmark suite as calibrated synthetic profiles.
//!
//! §5.2 of the paper evaluates the complete SPEC CINT2006 suite, a static
//! Apache web-serving workload, and a subset of PARSEC; the figures and
//! tables use the fifteen workloads listed in Figure 12. Each enum variant
//! here carries a [`WorkloadProfile`] whose parameters are chosen to
//! reproduce that workload's *published behaviour shape*:
//!
//! * **Slice scalability** (Fig 12) via `chains` (intrinsic ILP),
//!   pointer-chasing, and branch hardness;
//! * **L2 sensitivity** (Fig 13) via the region model — omnetpp/mcf keep
//!   improving with megabytes of L2, astar misses at every size in range,
//!   libquantum streams, hmmer/gobmk fit in small caches;
//! * **PARSEC** workloads run four threads with per-thread ILP ≈ 2 so their
//!   multi-Slice speedup is bounded near 2 (§5.3).
//!
//! The calibration rationale is recorded per benchmark below and in
//! `EXPERIMENTS.md`.

use crate::generator::ProgramGenerator;
use crate::profile::{MemRegion, WorkloadProfile};
use crate::trace::{ThreadedTrace, Trace, TraceSpec};
use std::fmt;

/// A workload from the paper's evaluation suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Benchmark {
    Apache,
    Bzip,
    Gcc,
    Astar,
    Libquantum,
    Perlbench,
    Sjeng,
    Hmmer,
    Gobmk,
    Mcf,
    Omnetpp,
    H264ref,
    Dedup,
    Swaptions,
    Ferret,
}

/// All fifteen workloads, in the paper's Figure 12 legend order.
pub const ALL_BENCHMARKS: [Benchmark; 15] = [
    Benchmark::Apache,
    Benchmark::Bzip,
    Benchmark::Gcc,
    Benchmark::Astar,
    Benchmark::Libquantum,
    Benchmark::Perlbench,
    Benchmark::Sjeng,
    Benchmark::Hmmer,
    Benchmark::Gobmk,
    Benchmark::Mcf,
    Benchmark::Omnetpp,
    Benchmark::H264ref,
    Benchmark::Dedup,
    Benchmark::Swaptions,
    Benchmark::Ferret,
];

/// The single-threaded (SPEC + Apache) subset.
pub const SPEC_BENCHMARKS: [Benchmark; 12] = [
    Benchmark::Apache,
    Benchmark::Bzip,
    Benchmark::Gcc,
    Benchmark::Astar,
    Benchmark::Libquantum,
    Benchmark::Perlbench,
    Benchmark::Sjeng,
    Benchmark::Hmmer,
    Benchmark::Gobmk,
    Benchmark::Mcf,
    Benchmark::Omnetpp,
    Benchmark::H264ref,
];

/// The multi-threaded PARSEC subset (run with four threads, §5.3).
pub const PARSEC_BENCHMARKS: [Benchmark; 3] =
    [Benchmark::Dedup, Benchmark::Swaptions, Benchmark::Ferret];

impl sharing_json::ToJson for Benchmark {
    fn to_json(&self) -> sharing_json::Json {
        sharing_json::Json::Str(self.name().to_string())
    }
}

impl sharing_json::FromJson for Benchmark {
    fn from_json(v: &sharing_json::Json) -> Result<Self, sharing_json::JsonError> {
        let name = v.as_str().ok_or_else(|| {
            sharing_json::JsonError::msg(format!("expected benchmark name, got {v}"))
        })?;
        Benchmark::from_name(name)
            .ok_or_else(|| sharing_json::JsonError::msg(format!("unknown benchmark `{name}`")))
    }
}

impl Benchmark {
    /// The benchmark's lowercase name as printed in the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Apache => "apache",
            Benchmark::Bzip => "bzip",
            Benchmark::Gcc => "gcc",
            Benchmark::Astar => "astar",
            Benchmark::Libquantum => "libquantum",
            Benchmark::Perlbench => "perlbench",
            Benchmark::Sjeng => "sjeng",
            Benchmark::Hmmer => "hmmer",
            Benchmark::Gobmk => "gobmk",
            Benchmark::Mcf => "mcf",
            Benchmark::Omnetpp => "omnetpp",
            Benchmark::H264ref => "h264ref",
            Benchmark::Dedup => "dedup",
            Benchmark::Swaptions => "swaptions",
            Benchmark::Ferret => "ferret",
        }
    }

    /// Looks a benchmark up by its printed name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Benchmark> {
        ALL_BENCHMARKS.iter().copied().find(|b| b.name() == name)
    }

    /// Whether this is one of the four-thread PARSEC workloads.
    #[must_use]
    pub fn is_parsec(self) -> bool {
        PARSEC_BENCHMARKS.contains(&self)
    }

    /// The calibrated synthetic profile.
    #[must_use]
    pub fn profile(self) -> WorkloadProfile {
        let b = WorkloadProfile::builder(self.name());
        match self {
            // Web serving: throughput-friendly request handling; a hot
            // per-request stack, warm document cache worth ≈1 MB. Scales to
            // a handful of Slices.
            Benchmark::Apache => b
                .chains(5)
                .mem_frac(0.30)
                .store_frac(0.35)
                .branch_frac(0.17)
                .hard_branches(0.12, 0.5)
                .region(MemRegion::random(8 << 10, 0.55))
                .region(MemRegion::random(64 << 10, 0.15))
                .region(MemRegion::random(1 << 20, 0.20))
                .region(MemRegion::streaming(4 << 20, 0.10, 64))
                .loops(16, 72, 40)
                .build(),
            // Compression: modest ILP, fairly predictable inner loops, and
            // a block-sized working set around 256 KB that the algorithm
            // re-scans pass after pass — a sharp LRU capacity knee right
            // where the paper's Figure 14 puts bzip's utility peak.
            Benchmark::Bzip => b
                .chains(2)
                .mem_frac(0.34)
                .store_frac(0.35)
                .branch_frac(0.14)
                .hard_branches(0.15, 0.5)
                .region(MemRegion::random(8 << 10, 0.60))
                .region(MemRegion::streaming(224 << 10, 0.40, 48))
                .loops(10, 64, 60)
                .build(),
            // Compiler: medium ILP that rewards ≈4 Slices, an IR working
            // set worth ≈0.5–1 MB of L2, branchy traversal code.
            Benchmark::Gcc => b
                .chains(6)
                .mem_frac(0.32)
                .store_frac(0.32)
                .branch_frac(0.18)
                .hard_branches(0.12, 0.5)
                .region(MemRegion::random(8 << 10, 0.62))
                .region(MemRegion::random(700 << 10, 0.26))
                .region(MemRegion::random(4 << 20, 0.12))
                .spatial_burst(8)
                .loops(20, 80, 35)
                .build(),
            // Path search over a graph far larger than any L2 in range:
            // pointer chasing, cache-insensitive from 0–8 MB.
            Benchmark::Astar => b
                .chains(2)
                .mem_frac(0.36)
                .store_frac(0.20)
                .branch_frac(0.15)
                .hard_branches(0.22, 0.5)
                .pointer_chase(0.45)
                .region(MemRegion::random(8 << 10, 0.45))
                .region(MemRegion::random(64 << 20, 0.55))
                .loops(8, 56, 80)
                .build(),
            // Quantum-register simulation: long vector sweeps, huge ILP,
            // almost no branches, streams past every cache size.
            Benchmark::Libquantum => b
                .chains(8)
                .mem_frac(0.30)
                .store_frac(0.40)
                .branch_frac(0.05)
                .hard_branches(0.02, 0.5)
                .region(MemRegion::random(4 << 10, 0.15))
                .region(MemRegion::streaming(32 << 20, 0.85, 16))
                .loops(4, 96, 200)
                .build(),
            // Interpreter: branchy dispatch, moderate ILP, bytecode +
            // object heap worth ≈0.5 MB.
            Benchmark::Perlbench => b
                .chains(4)
                .mem_frac(0.30)
                .store_frac(0.30)
                .branch_frac(0.20)
                .hard_branches(0.16, 0.5)
                .region(MemRegion::random(8 << 10, 0.60))
                .region(MemRegion::random(512 << 10, 0.40))
                .loops(24, 64, 30)
                .build(),
            // Game-tree search: very hard branches, small board state,
            // mid ILP.
            Benchmark::Sjeng => b
                .chains(3)
                .mem_frac(0.26)
                .store_frac(0.30)
                .branch_frac(0.18)
                .hard_branches(0.30, 0.5)
                .region(MemRegion::random(8 << 10, 0.65))
                .region(MemRegion::random(1 << 20, 0.35))
                .loops(14, 60, 45)
                .build(),
            // Profile HMM search: tight inner loop over a small score
            // matrix — fits in the L1/64 KB L2, serial recurrences keep it
            // on one Slice (Table 4 / §5.9 "small core" workload).
            // The serial cell-to-cell dependence of the dynamic-programming
            // recurrence is modeled with chased loads: little to gain from
            // extra Slices.
            Benchmark::Hmmer => b
                .chains(1)
                .mem_frac(0.36)
                .store_frac(0.30)
                .branch_frac(0.08)
                .hard_branches(0.03, 0.5)
                .pointer_chase(0.55)
                .region(MemRegion::random(8 << 10, 0.85))
                .region(MemRegion::random(48 << 10, 0.15))
                .loops(6, 72, 120)
                .build(),
            // Go engine: hard branches, board + pattern tables worth
            // ≈256 KB, rewards a 3-Slice "big core" (§5.9).
            Benchmark::Gobmk => b
                .chains(4)
                .mem_frac(0.28)
                .store_frac(0.30)
                .branch_frac(0.17)
                .hard_branches(0.28, 0.5)
                .region(MemRegion::random(8 << 10, 0.60))
                .region(MemRegion::random(224 << 10, 0.40))
                .loops(16, 64, 40)
                .build(),
            // Sparse network simplex: dominated by pointer chasing over a
            // multi-megabyte arc array; memory bound, cache helps steadily.
            Benchmark::Mcf => b
                .chains(2)
                .mem_frac(0.40)
                .store_frac(0.25)
                .branch_frac(0.12)
                .hard_branches(0.20, 0.5)
                .pointer_chase(0.55)
                .region(MemRegion::random(4 << 10, 0.25))
                .region(MemRegion::random(2 << 20, 0.25))
                .region(MemRegion::random(24 << 20, 0.50))
                .loops(8, 64, 70)
                .build(),
            // Discrete-event simulation: the paper's most cache-sensitive
            // workload — event heap and model state spanning ≈6 MB.
            Benchmark::Omnetpp => b
                .chains(3)
                .mem_frac(0.40)
                .store_frac(0.35)
                .branch_frac(0.14)
                .hard_branches(0.15, 0.5)
                .pointer_chase(0.50)
                .region(MemRegion::random(4 << 10, 0.25))
                .region(MemRegion::random(1536 << 10, 0.30))
                .region(MemRegion::random(6 << 20, 0.45))
                .loops(12, 72, 50)
                .build(),
            // Video encoding: high ILP media kernels, predictable loops,
            // frame slices streaming with a modest random reference window.
            Benchmark::H264ref => b
                .chains(6)
                .mem_frac(0.32)
                .store_frac(0.35)
                .branch_frac(0.09)
                .hard_branches(0.06, 0.5)
                .muldiv(0.10, 0.0)
                .region(MemRegion::random(8 << 10, 0.40))
                .region(MemRegion::streaming(2 << 20, 0.30, 32))
                .region(MemRegion::random(384 << 10, 0.30))
                .loops(8, 88, 90)
                .build(),
            // PARSEC dedup: four pipeline threads, hashing + chunk tables,
            // per-thread ILP ≈ 2 bounds multi-Slice speedup near 2.
            Benchmark::Dedup => b
                .chains(2)
                .mem_frac(0.34)
                .store_frac(0.35)
                .branch_frac(0.12)
                .hard_branches(0.12, 0.5)
                .threads(4, 0.20)
                .region(MemRegion::random(8 << 10, 0.50))
                .region(MemRegion::random(2 << 20, 0.50))
                .loops(10, 64, 55)
                .build(),
            // PARSEC swaptions: compute-bound Monte Carlo, tiny working
            // set, serial recurrences per path.
            Benchmark::Swaptions => b
                .chains(2)
                .mem_frac(0.16)
                .store_frac(0.30)
                .branch_frac(0.08)
                .hard_branches(0.05, 0.5)
                .muldiv(0.15, 0.02)
                .threads(4, 0.05)
                .region(MemRegion::random(8 << 10, 0.85))
                .region(MemRegion::random(24 << 10, 0.15))
                .loops(6, 80, 100)
                .build(),
            // PARSEC ferret: similarity search pipeline, shared database
            // tables, moderate memory intensity.
            Benchmark::Ferret => b
                .chains(2)
                .mem_frac(0.32)
                .store_frac(0.25)
                .branch_frac(0.12)
                .hard_branches(0.12, 0.5)
                .threads(4, 0.15)
                .region(MemRegion::random(8 << 10, 0.45))
                .region(MemRegion::random(4 << 20, 0.55))
                .loops(12, 64, 50)
                .build(),
        }
    }

    /// Generates the workload (all threads) for a spec.
    ///
    /// # Panics
    ///
    /// Panics if `spec.len == 0`; profiles themselves are always valid.
    #[must_use]
    pub fn generate(self, spec: &TraceSpec) -> Trace {
        ProgramGenerator::new(&self.profile(), *spec)
            .expect("calibrated profiles are valid")
            .generate_single()
    }

    /// Generates the full multi-threaded workload.
    ///
    /// # Panics
    ///
    /// Panics if `spec.len == 0`.
    #[must_use]
    pub fn generate_threaded(self, spec: &TraceSpec) -> ThreadedTrace {
        ProgramGenerator::new(&self.profile(), *spec)
            .expect("calibrated profiles are valid")
            .generate()
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Profile of one of gcc's ten program phases (paper §5.10, Table 7).
///
/// Early phases behave like parsing/IR construction (wide, larger working
/// set); late phases like register allocation and emission (narrow, small
/// hot set). The paper's Table 7 shows per-phase optimal configurations
/// trending from large caches and 4–5 Slices down to 64–128 KB and 1–2
/// Slices, which this parameterization reproduces.
///
/// # Panics
///
/// Panics if `phase` is not in `1..=10`.
#[must_use]
pub fn gcc_phase_profile(phase: usize) -> WorkloadProfile {
    assert!((1..=10).contains(&phase), "gcc has phases 1..=10");
    let i = phase - 1;
    // Early phases behave like parsing/IR construction: wide, pointer-rich,
    // with a multi-hundred-KB working set that rewards large L2
    // allocations. Late phases behave like register allocation/emission:
    // narrow, serial, hot-set-resident.
    let chains = [7, 7, 6, 6, 5, 4, 3, 2, 1, 1][i];
    let chase = [0.35, 0.35, 0.30, 0.25, 0.20, 0.15, 0.10, 0.05, 0.0, 0.0][i];
    let warm_kb: u64 = [1024, 1024, 768, 640, 512, 384, 256, 128, 48, 48][i];
    let warm_w = [0.45, 0.45, 0.42, 0.40, 0.38, 0.35, 0.32, 0.28, 0.20, 0.20][i];
    let mem = [0.36, 0.36, 0.35, 0.34, 0.33, 0.32, 0.31, 0.30, 0.28, 0.28][i];
    WorkloadProfile::builder(format!("gcc.phase{phase}"))
        .chains(chains)
        .mem_frac(mem)
        .store_frac(0.32)
        .branch_frac(0.16)
        .hard_branches(0.12, 0.5)
        .pointer_chase(chase)
        .region(MemRegion::random(8 << 10, 1.0 - warm_w))
        // A cyclically re-walked working set (IR lists traversed once per
        // pass): under LRU this hits only once the L2 covers the region,
        // giving the sharp capacity knee the paper's per-phase optima show.
        .region(MemRegion::streaming(warm_kb << 10, warm_w, 32))
        .loops(12, 72, 40)
        .build()
}

/// Generates the trace for one gcc phase.
///
/// # Panics
///
/// Panics if `phase` is not in `1..=10` or `spec.len == 0`.
#[must_use]
pub fn gcc_phase_trace(phase: usize, spec: &TraceSpec) -> Trace {
    ProgramGenerator::new(&gcc_phase_profile(phase), *spec)
        .expect("phase profiles are valid")
        .generate_single()
}

/// Names of the seeded workload profiles beyond the paper's 15
/// benchmarks. They resolve through [`extra_profile`] and are accepted
/// anywhere a benchmark name is (sweeps, the dc surface, chaos job
/// mixes), but stay out of [`ALL_BENCHMARKS`] so the paper-faithful
/// suite is unchanged.
pub const EXTRA_PROFILES: [&str; 2] = ["bursty", "phaseshift"];

/// Looks up an extra-suite profile by name (see [`EXTRA_PROFILES`]).
#[must_use]
pub fn extra_profile(name: &str) -> Option<WorkloadProfile> {
    match name {
        "bursty" => Some(bursty_profile()),
        "phaseshift" => Some(phase_shift_profile()),
        _ => None,
    }
}

/// A bursty trace: short compute stretches over a tiny hot set,
/// punctuated by wide streaming storms that blow through every cache
/// size in range. The storms arrive in large spatial bursts, so the
/// memory system sees idle-then-slammed behavior rather than a steady
/// rate — the shape IaaS tail-latency studies call bursty arrivals.
#[must_use]
pub fn bursty_profile() -> WorkloadProfile {
    WorkloadProfile::builder("bursty")
        .chains(4)
        .mem_frac(0.33)
        .store_frac(0.30)
        .branch_frac(0.12)
        .hard_branches(0.10, 0.5)
        .region(MemRegion::random(8 << 10, 0.55))
        .region(MemRegion::streaming(16 << 20, 0.45, 8))
        .spatial_burst(32)
        .loops(6, 48, 150)
        .build()
}

/// A phase-changing trace: the loop structure is split between a wide,
/// streaming phase (compiler-front-end-like) and a narrow,
/// pointer-chasing phase (allocation-like), so the optimal share
/// configuration moves mid-run. Sweeps over it show no single knee —
/// the signature that makes phase-adaptive reconfiguration pay.
#[must_use]
pub fn phase_shift_profile() -> WorkloadProfile {
    WorkloadProfile::builder("phaseshift")
        .chains(5)
        .mem_frac(0.34)
        .store_frac(0.28)
        .branch_frac(0.16)
        .hard_branches(0.18, 0.5)
        .pointer_chase(0.25)
        .region(MemRegion::random(8 << 10, 0.40))
        .region(MemRegion::random(2 << 20, 0.30))
        .region(MemRegion::streaming(8 << 20, 0.30, 24))
        .loops(10, 80, 60)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for b in ALL_BENCHMARKS {
            let p = b.profile();
            assert!(p.validate().is_ok(), "{b}: {:?}", p.validate());
            assert_eq!(p.name, b.name());
        }
    }

    #[test]
    fn suite_partitions_into_spec_and_parsec() {
        assert_eq!(
            SPEC_BENCHMARKS.len() + PARSEC_BENCHMARKS.len(),
            ALL_BENCHMARKS.len()
        );
        for b in SPEC_BENCHMARKS {
            assert!(!b.is_parsec());
            assert_eq!(b.profile().threads, 1);
        }
        for b in PARSEC_BENCHMARKS {
            assert!(b.is_parsec());
            assert_eq!(b.profile().threads, 4);
        }
    }

    #[test]
    fn from_name_roundtrips() {
        for b in ALL_BENCHMARKS {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nonesuch"), None);
    }

    #[test]
    fn generation_smoke_for_every_benchmark() {
        let spec = TraceSpec::new(2_000, 42);
        for b in ALL_BENCHMARKS {
            let tt = b.generate_threaded(&spec);
            assert_eq!(tt.thread_count(), b.profile().threads);
            for t in tt.threads() {
                assert_eq!(t.len(), 2_000);
            }
        }
    }

    #[test]
    fn cache_sensitive_benchmarks_have_bigger_footprints() {
        let spec = TraceSpec::new(30_000, 7);
        let omnetpp = Benchmark::Omnetpp.generate(&spec).stats().data_footprint;
        let hmmer = Benchmark::Hmmer.generate(&spec).stats().data_footprint;
        assert!(
            omnetpp > 8 * hmmer,
            "omnetpp {omnetpp} should dwarf hmmer {hmmer}"
        );
    }

    #[test]
    fn gcc_phases_taper() {
        let p1 = gcc_phase_profile(1);
        let p10 = gcc_phase_profile(10);
        assert!(p1.chains > p10.chains);
        let ws = |p: &WorkloadProfile| p.regions.iter().map(|r| r.bytes).max().unwrap();
        assert!(ws(&p1) > ws(&p10));
    }

    #[test]
    #[should_panic(expected = "phases 1..=10")]
    fn gcc_phase_zero_panics() {
        let _ = gcc_phase_profile(0);
    }

    #[test]
    fn extra_profiles_validate_and_resolve_by_name() {
        for name in EXTRA_PROFILES {
            let p = extra_profile(name).expect("registered");
            assert!(p.validate().is_ok(), "{name}: {:?}", p.validate());
            assert_eq!(p.name, name);
            assert!(
                Benchmark::from_name(name).is_none(),
                "{name} must not shadow a suite benchmark"
            );
        }
        assert!(extra_profile("nonesuch").is_none());
    }

    #[test]
    fn extra_profiles_generate_and_differ() {
        let spec = TraceSpec::new(5_000, 11);
        let bursty = ProgramGenerator::new(&bursty_profile(), spec)
            .expect("valid")
            .generate_single();
        let shift = ProgramGenerator::new(&phase_shift_profile(), spec)
            .expect("valid")
            .generate_single();
        assert_eq!(bursty.len(), 5_000);
        assert_eq!(shift.len(), 5_000);
        assert_eq!(bursty.name(), "bursty");
        assert_ne!(
            bursty.stats().data_footprint,
            shift.stats().data_footprint,
            "the two extras should exercise different memory behavior"
        );
    }

    #[test]
    fn phase_traces_are_generated_with_phase_names() {
        let t = gcc_phase_trace(3, &TraceSpec::new(500, 1));
        assert_eq!(t.name(), "gcc.phase3");
        assert_eq!(t.len(), 500);
    }
}
