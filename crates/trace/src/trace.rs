//! Trace containers.

use crate::stats::TraceStats;
use sharing_isa::DynInst;

/// How long a trace to generate and with which seed.
///
/// All generation is deterministic: the same spec always yields the same
/// trace, so every experiment in the repository is exactly reproducible.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceSpec {
    /// Number of dynamic instructions per thread.
    pub len: usize,
    /// Generator seed.
    pub seed: u64,
}

sharing_json::json_struct!(TraceSpec { len, seed });

impl TraceSpec {
    /// Creates a spec.
    #[must_use]
    pub fn new(len: usize, seed: u64) -> Self {
        TraceSpec { len, seed }
    }
}

impl Default for TraceSpec {
    /// The default experiment length used throughout the reproduction.
    fn default() -> Self {
        TraceSpec::new(60_000, 0x5EED)
    }
}

/// A committed-path dynamic instruction stream for one hardware thread.
///
/// # Example
///
/// ```
/// use sharing_trace::Trace;
/// use sharing_isa::{ArchReg, DynInst};
///
/// let t = Trace::from_insts("demo", vec![DynInst::nop(0x0), DynInst::nop(0x4)]);
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.name(), "demo");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    name: String,
    insts: Vec<DynInst>,
}

impl Trace {
    /// Wraps a pre-built instruction vector.
    #[must_use]
    pub fn from_insts(name: impl Into<String>, insts: Vec<DynInst>) -> Self {
        Trace {
            name: name.into(),
            insts,
        }
    }

    /// The workload name this trace was generated from.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of dynamic instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instructions, in program order.
    #[must_use]
    pub fn insts(&self) -> &[DynInst] {
        &self.insts
    }

    /// Iterates over instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, DynInst> {
        self.insts.iter()
    }

    /// Computes summary statistics over the trace.
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_insts(&self.insts)
    }

    /// Splits the trace into `n` equal contiguous segments (the paper's
    /// §5.10 splits gcc into 10 segments to study program phases). The last
    /// segment absorbs any remainder.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > self.len()`.
    #[must_use]
    pub fn split_phases(&self, n: usize) -> Vec<Trace> {
        assert!(n > 0, "phase count must be positive");
        assert!(n <= self.len(), "more phases than instructions");
        let base = self.len() / n;
        (0..n)
            .map(|i| {
                let start = i * base;
                let end = if i == n - 1 { self.len() } else { start + base };
                Trace {
                    name: format!("{}.phase{}", self.name, i + 1),
                    insts: self.insts[start..end].to_vec(),
                }
            })
            .collect()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a DynInst;
    type IntoIter = std::slice::Iter<'a, DynInst>;

    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

/// A multi-threaded workload: one [`Trace`] per thread.
///
/// The paper runs PARSEC benchmarks with four threads on four equally
/// configured VCores which share an L2 cache (§5.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadedTrace {
    name: String,
    threads: Vec<Trace>,
}

impl ThreadedTrace {
    /// Builds a threaded trace from per-thread traces.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is empty.
    #[must_use]
    pub fn new(name: impl Into<String>, threads: Vec<Trace>) -> Self {
        assert!(!threads.is_empty(), "a workload needs at least one thread");
        ThreadedTrace {
            name: name.into(),
            threads,
        }
    }

    /// Wraps a single-threaded trace.
    #[must_use]
    pub fn single(trace: Trace) -> Self {
        ThreadedTrace {
            name: trace.name().to_string(),
            threads: vec![trace],
        }
    }

    /// The workload name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of threads.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Per-thread traces.
    #[must_use]
    pub fn threads(&self) -> &[Trace] {
        &self.threads
    }

    /// Total dynamic instructions across all threads.
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.threads.iter().map(Trace::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharing_isa::DynInst;

    fn trace_of(n: usize) -> Trace {
        Trace::from_insts(
            "t",
            (0..n)
                .map(|i| DynInst::nop(4 * i as u64))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn split_phases_partitions_exactly() {
        let t = trace_of(105);
        let phases = t.split_phases(10);
        assert_eq!(phases.len(), 10);
        let total: usize = phases.iter().map(Trace::len).sum();
        assert_eq!(total, 105);
        assert_eq!(phases[0].len(), 10);
        assert_eq!(phases[9].len(), 15); // remainder absorbed by last phase
        assert_eq!(phases[3].name(), "t.phase4");
        // Contiguity: first pc of phase k follows last pc of phase k-1.
        assert_eq!(phases[1].insts()[0].pc, 4 * 10);
    }

    #[test]
    #[should_panic(expected = "phase count")]
    fn split_phases_rejects_zero() {
        let _ = trace_of(10).split_phases(0);
    }

    #[test]
    fn threaded_trace_accounting() {
        let tt = ThreadedTrace::new("w", vec![trace_of(5), trace_of(7)]);
        assert_eq!(tt.thread_count(), 2);
        assert_eq!(tt.total_len(), 12);
        let single = ThreadedTrace::single(trace_of(3));
        assert_eq!(single.thread_count(), 1);
        assert_eq!(single.name(), "t");
    }

    #[test]
    fn iteration_is_program_order() {
        let t = trace_of(4);
        let pcs: Vec<u64> = t.iter().map(|i| i.pc).collect();
        assert_eq!(pcs, vec![0, 4, 8, 12]);
    }
}
