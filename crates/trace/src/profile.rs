//! Workload profiles: the parameter space of the synthetic generator.

use sharing_json::{json_struct, FromJson, Json, JsonError, ToJson};

/// How a memory region is accessed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AccessPattern {
    /// Sequential streaming with the given stride in bytes (e.g. libquantum's
    /// vector sweeps). Streams wrap around the region.
    Streaming {
        /// Stride between consecutive accesses, in bytes.
        stride: u64,
    },
    /// Uniform random accesses within the region (hash tables, graph data).
    Random,
}

/// One region of a workload's working set.
///
/// The region model is what gives each benchmark its cache-size sensitivity
/// curve (paper Figure 13): a benchmark whose hot regions fit in a small L2
/// is insensitive, one with a multi-megabyte warm region keeps improving to
/// 8 MB, and one whose only big region exceeds 8 MB is flat because it misses
/// at every size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemRegion {
    /// Region size in bytes.
    pub bytes: u64,
    /// Relative probability that a memory access falls in this region.
    pub weight: f64,
    /// Access pattern within the region.
    pub access: AccessPattern,
}

impl ToJson for AccessPattern {
    fn to_json(&self) -> Json {
        match self {
            AccessPattern::Streaming { stride } => Json::obj(vec![(
                "Streaming",
                Json::obj(vec![("stride", stride.to_json())]),
            )]),
            AccessPattern::Random => Json::Str("Random".to_string()),
        }
    }
}

impl FromJson for AccessPattern {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) if s == "Random" => Ok(AccessPattern::Random),
            Json::Obj(_) => {
                let body = v
                    .get("Streaming")
                    .ok_or_else(|| JsonError::msg(format!("unknown access pattern {v}")))?;
                let stride = body
                    .get("stride")
                    .ok_or_else(|| JsonError::msg("Streaming missing stride".to_string()))?;
                Ok(AccessPattern::Streaming {
                    stride: u64::from_json(stride)?,
                })
            }
            other => Err(JsonError::msg(format!("unknown access pattern {other}"))),
        }
    }
}

json_struct!(MemRegion {
    bytes,
    weight,
    access
});

json_struct!(WorkloadProfile {
    name,
    chains,
    mem_frac,
    store_frac,
    branch_frac,
    hard_branch_frac,
    hard_taken,
    mul_frac,
    div_frac,
    pointer_chase_frac,
    regions,
    threads,
    shared_frac,
    loop_body,
    loop_iters,
    n_loops,
    spatial_burst,
    pattern_branch_frac,
});

impl MemRegion {
    /// A streaming region.
    #[must_use]
    pub fn streaming(bytes: u64, weight: f64, stride: u64) -> Self {
        MemRegion {
            bytes,
            weight,
            access: AccessPattern::Streaming { stride },
        }
    }

    /// A randomly accessed region.
    #[must_use]
    pub fn random(bytes: u64, weight: f64) -> Self {
        MemRegion {
            bytes,
            weight,
            access: AccessPattern::Random,
        }
    }
}

/// The microarchitectural profile of a synthetic workload.
///
/// Each field maps to a behaviour the Sharing Architecture paper's results
/// depend on; see the crate docs and `DESIGN.md` §3 for the calibration
/// rationale.
///
/// # Example
///
/// ```
/// use sharing_trace::{WorkloadProfile, MemRegion};
///
/// let p = WorkloadProfile::builder("toy")
///     .chains(4)
///     .mem_frac(0.3)
///     .branch_frac(0.15)
///     .region(MemRegion::random(64 << 10, 1.0))
///     .build();
/// assert_eq!(p.name, "toy");
/// assert!(p.validate().is_ok());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadProfile {
    /// Workload name (used in reports).
    pub name: String,
    /// Number of independent dependency chains threaded through the ALU
    /// instructions. This is the workload's intrinsic ILP: with `k` chains,
    /// ALU-bound code can sustain at most ≈`k` instructions per cycle no
    /// matter how many Slices a VCore has.
    pub chains: usize,
    /// Fraction of dynamic instructions that are memory operations.
    pub mem_frac: f64,
    /// Of memory operations, the fraction that are stores.
    pub store_frac: f64,
    /// Fraction of dynamic instructions that are conditional branches.
    pub branch_frac: f64,
    /// Of branches, the fraction that are data-dependent ("hard") rather
    /// than loop-like. Hard branches take with probability
    /// [`hard_taken`](Self::hard_taken) independently each execution, so the
    /// bimodal predictor mispredicts them at ≈`2·p·(1-p)`.
    pub hard_branch_frac: f64,
    /// Taken probability of hard branches.
    pub hard_taken: f64,
    /// Of ALU operations, the fraction that are multiplies.
    pub mul_frac: f64,
    /// Of ALU operations, the fraction that are divides.
    pub div_frac: f64,
    /// Of loads, the fraction that are pointer-chasing: each such load's
    /// address operand depends on the previous pointer-chase load's result,
    /// serializing them (mcf, omnetpp, astar).
    pub pointer_chase_frac: f64,
    /// The working-set model. Weights are normalized internally.
    pub regions: Vec<MemRegion>,
    /// Number of threads (1 for the SPEC-class workloads, 4 for PARSEC).
    pub threads: usize,
    /// For multi-threaded workloads, the fraction of memory accesses that go
    /// to a region shared by all threads (drives inter-VCore coherence
    /// traffic).
    pub shared_frac: f64,
    /// Dynamic instructions in one loop body of the generated program.
    pub loop_body: usize,
    /// Iterations per loop before moving to the next loop in the program.
    pub loop_iters: usize,
    /// Number of distinct loops in the static program (controls I-side
    /// footprint and predictor table pressure).
    pub n_loops: usize,
    /// Spatial locality of randomly-accessed regions: consecutive accesses
    /// from one memory slot stay within the same 64-byte line for this many
    /// accesses before jumping to a new random line. Real programs touch
    /// several fields of a structure at a time; `1` disables the effect.
    pub spatial_burst: usize,
    /// Of the hard branches, the fraction whose outcomes follow a short
    /// repeating pattern (period 3–6) rather than a coin — correlated
    /// behaviour a history-based predictor (gshare) can learn but a
    /// bimodal predictor cannot.
    pub pattern_branch_frac: f64,
}

impl WorkloadProfile {
    /// Starts a builder with defaults representing a generic integer
    /// workload.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> WorkloadProfileBuilder {
        WorkloadProfileBuilder::new(name)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: fractions
    /// must lie in `[0, 1]`, instruction-class fractions must not exceed 1
    /// combined, and at least one region and one chain are required.
    pub fn validate(&self) -> Result<(), String> {
        let frac_fields = [
            ("mem_frac", self.mem_frac),
            ("store_frac", self.store_frac),
            ("branch_frac", self.branch_frac),
            ("hard_branch_frac", self.hard_branch_frac),
            ("hard_taken", self.hard_taken),
            ("mul_frac", self.mul_frac),
            ("div_frac", self.div_frac),
            ("pointer_chase_frac", self.pointer_chase_frac),
            ("shared_frac", self.shared_frac),
        ];
        for (name, v) in frac_fields {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} = {v} outside [0, 1]"));
            }
        }
        if self.mem_frac + self.branch_frac > 1.0 {
            return Err("mem_frac + branch_frac exceed 1".to_string());
        }
        if self.chains == 0 {
            return Err("at least one dependency chain required".to_string());
        }
        if self.regions.is_empty() {
            return Err("at least one memory region required".to_string());
        }
        if self.regions.iter().any(|r| r.bytes == 0 || r.weight < 0.0) {
            return Err("regions must have positive size and non-negative weight".to_string());
        }
        if self.regions.iter().map(|r| r.weight).sum::<f64>() <= 0.0 {
            return Err("total region weight must be positive".to_string());
        }
        if self.threads == 0 {
            return Err("at least one thread required".to_string());
        }
        if self.loop_body == 0 || self.loop_iters == 0 || self.n_loops == 0 {
            return Err("loop shape parameters must be positive".to_string());
        }
        if self.spatial_burst == 0 {
            return Err("spatial_burst must be at least 1".to_string());
        }
        if !(0.0..=1.0).contains(&self.pattern_branch_frac) {
            return Err(format!(
                "pattern_branch_frac = {} outside [0, 1]",
                self.pattern_branch_frac
            ));
        }
        Ok(())
    }
}

/// Builder for [`WorkloadProfile`].
#[derive(Clone, Debug)]
pub struct WorkloadProfileBuilder {
    profile: WorkloadProfile,
}

impl WorkloadProfileBuilder {
    fn new(name: impl Into<String>) -> Self {
        WorkloadProfileBuilder {
            profile: WorkloadProfile {
                name: name.into(),
                chains: 4,
                mem_frac: 0.30,
                store_frac: 0.30,
                branch_frac: 0.15,
                hard_branch_frac: 0.20,
                hard_taken: 0.5,
                mul_frac: 0.05,
                div_frac: 0.0,
                pointer_chase_frac: 0.0,
                regions: vec![MemRegion::random(64 << 10, 1.0)],
                threads: 1,
                shared_frac: 0.0,
                loop_body: 64,
                loop_iters: 50,
                n_loops: 12,
                spatial_burst: 6,
                pattern_branch_frac: 0.25,
            },
        }
    }

    /// Sets the number of independent dependency chains (intrinsic ILP).
    #[must_use]
    pub fn chains(mut self, chains: usize) -> Self {
        self.profile.chains = chains;
        self
    }

    /// Sets the memory-operation fraction.
    #[must_use]
    pub fn mem_frac(mut self, f: f64) -> Self {
        self.profile.mem_frac = f;
        self
    }

    /// Sets the store share of memory operations.
    #[must_use]
    pub fn store_frac(mut self, f: f64) -> Self {
        self.profile.store_frac = f;
        self
    }

    /// Sets the branch fraction.
    #[must_use]
    pub fn branch_frac(mut self, f: f64) -> Self {
        self.profile.branch_frac = f;
        self
    }

    /// Sets the hard (data-dependent) share of branches and their taken
    /// probability.
    #[must_use]
    pub fn hard_branches(mut self, frac: f64, taken: f64) -> Self {
        self.profile.hard_branch_frac = frac;
        self.profile.hard_taken = taken;
        self
    }

    /// Sets multiply/divide shares of ALU operations.
    #[must_use]
    pub fn muldiv(mut self, mul: f64, div: f64) -> Self {
        self.profile.mul_frac = mul;
        self.profile.div_frac = div;
        self
    }

    /// Sets the pointer-chasing share of loads.
    #[must_use]
    pub fn pointer_chase(mut self, f: f64) -> Self {
        self.profile.pointer_chase_frac = f;
        self
    }

    /// Replaces the working-set model with the given regions.
    #[must_use]
    pub fn regions(mut self, regions: Vec<MemRegion>) -> Self {
        self.profile.regions = regions;
        self
    }

    /// Adds one region to the working-set model (keeps the default region if
    /// never called; the first call replaces the default).
    #[must_use]
    pub fn region(mut self, region: MemRegion) -> Self {
        const DEFAULT: u64 = 64 << 10;
        if self.profile.regions.len() == 1
            && self.profile.regions[0].bytes == DEFAULT
            && self.profile.regions[0].weight == 1.0
        {
            self.profile.regions.clear();
        }
        self.profile.regions.push(region);
        self
    }

    /// Sets the thread count and shared-access fraction.
    #[must_use]
    pub fn threads(mut self, threads: usize, shared_frac: f64) -> Self {
        self.profile.threads = threads;
        self.profile.shared_frac = shared_frac;
        self
    }

    /// Sets the spatial-burst length of random regions.
    #[must_use]
    pub fn spatial_burst(mut self, burst: usize) -> Self {
        self.profile.spatial_burst = burst;
        self
    }

    /// Sets the patterned share of hard branches.
    #[must_use]
    pub fn pattern_branches(mut self, frac: f64) -> Self {
        self.profile.pattern_branch_frac = frac;
        self
    }

    /// Sets the static program shape.
    #[must_use]
    pub fn loops(mut self, n_loops: usize, body: usize, iters: usize) -> Self {
        self.profile.n_loops = n_loops;
        self.profile.loop_body = body;
        self.profile.loop_iters = iters;
        self
    }

    /// Finalizes the profile.
    ///
    /// # Panics
    ///
    /// Panics if the accumulated parameters are inconsistent (see
    /// [`WorkloadProfile::validate`]).
    #[must_use]
    pub fn build(self) -> WorkloadProfile {
        if let Err(e) = self.profile.validate() {
            panic!("invalid workload profile `{}`: {e}", self.profile.name);
        }
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_valid() {
        let p = WorkloadProfile::builder("x").build();
        assert!(p.validate().is_ok());
        assert_eq!(p.threads, 1);
    }

    #[test]
    fn validate_rejects_bad_fractions() {
        let mut p = WorkloadProfile::builder("x").build();
        p.mem_frac = 1.5;
        assert!(p.validate().is_err());
        p.mem_frac = 0.6;
        p.branch_frac = 0.6;
        assert!(p.validate().unwrap_err().contains("exceed 1"));
    }

    #[test]
    fn validate_rejects_empty_regions_and_chains() {
        let mut p = WorkloadProfile::builder("x").build();
        p.regions.clear();
        assert!(p.validate().is_err());
        let mut p = WorkloadProfile::builder("x").build();
        p.chains = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid workload profile")]
    fn build_panics_on_invalid() {
        let _ = WorkloadProfile::builder("x").mem_frac(2.0).build();
    }

    #[test]
    fn region_replaces_default_then_appends() {
        let p = WorkloadProfile::builder("x")
            .region(MemRegion::random(1 << 20, 0.5))
            .region(MemRegion::streaming(8 << 20, 0.5, 64))
            .build();
        assert_eq!(p.regions.len(), 2);
        assert_eq!(p.regions[0].bytes, 1 << 20);
    }
}
