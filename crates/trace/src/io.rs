//! Compact binary (de)serialization of traces.
//!
//! Traces regenerate deterministically from a [`crate::TraceSpec`], but
//! long-running experiments benefit from caching generated traces on disk;
//! this module provides the stable binary format for that. The format is a
//! simple tag-length encoding over plain byte vectors (big-endian fields):
//!
//! ```text
//! magic "SHTR" | version u16 | name-len u16 | name utf-8
//! inst-count u64 | inst*  (tag u8, pc u64, dst u8, src0 u8, src1 u8, payload)
//! ```
//!
//! Register slots use `0xFF` for "absent".

use crate::trace::{ThreadedTrace, Trace};
use sharing_isa::{ArchReg, DynInst, InstKind, MemSize};
use std::fmt;

const MAGIC: &[u8; 4] = b"SHTR";
const VERSION: u16 = 1;
const NO_REG: u8 = 0xFF;

/// Errors produced while decoding a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with the trace magic.
    BadMagic,
    /// The format version is unsupported.
    BadVersion(u16),
    /// The buffer ended prematurely.
    Truncated,
    /// An instruction tag byte was not recognized.
    BadTag(u8),
    /// A register index was out of range.
    BadRegister(u8),
    /// An embedded string was not valid UTF-8.
    BadString,
    /// A size code was not recognized.
    BadSize(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "missing trace magic"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            DecodeError::Truncated => write!(f, "trace buffer ended prematurely"),
            DecodeError::BadTag(t) => write!(f, "unknown instruction tag {t:#x}"),
            DecodeError::BadRegister(r) => write!(f, "register index {r} out of range"),
            DecodeError::BadString => write!(f, "embedded string was not valid utf-8"),
            DecodeError::BadSize(s) => write!(f, "unknown memory size code {s}"),
        }
    }
}

impl std::error::Error for DecodeError {}

mod tag {
    pub const ALU: u8 = 0;
    pub const MUL: u8 = 1;
    pub const DIV: u8 = 2;
    pub const LOAD: u8 = 3;
    pub const STORE: u8 = 4;
    pub const BR_T: u8 = 5;
    pub const BR_NT: u8 = 6;
    pub const JMP: u8 = 7;
    pub const JMPI: u8 = 8;
    pub const NOP: u8 = 9;
}

/// A bounds-checked big-endian reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_be_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn size_code(s: MemSize) -> u8 {
    match s {
        MemSize::B1 => 0,
        MemSize::B2 => 1,
        MemSize::B4 => 2,
        MemSize::B8 => 3,
    }
}

fn decode_size(c: u8) -> Result<MemSize, DecodeError> {
    match c {
        0 => Ok(MemSize::B1),
        1 => Ok(MemSize::B2),
        2 => Ok(MemSize::B4),
        3 => Ok(MemSize::B8),
        other => Err(DecodeError::BadSize(other)),
    }
}

fn reg_code(r: Option<ArchReg>) -> u8 {
    r.map_or(NO_REG, |r| r.index() as u8)
}

fn decode_reg(c: u8) -> Result<Option<ArchReg>, DecodeError> {
    if c == NO_REG {
        Ok(None)
    } else {
        ArchReg::try_new(c)
            .map(Some)
            .ok_or(DecodeError::BadRegister(c))
    }
}

fn encode_inst(buf: &mut Vec<u8>, i: &DynInst) {
    let (t, payload): (u8, Option<(u64, u8)>) = match i.kind {
        InstKind::IntAlu => (tag::ALU, None),
        InstKind::IntMul => (tag::MUL, None),
        InstKind::IntDiv => (tag::DIV, None),
        InstKind::Load { addr, size } => (tag::LOAD, Some((addr, size_code(size)))),
        InstKind::Store { addr, size } => (tag::STORE, Some((addr, size_code(size)))),
        InstKind::Branch { taken, target } => (
            if taken { tag::BR_T } else { tag::BR_NT },
            Some((target, 0)),
        ),
        InstKind::Jump { target } => (tag::JMP, Some((target, 0))),
        InstKind::JumpIndirect { target } => (tag::JMPI, Some((target, 0))),
        InstKind::Nop => (tag::NOP, None),
    };
    buf.push(t);
    put_u64(buf, i.pc);
    buf.push(reg_code(i.dst));
    buf.push(reg_code(i.srcs[0]));
    buf.push(reg_code(i.srcs[1]));
    if let Some((word, aux)) = payload {
        put_u64(buf, word);
        buf.push(aux);
    }
}

fn decode_inst(r: &mut Reader<'_>) -> Result<DynInst, DecodeError> {
    let t = r.u8()?;
    let pc = r.u64()?;
    let dst = decode_reg(r.u8()?)?;
    let s0 = decode_reg(r.u8()?)?;
    let s1 = decode_reg(r.u8()?)?;
    let mut payload = || -> Result<(u64, u8), DecodeError> { Ok((r.u64()?, r.u8()?)) };
    let kind = match t {
        tag::ALU => InstKind::IntAlu,
        tag::MUL => InstKind::IntMul,
        tag::DIV => InstKind::IntDiv,
        tag::LOAD => {
            let (addr, c) = payload()?;
            InstKind::Load {
                addr,
                size: decode_size(c)?,
            }
        }
        tag::STORE => {
            let (addr, c) = payload()?;
            InstKind::Store {
                addr,
                size: decode_size(c)?,
            }
        }
        tag::BR_T | tag::BR_NT => {
            let (target, _) = payload()?;
            InstKind::Branch {
                taken: t == tag::BR_T,
                target,
            }
        }
        tag::JMP => {
            let (target, _) = payload()?;
            InstKind::Jump { target }
        }
        tag::JMPI => {
            let (target, _) = payload()?;
            InstKind::JumpIndirect { target }
        }
        tag::NOP => InstKind::Nop,
        other => return Err(DecodeError::BadTag(other)),
    };
    Ok(DynInst {
        pc,
        kind,
        dst,
        srcs: [s0, s1],
    })
}

/// Serializes a trace to its binary format.
#[must_use]
pub fn encode_trace(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + trace.len() * 21);
    buf.extend_from_slice(MAGIC);
    put_u16(&mut buf, VERSION);
    put_u16(&mut buf, trace.name().len() as u16);
    buf.extend_from_slice(trace.name().as_bytes());
    put_u64(&mut buf, trace.len() as u64);
    for i in trace.iter() {
        encode_inst(&mut buf, i);
    }
    buf
}

fn decode_header<'a>(r: &mut Reader<'a>) -> Result<String, DecodeError> {
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let name_len = r.u16()? as usize;
    let name_bytes = r.take(name_len)?;
    std::str::from_utf8(name_bytes)
        .map(str::to_string)
        .map_err(|_| DecodeError::BadString)
}

/// Deserializes a trace from its binary format.
///
/// # Errors
///
/// Returns a [`DecodeError`] for malformed input; see its variants.
pub fn decode_trace(buf: &[u8]) -> Result<Trace, DecodeError> {
    let mut r = Reader::new(buf);
    let name = decode_header(&mut r)?;
    let count = r.u64()? as usize;
    // An instruction takes at least 12 bytes; reject counts the buffer
    // cannot possibly hold before reserving memory for them.
    if count > r.remaining() / 12 {
        return Err(DecodeError::Truncated);
    }
    let mut insts = Vec::with_capacity(count);
    for _ in 0..count {
        insts.push(decode_inst(&mut r)?);
    }
    Ok(Trace::from_insts(name, insts))
}

/// Serializes a threaded trace (thread count, then each thread's trace).
#[must_use]
pub fn encode_threaded(tt: &ThreadedTrace) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    put_u16(&mut buf, VERSION);
    put_u16(&mut buf, tt.name().len() as u16);
    buf.extend_from_slice(tt.name().as_bytes());
    put_u32(&mut buf, tt.thread_count() as u32);
    for t in tt.threads() {
        let enc = encode_trace(t);
        put_u64(&mut buf, enc.len() as u64);
        buf.extend_from_slice(&enc);
    }
    buf
}

/// Deserializes a threaded trace.
///
/// # Errors
///
/// Returns a [`DecodeError`] for malformed input.
pub fn decode_threaded(buf: &[u8]) -> Result<ThreadedTrace, DecodeError> {
    let mut r = Reader::new(buf);
    let name = decode_header(&mut r)?;
    let threads = r.u32()? as usize;
    let mut out = Vec::with_capacity(threads.min(64));
    for _ in 0..threads {
        let n = r.u64()? as usize;
        out.push(decode_trace(r.take(n)?)?);
    }
    if out.is_empty() {
        return Err(DecodeError::Truncated);
    }
    Ok(ThreadedTrace::new(name, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharing_isa::ArchReg;

    fn sample() -> Trace {
        let r = ArchReg::new(3);
        Trace::from_insts(
            "sample",
            vec![
                DynInst::alu(0x0, r, &[ArchReg::new(1)]),
                DynInst::mul(0x4, r, &[r, ArchReg::new(2)]),
                DynInst::load(0x8, r, Some(ArchReg::new(2)), 0xABCD, MemSize::B4),
                DynInst::store(0xC, r, None, 0x1234, MemSize::B1),
                DynInst::branch(0x10, r, true, 0x0),
                DynInst::branch(0x14, r, false, 0x40),
                DynInst::jump(0x18, 0x100),
                DynInst::nop(0x100),
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let t = sample();
        let enc = encode_trace(&t);
        let dec = decode_trace(&enc).unwrap();
        assert_eq!(t, dec);
    }

    #[test]
    fn roundtrip_threaded() {
        let tt = ThreadedTrace::new("mt", vec![sample(), sample()]);
        let dec = decode_threaded(&encode_threaded(&tt)).unwrap();
        assert_eq!(tt, dec);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut enc = encode_trace(&sample());
        enc[0] = b'X';
        assert_eq!(decode_trace(&enc), Err(DecodeError::BadMagic));
    }

    #[test]
    fn rejects_bad_version() {
        let mut enc = encode_trace(&sample());
        enc[5] = 99;
        assert!(matches!(
            decode_trace(&enc),
            Err(DecodeError::BadVersion(_))
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let enc = encode_trace(&sample());
        for cut in [0, 3, 7, 10, enc.len() - 1] {
            assert!(
                decode_trace(&enc[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn rejects_absurd_instruction_count() {
        let t = Trace::from_insts("x", vec![DynInst::nop(0)]);
        let mut enc = encode_trace(&t);
        let count_pos = 4 + 2 + 2 + 1; // magic+ver+namelen+name
        enc[count_pos..count_pos + 8].copy_from_slice(&u64::MAX.to_be_bytes());
        assert_eq!(decode_trace(&enc), Err(DecodeError::Truncated));
    }

    #[test]
    fn rejects_unknown_tag() {
        let t = Trace::from_insts("x", vec![DynInst::nop(0)]);
        let mut enc = encode_trace(&t);
        let tag_pos = 4 + 2 + 2 + 1 + 8; // magic+ver+namelen+name+count
        enc[tag_pos] = 0x7F;
        assert!(matches!(decode_trace(&enc), Err(DecodeError::BadTag(0x7F))));
    }
}
