//! sharing-http — a std-only HTTP/1.1 edge for the ssimd daemon.
//!
//! ssimd's native protocol is newline-delimited JSON over TCP, which a
//! Prometheus scraper, a load balancer's health check, or a plain
//! `curl` cannot speak. This crate is the standards-facing front door,
//! built entirely on `std` (the workspace has zero external
//! dependencies by design, see DESIGN.md §5):
//!
//! * [`parser`] — an incremental HTTP/1.1 request parser:
//!   [`RequestParser`] is fed raw bytes as they arrive off the socket
//!   and yields [`Request`]s, handling split reads, pipelined
//!   keep-alive requests, `Content-Length` bodies, and hostile input
//!   (oversized heads, huge or conflicting lengths, malformed request
//!   lines) with typed [`HttpError`]s that map to 400/413;
//! * [`response`] — [`Response`] with status reasons, headers, and
//!   `Content-Length`/`Connection` framing;
//! * [`router`] — [`Router`], exact and prefix (`/jobs/*`) routes with
//!   correct 404 (unknown path) and 405 + `Allow` (wrong method)
//!   answers;
//! * [`server`] — [`HttpServer`], a bounded acceptor pool: a fixed
//!   worker-thread pool multiplexes many keep-alive connections
//!   through a bounded connection queue (no thread-per-connection
//!   blowup; overflow answers 503 and closes);
//! * [`client`] — [`request`], a one-shot blocking HTTP client used by
//!   `ssim submit --url`, the tests, and the CI smoke probe;
//! * [`lifecycle`] — [`Pidfile`] (write on create, remove on drop) and
//!   polled termination signals ([`install_termination_handler`] /
//!   [`termination_requested`]) so a daemon can drain gracefully on
//!   SIGTERM/SIGINT.
//!
//! # Example
//!
//! ```
//! use sharing_http::{HttpConfig, HttpServer, Response, Router};
//!
//! let router = Router::new().get("/health", |_req| Response::json(200, "{\"status\":\"ok\"}"));
//! let handle = HttpServer::start(
//!     HttpConfig {
//!         addr: "127.0.0.1:0".into(), // ephemeral port
//!         ..HttpConfig::default()
//!     },
//!     router.into_handler(),
//! )?;
//! let addr = handle.local_addr().to_string();
//! let (status, body) = sharing_http::request(&addr, "GET", "/health", None)?;
//! assert_eq!(status, 200);
//! assert_eq!(body, b"{\"status\":\"ok\"}");
//! handle.stop();
//! # Ok::<(), std::io::Error>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod lifecycle;
pub mod parser;
pub mod response;
pub mod router;
pub mod server;

pub use client::{request, split_url};
pub use lifecycle::{
    clear_termination_flag, install_termination_handler, termination_requested, Pidfile,
};
pub use parser::{HttpError, Limits, Request, RequestParser};
pub use response::Response;
pub use router::Router;
pub use server::{HttpConfig, HttpHandle, HttpServer, SharedHandler};
