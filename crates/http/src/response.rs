//! HTTP responses and their wire framing.

/// One HTTP response: status, headers, body. The server adds
/// `Content-Length` and `Connection` framing when serializing.
#[derive(Clone, Debug)]
pub struct Response {
    /// The status code.
    pub status: u16,
    headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty-bodied response.
    #[must_use]
    pub fn new(status: u16) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `text/plain` response.
    #[must_use]
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response::new(status)
            .with_header("Content-Type", "text/plain; charset=utf-8")
            .with_body(body.into().into_bytes())
    }

    /// An `application/json` response.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response::new(status)
            .with_header("Content-Type", "application/json")
            .with_body(body.into().into_bytes())
    }

    /// Replaces the body.
    #[must_use]
    pub fn with_body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// Appends a header.
    #[must_use]
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// The first value of a header, looked up case-insensitively.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The standard reason phrase for a status code (the small set this
    /// server emits).
    #[must_use]
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            202 => "Accepted",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes status line, headers, framing, and body.
    #[must_use]
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\n",
            self.status,
            Response::reason(self.status)
        );
        for (name, value) in &self.headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        out.push_str(if keep_alive {
            "Connection: keep-alive\r\n"
        } else {
            "Connection: close\r\n"
        });
        out.push_str("\r\n");
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(&self.body);
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_status_headers_and_body() {
        let resp = Response::json(200, "{\"ok\":true}");
        let bytes = resp.to_bytes(true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn close_framing_and_reasons() {
        let resp = Response::text(503, "busy");
        let text = String::from_utf8(resp.to_bytes(false)).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert_eq!(Response::reason(405), "Method Not Allowed");
        assert_eq!(Response::reason(413), "Payload Too Large");
        assert_eq!(Response::reason(999), "Unknown");
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let resp = Response::new(204).with_header("Allow", "GET, POST");
        assert_eq!(resp.header("allow"), Some("GET, POST"));
    }
}
