//! The bounded acceptor pool.
//!
//! ```text
//!  clients ──TCP──▶ acceptor thread ──push──▶ bounded connection queue
//!                        │ 503 on overflow            │ pop
//!                        ▼                            ▼
//!                      close                 worker threads (N)
//!                                        parse → handler → respond
//!                                                     │
//!                               idle keep-alive conns re-enqueue ──▶ queue
//! ```
//!
//! A fixed pool of worker threads multiplexes many keep-alive
//! connections: each worker pops a connection, serves every request
//! already buffered, then waits at most one poll interval for more
//! bytes. If the connection goes quiet it is re-enqueued (round-robin)
//! instead of pinning the thread, so N threads hold M ≫ N clients.
//! Stalled partial requests are answered 408 after a deadline; idle
//! connections are closed after an idle timeout; a full connection
//! queue answers 503 at accept. There is no thread-per-connection
//! path anywhere.

use crate::parser::{HttpError, Limits, Request, RequestParser};
use crate::response::Response;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The request handler every worker thread shares.
pub type SharedHandler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Server tunables.
#[derive(Clone, Debug)]
pub struct HttpConfig {
    /// Bind address (use port 0 for an ephemeral port in tests).
    pub addr: String,
    /// Worker threads in the acceptor pool.
    pub threads: usize,
    /// Bounded connection-queue capacity; an accept beyond it answers
    /// 503 and closes (admission control, like the job queue).
    pub max_queued_conns: usize,
    /// Parser limits (oversized input answers 413).
    pub limits: Limits,
    /// How long one worker waits on a quiet connection before
    /// re-enqueueing it.
    pub poll_interval: Duration,
    /// Deadline for a connection holding a partial request; beyond it
    /// the server answers 408 and closes (slowloris defense).
    pub request_timeout: Duration,
    /// Idle keep-alive connections are closed after this long.
    pub idle_timeout: Duration,
    /// Requests served per connection before the server forces a
    /// close (bounds per-connection state lifetime).
    pub max_requests_per_conn: usize,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            addr: "127.0.0.1:0".into(),
            threads: 4,
            max_queued_conns: 128,
            limits: Limits::default(),
            poll_interval: Duration::from_millis(20),
            request_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
            max_requests_per_conn: 1024,
        }
    }
}

/// One live connection's state between worker slices.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    served: usize,
    last_activity: Instant,
    partial_since: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream, limits: Limits) -> Self {
        Conn {
            stream,
            parser: RequestParser::new(limits),
            served: 0,
            last_activity: Instant::now(),
            partial_since: None,
        }
    }
}

/// What a worker decided about a connection after one slice.
enum Disposition {
    /// Keep-alive and quiet: back into the queue.
    Keep,
    /// Done (client closed, error, or `Connection: close`).
    Close,
}

struct Shared {
    cfg: HttpConfig,
    handler: SharedHandler,
    queue: Mutex<ConnQueue>,
    cond: Condvar,
    stopping: AtomicBool,
}

struct ConnQueue {
    conns: VecDeque<Conn>,
    closed: bool,
}

impl Shared {
    /// Admission-controlled push for fresh accepts.
    fn push(&self, conn: Conn) -> Result<(), Conn> {
        let mut q = self.queue.lock().expect("conn queue lock");
        if q.closed || q.conns.len() >= self.cfg.max_queued_conns {
            return Err(conn);
        }
        q.conns.push_back(conn);
        drop(q);
        self.cond.notify_one();
        Ok(())
    }

    /// Re-enqueue for a connection a worker already holds; never
    /// rejected (the cap gates fresh accepts, not live clients).
    fn requeue(&self, conn: Conn) {
        let mut q = self.queue.lock().expect("conn queue lock");
        if q.closed {
            return; // drop: server is stopping
        }
        q.conns.push_back(conn);
        drop(q);
        self.cond.notify_one();
    }

    /// Blocks for the next connection; `None` once the queue closes.
    fn pop(&self) -> Option<Conn> {
        let mut q = self.queue.lock().expect("conn queue lock");
        loop {
            if q.closed {
                return None;
            }
            if let Some(conn) = q.conns.pop_front() {
                return Some(conn);
            }
            q = self.cond.wait(q).expect("conn queue lock");
        }
    }

    fn close(&self) {
        let mut q = self.queue.lock().expect("conn queue lock");
        q.closed = true;
        q.conns.clear();
        drop(q);
        self.cond.notify_all();
    }
}

/// The server; [`HttpServer::start`] returns a handle.
pub struct HttpServer;

/// A running HTTP server. Call [`HttpHandle::stop`] to shut it down;
/// dropping the handle does not stop it.
pub struct HttpHandle {
    local: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds and starts the acceptor thread plus the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn start(cfg: HttpConfig, handler: SharedHandler) -> std::io::Result<HttpHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local = listener.local_addr()?;
        let threads = cfg.threads.max(1);
        let shared = Arc::new(Shared {
            cfg,
            handler,
            queue: Mutex::new(ConnQueue {
                conns: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            stopping: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("http-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn http worker")
            })
            .collect();
        let astate = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("http-acceptor".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if astate.stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // Chaos accept seam: a drop_conn fault closes the
                    // just-accepted connection without serving it.
                    if sharing_chaos::hooks().on_http_accept() == sharing_chaos::IoFault::Drop {
                        continue;
                    }
                    let conn = Conn::new(stream, astate.cfg.limits);
                    if let Err(mut rejected) = astate.push(conn) {
                        // Admission control at the edge, mirroring the
                        // job queue's backpressure reply.
                        let resp = Response::json(503, "{\"error\":\"connection queue full\"}");
                        let _ = rejected.stream.write_all(&resp.to_bytes(false));
                    }
                }
            })
            .expect("spawn http acceptor");
        Ok(HttpHandle {
            local,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

impl HttpHandle {
    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Stops accepting, closes the connection queue, and joins every
    /// thread. In-flight requests finish their current response first.
    pub fn stop(mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.close();
        // Kick the acceptor out of accept() with a throwaway connection.
        let _ = TcpStream::connect(self.local);
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(mut conn) = shared.pop() {
        match serve_slice(shared, &mut conn) {
            Disposition::Close => {}
            Disposition::Keep => {
                let stopping = shared.stopping.load(Ordering::SeqCst);
                let idle = conn.last_activity.elapsed() >= shared.cfg.idle_timeout;
                if !stopping && !idle {
                    shared.requeue(conn);
                }
            }
        }
    }
}

/// Serves one time slice of a connection: every buffered request, then
/// at most one poll-interval read. Quiet connections return
/// [`Disposition::Keep`] so the worker moves on.
fn serve_slice(shared: &Arc<Shared>, conn: &mut Conn) -> Disposition {
    let _ = conn.stream.set_read_timeout(Some(shared.cfg.poll_interval));
    loop {
        // Drain complete (possibly pipelined) requests first.
        loop {
            match conn.parser.next_request() {
                Ok(Some(req)) => {
                    conn.partial_since = None;
                    conn.last_activity = Instant::now();
                    conn.served += 1;
                    let resp = (shared.handler)(&req);
                    let keep = req.keep_alive()
                        && conn.served < shared.cfg.max_requests_per_conn
                        && !shared.stopping.load(Ordering::SeqCst);
                    if conn.stream.write_all(&resp.to_bytes(keep)).is_err() || !keep {
                        return Disposition::Close;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let _ = conn.stream.write_all(&error_response(&e).to_bytes(false));
                    return Disposition::Close;
                }
            }
        }
        if conn.parser.has_partial() {
            match conn.partial_since {
                Some(t0) if t0.elapsed() >= shared.cfg.request_timeout => {
                    let resp = Response::json(408, "{\"error\":\"request timeout\"}");
                    let _ = conn.stream.write_all(&resp.to_bytes(false));
                    return Disposition::Close;
                }
                Some(_) => {}
                None => conn.partial_since = Some(Instant::now()),
            }
        }
        // Chaos read seam: slow_read stalls before the read, drop_conn
        // abandons the connection mid-request.
        match sharing_chaos::hooks().on_http_read() {
            sharing_chaos::IoFault::Pass => {}
            sharing_chaos::IoFault::Drop => return Disposition::Close,
            sharing_chaos::IoFault::Delay(d) => std::thread::sleep(d),
        }
        let mut buf = [0u8; 8192];
        match conn.stream.read(&mut buf) {
            Ok(0) => return Disposition::Close,
            Ok(n) => {
                conn.parser.feed(&buf[..n]);
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Disposition::Keep;
            }
            Err(_) => return Disposition::Close,
        }
    }
}

/// The error reply for a parse failure: its mapped status plus a JSON
/// detail body.
fn error_response(err: &HttpError) -> Response {
    let detail = err.message().replace('\\', "\\\\").replace('"', "\\\"");
    Response::json(err.status(), format!("{{\"error\":\"{detail}\"}}"))
}
