//! A one-shot blocking HTTP/1.1 client.
//!
//! Small on purpose: one request per connection (`Connection: close`),
//! read to EOF, return `(status, body)`. It backs `ssim submit --url`,
//! the integration tests, and the CI smoke probe — places where a full
//! client stack would be overkill but hand-rolled socket code would be
//! repeated four times.

use std::io::{Error, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Splits `http://host:port[/base]` (the scheme is optional) into
/// `(authority, base_path)`; the base path has no trailing slash.
///
/// # Errors
///
/// `InvalidInput` when no authority is present.
pub fn split_url(url: &str) -> std::io::Result<(String, String)> {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    let (authority, base) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, ""),
    };
    if authority.is_empty() {
        return Err(Error::new(
            ErrorKind::InvalidInput,
            format!("URL `{url}` has no host"),
        ));
    }
    Ok((
        authority.to_string(),
        base.trim_end_matches('/').to_string(),
    ))
}

/// Performs one HTTP request and returns `(status, body)`. A body, when
/// given, is sent as `application/json` with its `Content-Length`.
///
/// # Errors
///
/// Propagates socket errors; `InvalidData` when the response cannot be
/// framed as HTTP.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> std::io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let path = if path.is_empty() { "/" } else { path };
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    if let Some(body) = body {
        head.push_str("Content-Type: application/json\r\n");
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if let Some(body) = body {
        stream.write_all(body)?;
    }
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn bad(msg: &str) -> Error {
    Error::new(ErrorKind::InvalidData, msg.to_string())
}

/// Splits a full response read to EOF into `(status, body)`.
fn parse_response(raw: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response has no header terminator"))?;
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("response head is not UTF-8"))?;
    let status_line = head.lines().next().ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    Ok((status, raw[head_end + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_urls() {
        assert_eq!(
            split_url("http://127.0.0.1:8080").unwrap(),
            ("127.0.0.1:8080".into(), String::new())
        );
        assert_eq!(
            split_url("127.0.0.1:8080/").unwrap(),
            ("127.0.0.1:8080".into(), String::new())
        );
        assert_eq!(
            split_url("http://h:1/base/").unwrap(),
            ("h:1".into(), "/base".into())
        );
        assert!(split_url("http:///jobs").is_err());
    }

    #[test]
    fn parses_responses() {
        let (status, body) =
            parse_response(b"HTTP/1.1 202 Accepted\r\nContent-Length: 2\r\n\r\nok").unwrap();
        assert_eq!(status, 202);
        assert_eq!(body, b"ok");
        assert!(parse_response(b"garbage").is_err());
        assert!(parse_response(b"HTTP/1.1 nope\r\n\r\n").is_err());
    }
}
