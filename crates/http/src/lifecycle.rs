//! Daemon lifecycle: pidfile management and termination signals.
//!
//! [`Pidfile`] writes the process id on create and removes the file on
//! drop, so `ssimd --pidfile` cleans up after a graceful drain.
//! [`install_termination_handler`] registers a minimal SIGTERM/SIGINT
//! handler that only sets a process-global flag — the issue's "polled
//! flag" design: the daemon's main loop polls
//! [`termination_requested`] and runs the ordinary graceful-drain path
//! itself, so no drain logic ever runs in signal context.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process;

/// A pidfile held for the daemon's lifetime: written on create,
/// removed on drop.
#[derive(Debug)]
pub struct Pidfile {
    path: PathBuf,
}

impl Pidfile {
    /// Writes this process's pid to `path`. A leftover pidfile naming a
    /// pid that is no longer alive (checked via `/proc`) is treated as
    /// stale and overwritten; one naming a live pid is an
    /// `AlreadyExists` error so two daemons cannot share a pidfile.
    ///
    /// # Errors
    ///
    /// `AlreadyExists` when the pidfile names a live process;
    /// otherwise propagates filesystem errors.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<Pidfile> {
        let path = path.into();
        if let Ok(existing) = fs::read_to_string(&path) {
            if let Ok(pid) = existing.trim().parse::<u32>() {
                if pid != process::id() && Path::new(&format!("/proc/{pid}")).exists() {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        format!("pidfile {} names live pid {pid}", path.display()),
                    ));
                }
            }
        }
        fs::write(&path, format!("{}\n", process::id()))?;
        Ok(Pidfile { path })
    }

    /// Where the pidfile lives.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for Pidfile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// The signal plumbing. This is the workspace's single unsafe island:
/// there is no `libc` crate offline, so `signal(2)` is declared
/// directly against the C library `std` already links. The handler
/// body is one atomic store — async-signal-safe by construction.
#[allow(unsafe_code)]
mod sig {
    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};

    pub(super) static TERMINATE: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    /// `SIG_ERR`: `signal(2)` returns the previous handler, or all-ones
    /// on failure.
    const SIG_ERR: usize = usize::MAX;

    extern "C" {
        /// `signal(2)` from the platform C library. Handler slots are
        /// exchanged as plain addresses (`sighandler_t`).
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_terminate(_signum: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() -> io::Result<()> {
        for signum in [SIGINT, SIGTERM] {
            let handler = on_terminate as extern "C" fn(i32) as usize;
            let prev = unsafe { signal(signum, handler) };
            if prev == SIG_ERR {
                return Err(io::Error::last_os_error());
            }
        }
        Ok(())
    }
}

/// Registers the SIGTERM/SIGINT handler; after this, either signal
/// flips the flag behind [`termination_requested`] instead of killing
/// the process.
///
/// # Errors
///
/// Propagates the OS error when a handler cannot be installed.
pub fn install_termination_handler() -> io::Result<()> {
    sig::install()
}

/// Whether SIGTERM or SIGINT has arrived since the handler was
/// installed (or the flag was last cleared).
#[must_use]
pub fn termination_requested() -> bool {
    sig::TERMINATE.load(std::sync::atomic::Ordering::SeqCst)
}

/// Resets the termination flag (tests; a daemon that drains and
/// restarts in-process).
pub fn clear_termination_flag() {
    sig::TERMINATE.store(false, std::sync::atomic::Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sharing-http-{}-{name}", process::id()))
    }

    #[test]
    fn pidfile_written_on_create_and_removed_on_drop() {
        let path = tmp("pidfile-basic");
        let _ = fs::remove_file(&path);
        {
            let pidfile = Pidfile::create(&path).unwrap();
            assert_eq!(pidfile.path(), path.as_path());
            let written = fs::read_to_string(&path).unwrap();
            assert_eq!(written.trim().parse::<u32>().unwrap(), process::id());
        }
        assert!(!path.exists(), "dropped pidfile must be removed");
    }

    #[test]
    fn stale_pidfile_is_overwritten() {
        let path = tmp("pidfile-stale");
        // No live process has pid 0 from userspace's point of view
        // (/proc/0 does not exist), so this is stale by definition.
        fs::write(&path, "0\n").unwrap();
        let _pidfile = Pidfile::create(&path).unwrap();
        let written = fs::read_to_string(&path).unwrap();
        assert_eq!(written.trim().parse::<u32>().unwrap(), process::id());
    }

    #[test]
    fn pidfile_naming_a_live_pid_is_refused() {
        if !Path::new("/proc/self").exists() {
            return; // liveness probe needs procfs
        }
        let path = tmp("pidfile-live");
        // Pid 1 is always alive.
        fs::write(&path, "1\n").unwrap();
        let err = Pidfile::create(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn garbage_pidfile_is_overwritten() {
        let path = tmp("pidfile-garbage");
        fs::write(&path, "not a pid\n").unwrap();
        let _pidfile = Pidfile::create(&path).unwrap();
        let written = fs::read_to_string(&path).unwrap();
        assert_eq!(written.trim().parse::<u32>().unwrap(), process::id());
    }

    #[test]
    fn sigterm_sets_the_polled_flag() {
        install_termination_handler().unwrap();
        clear_termination_flag();
        assert!(!termination_requested());
        // `kill` is a shell builtin everywhere, so no binary dependency.
        let status = process::Command::new("sh")
            .arg("-c")
            .arg(format!("kill -s TERM {}", process::id()))
            .status()
            .expect("run kill");
        assert!(status.success());
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while !termination_requested() {
            assert!(
                std::time::Instant::now() < deadline,
                "signal never reached the flag"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        clear_termination_flag();
    }
}
