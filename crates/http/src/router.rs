//! Method + path routing with correct 404 / 405 answers.

use crate::parser::Request;
use crate::response::Response;
use crate::server::SharedHandler;
use std::sync::Arc;

type Handler = Box<dyn Fn(&Request) -> Response + Send + Sync>;

enum Pattern {
    /// The path must match exactly.
    Exact(String),
    /// A `"/jobs/*"` route: the path must start with `"/jobs/"`.
    Prefix(String),
}

impl Pattern {
    fn matches(&self, path: &str) -> bool {
        match self {
            Pattern::Exact(p) => path == p,
            Pattern::Prefix(p) => path.starts_with(p.as_str()),
        }
    }
}

struct Route {
    method: &'static str,
    pattern: Pattern,
    handler: Handler,
}

/// An ordered route table. A path that matches no route answers 404; a
/// path that matches only other methods answers 405 with an `Allow`
/// header listing them.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    /// An empty router.
    #[must_use]
    pub fn new() -> Self {
        Router::default()
    }

    /// Adds a route. A pattern ending in `"/*"` matches any path under
    /// the prefix (the handler sees the full path); anything else
    /// matches exactly.
    #[must_use]
    pub fn route(
        mut self,
        method: &'static str,
        pattern: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        let pattern = match pattern.strip_suffix("/*") {
            Some(prefix) => Pattern::Prefix(format!("{prefix}/")),
            None => Pattern::Exact(pattern.to_string()),
        };
        self.routes.push(Route {
            method,
            pattern,
            handler: Box::new(handler),
        });
        self
    }

    /// Adds a `GET` route.
    #[must_use]
    pub fn get(
        self,
        pattern: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.route("GET", pattern, handler)
    }

    /// Adds a `POST` route.
    #[must_use]
    pub fn post(
        self,
        pattern: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.route("POST", pattern, handler)
    }

    /// Dispatches one request.
    #[must_use]
    pub fn handle(&self, req: &Request) -> Response {
        let mut allowed: Vec<&'static str> = Vec::new();
        for route in &self.routes {
            if !route.pattern.matches(&req.path) {
                continue;
            }
            if route.method == req.method {
                return (route.handler)(req);
            }
            if !allowed.contains(&route.method) {
                allowed.push(route.method);
            }
        }
        if allowed.is_empty() {
            Response::json(
                404,
                format!("{{\"error\":\"no such path\",\"path\":\"{}\"}}", req.path),
            )
        } else {
            Response::json(
                405,
                format!(
                    "{{\"error\":\"method not allowed\",\"method\":\"{}\"}}",
                    req.method
                ),
            )
            .with_header("Allow", allowed.join(", "))
        }
    }

    /// Wraps the router as the shared handler [`crate::HttpServer`]
    /// consumes.
    #[must_use]
    pub fn into_handler(self) -> SharedHandler {
        Arc::new(move |req: &Request| self.handle(req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{Limits, RequestParser};

    fn req(raw: &[u8]) -> Request {
        let mut p = RequestParser::new(Limits::default());
        p.feed(raw);
        p.next_request().unwrap().unwrap()
    }

    fn router() -> Router {
        Router::new()
            .get("/health", |_| Response::text(200, "ok"))
            .post("/jobs", |r| {
                Response::text(202, format!("{} bytes", r.body.len()))
            })
            .get("/jobs/*", |r| Response::text(200, r.path.clone()))
    }

    #[test]
    fn dispatches_exact_and_prefix_routes() {
        let r = router();
        assert_eq!(r.handle(&req(b"GET /health HTTP/1.1\r\n\r\n")).status, 200);
        let posted = r.handle(&req(b"POST /jobs HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc"));
        assert_eq!(posted.status, 202);
        assert_eq!(posted.body, b"3 bytes");
        let polled = r.handle(&req(b"GET /jobs/42 HTTP/1.1\r\n\r\n"));
        assert_eq!(polled.status, 200);
        assert_eq!(polled.body, b"/jobs/42");
    }

    #[test]
    fn unknown_path_is_404() {
        let resp = router().handle(&req(b"GET /nope HTTP/1.1\r\n\r\n"));
        assert_eq!(resp.status, 404);
        // "/jobs" exact and "/jobs/*" prefix are distinct: bare "/jobs"
        // does not match the prefix route.
        let resp = router().handle(&req(b"GET /jobs HTTP/1.1\r\n\r\n"));
        assert_eq!(resp.status, 405, "GET /jobs matches only POST");
    }

    #[test]
    fn wrong_method_is_405_with_allow() {
        let resp = router().handle(&req(b"DELETE /health HTTP/1.1\r\n\r\n"));
        assert_eq!(resp.status, 405);
        assert_eq!(resp.header("Allow"), Some("GET"));
        // Lowercase methods are tokens too — unknown, not malformed.
        let resp = router().handle(&req(b"get /health HTTP/1.1\r\n\r\n"));
        assert_eq!(resp.status, 405);
    }
}
