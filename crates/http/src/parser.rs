//! Incremental HTTP/1.1 request parsing.
//!
//! [`RequestParser`] owns a byte buffer: [`RequestParser::feed`] it
//! whatever `read()` returned — a byte at a time, half a request, or
//! three pipelined requests — and drain complete [`Request`]s with
//! [`RequestParser::next_request`]. Parse failures are typed
//! [`HttpError`]s carrying the status code the connection should
//! answer with before closing (400 for malformed input, 413 for
//! oversized heads or bodies). The parser never panics on hostile
//! input; anything it cannot frame is an error, not a guess.

use std::fmt;

/// Input limits enforced during parsing.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum bytes for the request line plus headers; beyond this the
    /// parser answers 413 (the head is unbounded attacker-controlled
    /// input until the blank line arrives).
    pub max_head_bytes: usize,
    /// Maximum `Content-Length`; larger bodies answer 413 before any
    /// body byte is buffered.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1 << 20,
        }
    }
}

/// A parse failure, tagged with the HTTP status it maps to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Structurally invalid input → 400.
    BadRequest(String),
    /// Head or declared body over the configured limits → 413.
    TooLarge(String),
}

impl HttpError {
    /// The HTTP status code this failure answers with.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::TooLarge(_) => 413,
        }
    }

    /// The human-readable detail.
    #[must_use]
    pub fn message(&self) -> &str {
        match self {
            HttpError::BadRequest(m) | HttpError::TooLarge(m) => m,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.status(), self.message())
    }
}

/// One parsed HTTP/1.1 request.
#[derive(Clone, Debug)]
pub struct Request {
    /// The method token, verbatim (methods are case-sensitive; an
    /// unknown method is the router's 405, not a parse error).
    pub method: String,
    /// The request target as received (path plus optional query).
    pub target: String,
    /// The path portion of the target.
    pub path: String,
    /// The query string after `?`, if any.
    pub query: Option<String>,
    /// HTTP minor version: 0 for HTTP/1.0, 1 for HTTP/1.1.
    pub version_minor: u8,
    /// Header `(name, value)` pairs; names are lowercased at parse time
    /// so lookup is case-insensitive.
    headers: Vec<(String, String)>,
    /// The body bytes (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, looked up case-insensitively.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every header as lowercased `(name, value)` pairs, in order.
    #[must_use]
    pub fn headers(&self) -> &[(String, String)] {
        &self.headers
    }

    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and an
    /// explicit `Connection` header overrides either default.
    #[must_use]
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.version_minor >= 1,
        }
    }

    /// The body as UTF-8, if it is valid UTF-8.
    #[must_use]
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// The incremental parser; see the module docs.
#[derive(Debug)]
pub struct RequestParser {
    limits: Limits,
    buf: Vec<u8>,
}

impl RequestParser {
    /// A fresh parser enforcing `limits`.
    #[must_use]
    pub fn new(limits: Limits) -> Self {
        RequestParser {
            limits,
            buf: Vec::new(),
        }
    }

    /// Bytes buffered but not yet consumed by a complete request.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether a partial request is sitting in the buffer (used by the
    /// server to enforce a deadline on slow or stalled clients).
    #[must_use]
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Appends raw socket bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Drains the next complete request, `Ok(None)` while more bytes
    /// are needed.
    ///
    /// # Errors
    ///
    /// [`HttpError`] on malformed or oversized input; the connection
    /// should answer with [`HttpError::status`] and close (the buffer
    /// is not recoverable past an error).
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        // Tolerate stray blank lines between pipelined requests.
        let skip = self
            .buf
            .iter()
            .take_while(|&&b| b == b'\r' || b == b'\n')
            .count();
        if skip > 0 {
            self.buf.drain(..skip);
        }
        if self.buf.is_empty() {
            return Ok(None);
        }
        let Some((head_end, body_start)) = find_head_end(&self.buf) else {
            if self.buf.len() > self.limits.max_head_bytes {
                return Err(HttpError::TooLarge(format!(
                    "request head exceeds {} bytes",
                    self.limits.max_head_bytes
                )));
            }
            return Ok(None);
        };
        if head_end > self.limits.max_head_bytes {
            return Err(HttpError::TooLarge(format!(
                "request head exceeds {} bytes",
                self.limits.max_head_bytes
            )));
        }
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| HttpError::BadRequest("request head is not valid UTF-8".into()))?;
        let (method, target, version_minor, headers) = parse_head(head)?;
        let declared = content_length(&headers)?;
        if declared > self.limits.max_body_bytes as u128 {
            return Err(HttpError::TooLarge(format!(
                "Content-Length {declared} exceeds {} bytes",
                self.limits.max_body_bytes
            )));
        }
        let body_len = declared as usize;
        let total = body_start + body_len;
        if self.buf.len() < total {
            return Ok(None); // waiting for the rest of the body
        }
        let body = self.buf[body_start..total].to_vec();
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (target.clone(), None),
        };
        self.buf.drain(..total);
        Ok(Some(Request {
            method,
            target,
            path,
            query,
            version_minor,
            headers,
            body,
        }))
    }
}

/// Finds the end of the head: `(head_end, body_start)` where
/// `head_end` includes the final header line's newline and
/// `body_start` is past the blank line. Accepts both `\r\n\r\n` and
/// bare `\n\n` separators.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    for (i, &b) in buf.iter().enumerate() {
        if b != b'\n' {
            continue;
        }
        if buf.get(i + 1) == Some(&b'\n') {
            return Some((i + 1, i + 2));
        }
        if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
            return Some((i + 1, i + 3));
        }
    }
    None
}

type Head = (String, String, u8, Vec<(String, String)>);

/// Parses the request line and headers out of the head text.
fn parse_head(head: &str) -> Result<Head, HttpError> {
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request head".into()))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line `{request_line}`"
            )))
        }
    };
    if !method.chars().all(|c| c.is_ascii_alphabetic()) {
        return Err(HttpError::BadRequest(format!(
            "malformed method `{method}`"
        )));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "request target `{target}` must be origin-form (start with `/`)"
        )));
    }
    let version_minor = match version {
        "HTTP/1.1" => 1,
        "HTTP/1.0" => 0,
        other => {
            return Err(HttpError::BadRequest(format!(
                "unsupported HTTP version `{other}`"
            )))
        }
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the blank terminator itself
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            return Err(HttpError::BadRequest(
                "obsolete header line folding is not supported".into(),
            ));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!(
                "malformed header line `{line}`"
            )));
        };
        if name.is_empty() || !name.bytes().all(|b| b.is_ascii_graphic()) {
            return Err(HttpError::BadRequest(format!(
                "malformed header name `{name}`"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((
        method.to_string(),
        target.to_string(),
        version_minor,
        headers,
    ))
}

/// Resolves `Content-Length`: absent means a zero-length body;
/// duplicates must agree; the value is parsed wide (`u128`) so a huge
/// length reports 413 at the caller instead of a parse failure.
fn content_length(headers: &[(String, String)]) -> Result<u128, HttpError> {
    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(HttpError::BadRequest(
            "Transfer-Encoding is not supported; use Content-Length".into(),
        ));
    }
    let mut found: Option<u128> = None;
    for (_, v) in headers.iter().filter(|(n, _)| n == "content-length") {
        let parsed: u128 = v
            .parse()
            .map_err(|_| HttpError::BadRequest(format!("invalid Content-Length `{v}`")))?;
        if let Some(prev) = found {
            if prev != parsed {
                return Err(HttpError::BadRequest(
                    "conflicting Content-Length headers".into(),
                ));
            }
        }
        found = Some(parsed);
    }
    Ok(found.unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parser() -> RequestParser {
        RequestParser::new(Limits::default())
    }

    fn one(input: &[u8]) -> Result<Option<Request>, HttpError> {
        let mut p = parser();
        p.feed(input);
        p.next_request()
    }

    #[test]
    fn parses_a_simple_get() {
        let req = one(b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/health");
        assert_eq!(req.query, None);
        assert_eq!(req.version_minor, 1);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive());
    }

    #[test]
    fn splits_path_and_query() {
        let req = one(b"GET /jobs/7?verbose=1 HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/jobs/7");
        assert_eq!(req.query.as_deref(), Some("verbose=1"));
        assert_eq!(req.target, "/jobs/7?verbose=1");
    }

    #[test]
    fn survives_byte_at_a_time_reads() {
        let raw = b"POST /jobs HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let mut p = parser();
        for (i, b) in raw.iter().enumerate() {
            p.feed(&[*b]);
            let out = p.next_request().expect("no error on partial input");
            if i + 1 < raw.len() {
                assert!(out.is_none(), "complete request before byte {i}");
            } else {
                let req = out.expect("complete at final byte");
                assert_eq!(req.body, b"hello");
            }
        }
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn body_split_across_feeds() {
        let mut p = parser();
        p.feed(b"POST /jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345");
        assert!(p.next_request().unwrap().is_none(), "body incomplete");
        p.feed(b"67890");
        let req = p.next_request().unwrap().unwrap();
        assert_eq!(req.body, b"1234567890");
    }

    #[test]
    fn pipelined_keep_alive_requests_drain_in_order() {
        let mut p = parser();
        p.feed(
            b"POST /jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
              GET /health HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n",
        );
        let a = p.next_request().unwrap().unwrap();
        assert_eq!((a.method.as_str(), a.path.as_str()), ("POST", "/jobs"));
        assert_eq!(a.body, b"hi");
        let b = p.next_request().unwrap().unwrap();
        assert_eq!(b.path, "/health");
        let c = p.next_request().unwrap().unwrap();
        assert_eq!(c.path, "/metrics");
        assert!(p.next_request().unwrap().is_none());
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let req = one(b"GET /health HTTP/1.1\nHost: y\n\n").unwrap().unwrap();
        assert_eq!(req.header("host"), Some("y"));
    }

    #[test]
    fn leading_blank_lines_are_skipped() {
        let req = one(b"\r\n\r\nGET /health HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/health");
    }

    #[test]
    fn oversized_head_is_413_even_unterminated() {
        let mut p = RequestParser::new(Limits {
            max_head_bytes: 64,
            max_body_bytes: 1024,
        });
        // No terminator at all: the parser must bound buffering anyway.
        p.feed(&[b'A'; 100]);
        let err = p.next_request().unwrap_err();
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn oversized_terminated_head_is_413() {
        let mut p = RequestParser::new(Limits {
            max_head_bytes: 32,
            max_body_bytes: 1024,
        });
        p.feed(b"GET /x HTTP/1.1\r\nX-Pad: aaaaaaaaaaaaaaaaaaaaaaaa\r\n\r\n");
        assert_eq!(p.next_request().unwrap_err().status(), 413);
    }

    #[test]
    fn huge_content_length_is_413_not_a_panic() {
        let err = one(b"POST /jobs HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n")
            .unwrap_err();
        assert_eq!(err.status(), 413);
        let err = one(b"POST /jobs HTTP/1.1\r\nContent-Length: 1048577\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn invalid_content_length_is_400() {
        assert_eq!(
            one(b"POST /jobs HTTP/1.1\r\nContent-Length: ten\r\n\r\n")
                .unwrap_err()
                .status(),
            400
        );
        assert_eq!(
            one(b"POST /jobs HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
                .unwrap_err()
                .status(),
            400
        );
    }

    #[test]
    fn conflicting_content_lengths_are_400() {
        let err = one(b"POST /jobs HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n")
            .unwrap_err();
        assert_eq!(err.status(), 400);
        // Agreeing duplicates are fine.
        let req = one(b"POST /jobs HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"ok");
    }

    #[test]
    fn missing_content_length_means_empty_body() {
        let mut p = parser();
        p.feed(b"POST /jobs HTTP/1.1\r\n\r\n{\"type\":\"ping\"}");
        let req = p.next_request().unwrap().unwrap();
        assert!(req.body.is_empty(), "no Content-Length, no body");
        // The stray bytes sit in the buffer as a partial next request;
        // once framed they surface as 400 — never a misread body.
        assert!(p.next_request().unwrap().is_none());
        assert!(p.has_partial());
        p.feed(b"\r\n\r\n");
        assert_eq!(p.next_request().unwrap_err().status(), 400);
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for raw in [
            b"GET /x\r\n\r\n".as_slice(),                   // missing version
            b"GET /x HTTP/1.1 extra\r\n\r\n".as_slice(),    // four tokens
            b"GET  /x HTTP/1.1\r\n\r\n".as_slice(),         // double space
            b"G=T /x HTTP/1.1\r\n\r\n".as_slice(),          // non-token method
            b"GET x HTTP/1.1\r\n\r\n".as_slice(),           // non-origin target
            b"GET /x HTTP/2.0\r\n\r\n".as_slice(),          // unsupported version
            b"\x00\x01\x02 /x HTTP/1.1\r\n\r\n".as_slice(), // binary garbage
            b"GET /x HTTP/1.1\r\nNo colon here\r\n\r\n".as_slice(), // bad header
            b"GET /x HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n".as_slice(), // obs-fold
            b"GET /x HTTP/1.1\r\nBad name: 1\r\n\r\n".as_slice(), // space in name
        ] {
            let err = one(raw).unwrap_err();
            assert_eq!(
                err.status(),
                400,
                "input {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn non_utf8_head_is_400() {
        assert_eq!(
            one(b"GET /\xff\xfe HTTP/1.1\r\n\r\n").unwrap_err().status(),
            400
        );
    }

    #[test]
    fn transfer_encoding_is_rejected() {
        let err = one(b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn keep_alive_defaults_follow_versions() {
        let v11 = one(b"GET / HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert!(v11.keep_alive());
        let v11_close = one(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!v11_close.keep_alive());
        let v10 = one(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!v10.keep_alive());
        let v10_keep = one(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(v10_keep.keep_alive());
    }
}
