//! Integration tests for the bounded acceptor pool: many keep-alive
//! clients on few threads, queue-overflow backpressure, and hostile
//! input arriving over a real socket.

use sharing_http::{HttpConfig, HttpHandle, Limits, Response, Router};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn start(cfg: HttpConfig) -> HttpHandle {
    let router = Router::new()
        .get("/health", |_| Response::json(200, "{\"status\":\"ok\"}"))
        .get("/slow", |_| {
            std::thread::sleep(Duration::from_millis(300));
            Response::text(200, "slow done")
        })
        .post("/echo", |req| {
            Response::new(200).with_body(req.body.clone())
        });
    sharing_http::HttpServer::start(cfg, router.into_handler()).expect("bind http")
}

/// Reads one response off a keep-alive connection: the head, then
/// exactly `Content-Length` body bytes.
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, Vec<u8>) {
    let mut status = 0u16;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read head") > 0,
            "EOF in head"
        );
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if line.starts_with("HTTP/1.1 ") {
            status = line.split(' ').nth(1).unwrap().parse().unwrap();
        } else if let Some(v) = line.strip_prefix("Content-Length: ") {
            content_length = v.parse().unwrap();
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    (status, body)
}

#[test]
fn more_keep_alive_clients_than_threads() {
    // 2 worker threads hold 6 keep-alive connections: idle connections
    // must re-enqueue rather than pin a thread, or requests 3..6 hang.
    let handle = start(HttpConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        ..HttpConfig::default()
    });
    let addr = handle.local_addr();
    let mut conns: Vec<(TcpStream, BufReader<TcpStream>)> = (0..6)
        .map(|_| {
            let stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            (stream, reader)
        })
        .collect();
    for round in 0..3 {
        for (i, (stream, reader)) in conns.iter_mut().enumerate() {
            let body = format!("round {round} conn {i}");
            let req = format!(
                "POST /echo HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            );
            stream.write_all(req.as_bytes()).expect("write");
            let (status, echoed) = read_response(reader);
            assert_eq!(status, 200);
            assert_eq!(echoed, body.as_bytes());
        }
    }
    handle.stop();
}

#[test]
fn overflowing_the_connection_queue_answers_503() {
    let handle = start(HttpConfig {
        addr: "127.0.0.1:0".into(),
        threads: 1,
        max_queued_conns: 1,
        ..HttpConfig::default()
    });
    let addr = handle.local_addr();
    // Occupy the single worker with a slow request...
    let mut busy = TcpStream::connect(addr).unwrap();
    busy.write_all(b"GET /slow HTTP/1.1\r\n\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(100)); // worker picks it up
                                                    // ...fill the one queue slot...
    let _queued = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100)); // acceptor enqueues it
                                                    // ...and the next accept must be turned away with a 503.
    let overflow = TcpStream::connect(addr).unwrap();
    overflow
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(overflow);
    let (status, body) = read_response(&mut reader);
    assert_eq!(status, 503);
    assert!(String::from_utf8_lossy(&body).contains("queue full"));
    // The slow request itself still completes.
    busy.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut busy_reader = BufReader::new(busy);
    let (status, body) = read_response(&mut busy_reader);
    assert_eq!(status, 200);
    assert_eq!(body, b"slow done");
    handle.stop();
}

#[test]
fn hostile_input_over_the_wire_maps_to_status_codes() {
    let handle = start(HttpConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        limits: Limits {
            max_head_bytes: 256,
            max_body_bytes: 1024,
        },
        ..HttpConfig::default()
    });
    let addr = handle.local_addr();
    let cases: [(&[u8], u16); 4] = [
        (b"NOT AN HTTP REQUEST AT ALL\r\n\r\n", 400),
        (b"POST /echo HTTP/1.1\r\nContent-Length: 99999\r\n\r\n", 413),
        (b"GET /nope HTTP/1.1\r\n\r\n", 404),
        (b"DELETE /health HTTP/1.1\r\n\r\n", 405),
    ];
    for (raw, expected) in cases {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(raw).unwrap();
        let mut reader = BufReader::new(stream);
        let (status, _) = read_response(&mut reader);
        assert_eq!(status, expected, "input {:?}", String::from_utf8_lossy(raw));
    }
    // Oversized head with no terminator: the parser must refuse to
    // buffer forever.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&vec![b'A'; 4096]).unwrap();
    let mut reader = BufReader::new(stream);
    let (status, _) = read_response(&mut reader);
    assert_eq!(status, 413);
    // And the server is still healthy afterwards.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"GET /health HTTP/1.1\r\n\r\n").unwrap();
    let mut reader = BufReader::new(stream);
    let (status, _) = read_response(&mut reader);
    assert_eq!(status, 200);
    handle.stop();
}

#[test]
fn pipelined_requests_on_one_connection() {
    let handle = start(HttpConfig {
        addr: "127.0.0.1:0".into(),
        threads: 1,
        ..HttpConfig::default()
    });
    let addr = handle.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /health HTTP/1.1\r\n\r\nGET /health HTTP/1.1\r\n\r\n")
        .unwrap();
    let mut reader = BufReader::new(stream);
    for _ in 0..2 {
        let (status, body) = read_response(&mut reader);
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"status\":\"ok\"}");
    }
    handle.stop();
}
