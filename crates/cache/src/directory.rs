//! Directory-based MSI coherence between VCores.
//!
//! The paper places the coherence point between the L1s and a per-VM shared
//! L2 (§3.5): "We modeled this with a detailed model which has a directory
//! in the L2. Our modeled cache coherence protocol includes switched network
//! cost based on distance and L1 invalidations." Within a VCore no coherence
//! is needed (L1D lines are Slice-interleaved); between the VCores of a VM,
//! this directory tracks which VCores' L1s hold each line and emits the
//! invalidation/forward actions whose network cost the simulator charges.

use std::collections::HashMap;

/// Maximum VCores a single directory can track (bitmask width).
pub const MAX_VCORES: usize = 64;

/// MSI state of a line at the directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirState {
    /// No L1 holds the line.
    Invalid,
    /// One or more L1s hold a clean copy.
    Shared,
    /// Exactly one L1 holds a dirty copy.
    Modified,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    state: DirState,
    sharers: u64,
}

impl Entry {
    fn sharer_list(&self) -> Vec<usize> {
        (0..MAX_VCORES)
            .filter(|&i| self.sharers & (1 << i) != 0)
            .collect()
    }
}

/// Coherence work required to satisfy an access.
///
/// The caller (the simulator) turns these into network messages and charges
/// distance-based latency for each.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoherenceAction {
    /// VCores whose L1 copies must be invalidated before the access
    /// proceeds.
    pub invalidate: Vec<usize>,
    /// A VCore holding the line dirty that must forward/write back the
    /// data first.
    pub fetch_from: Option<usize>,
}

impl CoherenceAction {
    /// Whether the access required no coherence traffic.
    #[must_use]
    pub fn is_free(&self) -> bool {
        self.invalidate.is_empty() && self.fetch_from.is_none()
    }
}

/// Counters for coherence activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirStats {
    /// Read requests processed.
    pub reads: u64,
    /// Write (ownership) requests processed.
    pub writes: u64,
    /// L1 invalidations issued.
    pub invalidations: u64,
    /// Dirty forwards from an owner.
    pub forwards: u64,
}

/// The per-VM L2 directory.
///
/// # Example
///
/// ```
/// use sharing_cache::{Directory, DirState};
///
/// let mut dir = Directory::new();
/// assert!(dir.read(0x10, 0).is_free());      // first reader
/// assert!(dir.read(0x10, 1).is_free());      // second reader, still clean
/// let act = dir.write(0x10, 0);              // writer invalidates reader 1
/// assert_eq!(act.invalidate, vec![1]);
/// assert_eq!(dir.state(0x10), DirState::Modified);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Directory {
    lines: HashMap<u64, Entry>,
    stats: DirStats,
}

impl Directory {
    /// Creates an empty directory.
    #[must_use]
    pub fn new() -> Self {
        Directory::default()
    }

    /// Current state of a line.
    #[must_use]
    pub fn state(&self, line: u64) -> DirState {
        self.lines.get(&line).map_or(DirState::Invalid, |e| e.state)
    }

    /// Current sharer set of a line.
    #[must_use]
    pub fn sharers(&self, line: u64) -> Vec<usize> {
        self.lines
            .get(&line)
            .map_or_else(Vec::new, Entry::sharer_list)
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> DirStats {
        self.stats
    }

    fn check_vcore(vcore: usize) {
        assert!(
            vcore < MAX_VCORES,
            "vcore id {vcore} exceeds directory width"
        );
    }

    /// A VCore's L1 reads `line`.
    ///
    /// # Panics
    ///
    /// Panics if `vcore >= MAX_VCORES`.
    pub fn read(&mut self, line: u64, vcore: usize) -> CoherenceAction {
        Self::check_vcore(vcore);
        self.stats.reads += 1;
        let bit = 1u64 << vcore;
        let e = self.lines.entry(line).or_insert(Entry {
            state: DirState::Invalid,
            sharers: 0,
        });
        match e.state {
            DirState::Invalid => {
                e.state = DirState::Shared;
                e.sharers = bit;
                CoherenceAction::default()
            }
            DirState::Shared => {
                e.sharers |= bit;
                CoherenceAction::default()
            }
            DirState::Modified => {
                if e.sharers == bit {
                    // Reader is the owner: silent hit.
                    return CoherenceAction::default();
                }
                // Owner forwards the dirty line; both become sharers.
                let owner = e.sharer_list()[0];
                e.state = DirState::Shared;
                e.sharers |= bit;
                self.stats.forwards += 1;
                CoherenceAction {
                    invalidate: Vec::new(),
                    fetch_from: Some(owner),
                }
            }
        }
    }

    /// A VCore's L1 writes `line` (needs exclusive ownership).
    ///
    /// # Panics
    ///
    /// Panics if `vcore >= MAX_VCORES`.
    pub fn write(&mut self, line: u64, vcore: usize) -> CoherenceAction {
        Self::check_vcore(vcore);
        self.stats.writes += 1;
        let bit = 1u64 << vcore;
        let e = self.lines.entry(line).or_insert(Entry {
            state: DirState::Invalid,
            sharers: 0,
        });
        let mut action = CoherenceAction::default();
        match e.state {
            DirState::Invalid => {}
            DirState::Shared => {
                action.invalidate = e
                    .sharer_list()
                    .into_iter()
                    .filter(|&s| s != vcore)
                    .collect();
            }
            DirState::Modified => {
                if e.sharers != bit {
                    let owner = e.sharer_list()[0];
                    action.fetch_from = Some(owner);
                    action.invalidate.push(owner);
                    self.stats.forwards += 1;
                }
            }
        }
        self.stats.invalidations += action.invalidate.len() as u64;
        e.state = DirState::Modified;
        e.sharers = bit;
        action
    }

    /// A VCore's L1 evicts its copy of `line` (silent for clean lines;
    /// dirty write-back data goes to the L2, which the caller models).
    ///
    /// # Panics
    ///
    /// Panics if `vcore >= MAX_VCORES`.
    pub fn evict(&mut self, line: u64, vcore: usize) {
        Self::check_vcore(vcore);
        if let Some(e) = self.lines.get_mut(&line) {
            e.sharers &= !(1u64 << vcore);
            if e.sharers == 0 {
                self.lines.remove(&line);
            } else if e.state == DirState::Modified {
                // Owner evicted; remaining state is clean at the L2.
                e.state = DirState::Shared;
            }
        }
    }

    /// Number of lines tracked.
    #[must_use]
    pub fn tracked_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_read_is_free_and_shared() {
        let mut d = Directory::new();
        assert!(d.read(5, 0).is_free());
        assert_eq!(d.state(5), DirState::Shared);
        assert_eq!(d.sharers(5), vec![0]);
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut d = Directory::new();
        d.read(5, 0);
        d.read(5, 1);
        d.read(5, 2);
        let act = d.write(5, 1);
        assert_eq!(act.invalidate, vec![0, 2]);
        assert_eq!(act.fetch_from, None);
        assert_eq!(d.state(5), DirState::Modified);
        assert_eq!(d.sharers(5), vec![1]);
        assert_eq!(d.stats().invalidations, 2);
    }

    #[test]
    fn read_of_modified_forwards_and_downgrades() {
        let mut d = Directory::new();
        d.write(5, 0);
        let act = d.read(5, 1);
        assert_eq!(act.fetch_from, Some(0));
        assert!(act.invalidate.is_empty());
        assert_eq!(d.state(5), DirState::Shared);
        assert_eq!(d.sharers(5), vec![0, 1]);
    }

    #[test]
    fn owner_rereads_silently() {
        let mut d = Directory::new();
        d.write(5, 3);
        assert!(d.read(5, 3).is_free());
        assert_eq!(d.state(5), DirState::Modified);
    }

    #[test]
    fn write_steals_ownership() {
        let mut d = Directory::new();
        d.write(5, 0);
        let act = d.write(5, 1);
        assert_eq!(act.fetch_from, Some(0));
        assert_eq!(act.invalidate, vec![0]);
        assert_eq!(d.sharers(5), vec![1]);
    }

    #[test]
    fn owner_rewrite_is_free() {
        let mut d = Directory::new();
        d.write(5, 0);
        assert!(d.write(5, 0).is_free());
    }

    #[test]
    fn eviction_drops_sharers_and_cleans() {
        let mut d = Directory::new();
        d.read(5, 0);
        d.read(5, 1);
        d.evict(5, 0);
        assert_eq!(d.sharers(5), vec![1]);
        d.evict(5, 1);
        assert_eq!(d.state(5), DirState::Invalid);
        assert_eq!(d.tracked_lines(), 0);

        d.write(6, 2);
        d.evict(6, 2);
        assert_eq!(d.state(6), DirState::Invalid);
    }

    #[test]
    #[should_panic(expected = "exceeds directory width")]
    fn vcore_width_enforced() {
        let mut d = Directory::new();
        let _ = d.read(0, MAX_VCORES);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = Directory::new();
        d.read(1, 0);
        d.write(1, 1);
        d.read(1, 0);
        let s = d.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert!(s.invalidations >= 1);
        assert!(s.forwards >= 1);
    }
}
