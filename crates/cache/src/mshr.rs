//! Miss-status holding registers (non-blocking caches, §3.5).
//!
//! The paper's Slices keep caches non-blocking with a small number of
//! in-flight loads (Table 2: maximum 8 in-flight loads per Slice). An
//! [`MshrFile`] tracks outstanding line fills: a new miss to an
//! already-pending line *merges* (no extra memory request, same completion
//! time); a new miss to a fresh line allocates an entry if one is free,
//! otherwise the pipeline must stall and retry.

/// Outcome of asking the MSHR file to track a miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the fill completes at the given cycle.
    Allocated(u64),
    /// The line was already in flight; the access merges and completes at
    /// the existing fill's cycle.
    Merged(u64),
    /// No entry free: the requester must stall.
    Full,
}

/// A bounded file of outstanding line fills.
///
/// # Example
///
/// ```
/// use sharing_cache::MshrFile;
/// use sharing_cache::mshr::MshrOutcome;
///
/// let mut m = MshrFile::new(2);
/// assert_eq!(m.request(0x10, 100, 150), MshrOutcome::Allocated(150));
/// assert_eq!(m.request(0x10, 110, 170), MshrOutcome::Merged(150));
/// assert_eq!(m.request(0x20, 111, 160), MshrOutcome::Allocated(160));
/// assert_eq!(m.request(0x30, 112, 160), MshrOutcome::Full);
/// m.expire(155);
/// assert_eq!(m.in_flight(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct MshrFile {
    capacity: usize,
    // (line, fill completion cycle); at most `capacity` entries, so the
    // flat vector beats a hash map on every lookup path and never
    // reallocates after the first fill.
    pending: Vec<(u64, u64)>,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        MshrFile {
            capacity,
            pending: Vec::with_capacity(capacity),
        }
    }

    /// Requests tracking of a miss to `line` at cycle `now`, whose fill
    /// would complete at `fill_done`. Expired entries are reclaimed first.
    pub fn request(&mut self, line: u64, now: u64, fill_done: u64) -> MshrOutcome {
        self.expire(now);
        if let Some(&(_, done)) = self.pending.iter().find(|&&(l, _)| l == line) {
            return MshrOutcome::Merged(done);
        }
        if self.pending.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        self.pending.push((line, fill_done));
        MshrOutcome::Allocated(fill_done)
    }

    /// Releases entries whose fills have completed by `now`.
    pub fn expire(&mut self, now: u64) {
        self.pending.retain(|&(_, done)| done > now);
    }

    /// Entries currently in flight (as of the last `expire`/`request`).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Capacity of the file.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The earliest cycle at which any entry frees, if the file is full —
    /// when a requester gets [`MshrOutcome::Full`] it can retry then.
    #[must_use]
    pub fn earliest_free(&self) -> Option<u64> {
        self.pending.iter().map(|&(_, done)| done).min()
    }

    /// Clears all entries (pipeline flush/reconfiguration).
    pub fn clear(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_returns_original_completion() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.request(1, 0, 50), MshrOutcome::Allocated(50));
        // A later miss to the same line merges with the earlier fill even
        // if its own fill would be later.
        assert_eq!(m.request(1, 10, 90), MshrOutcome::Merged(50));
    }

    #[test]
    fn full_file_rejects_new_lines() {
        let mut m = MshrFile::new(1);
        assert_eq!(m.request(1, 0, 50), MshrOutcome::Allocated(50));
        assert_eq!(m.request(2, 1, 60), MshrOutcome::Full);
        assert_eq!(m.earliest_free(), Some(50));
        // Once the fill completes, capacity frees.
        assert_eq!(m.request(2, 50, 99), MshrOutcome::Allocated(99));
    }

    #[test]
    fn expire_is_inclusive_of_done_cycle() {
        let mut m = MshrFile::new(2);
        m.request(1, 0, 10);
        m.expire(9);
        assert_eq!(m.in_flight(), 1);
        m.expire(10);
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn clear_empties() {
        let mut m = MshrFile::new(2);
        m.request(1, 0, 10);
        m.request(2, 0, 10);
        m.clear();
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }
}
