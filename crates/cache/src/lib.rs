//! Cache substrate for the Sharing Architecture.
//!
//! The paper's memory system (§3.5) gives every Slice a private L1 I-cache
//! and L1 D-cache, backed by a configurable L2 built from a *sea of 64 KB
//! cache banks*: any bank on the chip can be assigned to any Virtual Core,
//! addresses are low-order interleaved by cache line across a VCore's banks,
//! and hit latency grows with the bank's network distance from the issuing
//! Slice (Table 3: `distance*2 + 4`). Reconfiguring a VCore's bank set
//! requires flushing dirty bank state to memory (§3.8). Between VCores of a
//! VM, an L2 directory keeps L1s coherent (§3.5).
//!
//! This crate provides those pieces:
//!
//! * [`SetAssocCache`] — LRU set-associative cache core used for both L1s
//!   and L2 banks;
//! * [`L2Array`] — the per-VCore bank set with interleaving and the paper's
//!   distance-based latency model;
//! * [`MshrFile`] — miss-status holding registers for non-blocking caches;
//! * [`directory`] — the MSI directory protocol between VCores.
//!
//! # Example
//!
//! ```
//! use sharing_cache::{CacheGeometry, SetAssocCache};
//!
//! let mut l1 = SetAssocCache::new(CacheGeometry::new(16 << 10, 64, 2)?);
//! let line = 0x4000 >> 6;
//! assert!(!l1.access(line, false).hit); // cold miss
//! assert!(l1.access(line, false).hit);  // now resident
//! # Ok::<(), sharing_cache::GeometryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod directory;
pub mod l2;
pub mod mshr;
pub mod partition;
pub mod set_assoc;

pub use directory::{CoherenceAction, DirState, Directory};
pub use l2::{L2Array, L2LatencyModel, L2Outcome};
pub use mshr::MshrFile;
pub use partition::WayPartitionedCache;
pub use set_assoc::{AccessOutcome, CacheGeometry, CacheStats, GeometryError, SetAssocCache};
