//! Way-partitioned shared last-level cache.
//!
//! The paper's related work (§6) situates the Sharing Architecture against
//! shared-LLC partitioning (Qureshi & Patt's utility-based partitioning,
//! Iyer's QoS policies): "Partitioning a shared LLC potentially mitigates
//! the negative performance effects of co-scheduling. The Sharing
//! Architecture builds upon this work by providing a flexible LLC along
//! with the additive benefits of ALU configuration."
//!
//! [`WayPartitionedCache`] is that baseline, built from scratch: one
//! physical set-associative array whose ways are divided among tenants by
//! quota. Against the Sharing Architecture's *bank*-granular L2
//! ([`crate::L2Array`]) it isolates capacity the same way, but cannot vary
//! total capacity per tenant beyond the fixed array, cannot move capacity
//! without flushing ways, and shares one bank's bandwidth and distance.

use std::fmt;

use crate::set_assoc::CacheStats;

/// Errors configuring a partitioned cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// Quotas sum to more than the physical associativity.
    QuotaExceedsWays {
        /// Requested total ways.
        requested: u32,
        /// Physical ways available.
        available: u32,
    },
    /// Referenced a tenant that was not configured.
    UnknownTenant(usize),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::QuotaExceedsWays {
                requested,
                available,
            } => write!(
                f,
                "quotas need {requested} ways but the array has {available}"
            ),
            PartitionError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
        }
    }
}

impl std::error::Error for PartitionError {}

#[derive(Clone, Copy, Debug)]
struct Entry {
    tenant: usize,
    line: u64,
    dirty: bool,
    /// Higher = more recently used.
    lru: u64,
}

/// A shared set-associative cache whose ways are partitioned by tenant.
///
/// # Example
///
/// ```
/// use sharing_cache::partition::WayPartitionedCache;
///
/// // 8 sets × 8 ways shared by two tenants, 6:2.
/// let mut llc = WayPartitionedCache::new(8, 8, vec![6, 2])?;
/// assert!(!llc.access(0, 42, false));
/// assert!(llc.access(0, 42, false));
/// // Tenants never see each other's lines.
/// assert!(!llc.access(1, 42, false));
/// # Ok::<(), sharing_cache::partition::PartitionError>(())
/// ```
#[derive(Clone, Debug)]
pub struct WayPartitionedCache {
    sets: Vec<Vec<Entry>>,
    ways: u32,
    quotas: Vec<u32>,
    stats: Vec<CacheStats>,
    clock: u64,
}

impl WayPartitionedCache {
    /// Creates a cache of `sets × ways` lines partitioned by `quotas`
    /// (one entry per tenant).
    ///
    /// # Errors
    ///
    /// [`PartitionError::QuotaExceedsWays`] if quotas oversubscribe the
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics if `sets`, `ways`, or `quotas` is empty/zero.
    pub fn new(sets: usize, ways: u32, quotas: Vec<u32>) -> Result<Self, PartitionError> {
        assert!(sets > 0 && ways > 0 && !quotas.is_empty());
        let requested: u32 = quotas.iter().sum();
        if requested > ways {
            return Err(PartitionError::QuotaExceedsWays {
                requested,
                available: ways,
            });
        }
        Ok(WayPartitionedCache {
            sets: vec![Vec::new(); sets],
            ways,
            stats: vec![CacheStats::default(); quotas.len()],
            quotas,
            clock: 0,
        })
    }

    /// Number of tenants.
    #[must_use]
    pub fn tenants(&self) -> usize {
        self.quotas.len()
    }

    /// A tenant's way quota.
    ///
    /// # Errors
    ///
    /// [`PartitionError::UnknownTenant`] for out-of-range tenants.
    pub fn quota(&self, tenant: usize) -> Result<u32, PartitionError> {
        self.quotas
            .get(tenant)
            .copied()
            .ok_or(PartitionError::UnknownTenant(tenant))
    }

    /// Accesses `line` on behalf of `tenant`; returns whether it hit.
    /// Misses allocate within the tenant's quota, evicting the tenant's
    /// own LRU line when full.
    ///
    /// # Panics
    ///
    /// Panics on an unknown tenant (use [`Self::quota`] to validate ids).
    pub fn access(&mut self, tenant: usize, line: u64, write: bool) -> bool {
        assert!(tenant < self.quotas.len(), "unknown tenant {tenant}");
        self.clock += 1;
        let si = (line % self.sets.len() as u64) as usize;
        let clock = self.clock;
        let set = &mut self.sets[si];
        self.stats[tenant].accesses += 1;
        if let Some(e) = set
            .iter_mut()
            .find(|e| e.tenant == tenant && e.line == line)
        {
            e.lru = clock;
            e.dirty |= write;
            self.stats[tenant].hits += 1;
            return true;
        }
        // Miss: count the tenant's occupancy in this set.
        let owned = set.iter().filter(|e| e.tenant == tenant).count() as u32;
        if owned >= self.quotas[tenant] {
            // Evict the tenant's LRU entry.
            let victim = set
                .iter()
                .enumerate()
                .filter(|(_, e)| e.tenant == tenant)
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("occupancy > 0 implies a victim");
            if set[victim].dirty {
                self.stats[tenant].writebacks += 1;
            }
            set.remove(victim);
        }
        set.push(Entry {
            tenant,
            line,
            dirty: write,
            lru: clock,
        });
        false
    }

    /// Repartitions: sets a tenant's quota, flushing its lines from any
    /// set where it now exceeds the new quota. Returns dirty lines written
    /// back.
    ///
    /// # Errors
    ///
    /// [`PartitionError`] if the tenant is unknown or the new quota
    /// oversubscribes the array.
    pub fn set_quota(&mut self, tenant: usize, ways: u32) -> Result<u64, PartitionError> {
        if tenant >= self.quotas.len() {
            return Err(PartitionError::UnknownTenant(tenant));
        }
        let others: u32 = self
            .quotas
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != tenant)
            .map(|(_, &q)| q)
            .sum();
        if others + ways > self.ways {
            return Err(PartitionError::QuotaExceedsWays {
                requested: others + ways,
                available: self.ways,
            });
        }
        self.quotas[tenant] = ways;
        let mut writebacks = 0u64;
        for set in &mut self.sets {
            loop {
                let owned = set.iter().filter(|e| e.tenant == tenant).count() as u32;
                if owned <= ways {
                    break;
                }
                let victim = set
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.tenant == tenant)
                    .min_by_key(|(_, e)| e.lru)
                    .map(|(i, _)| i)
                    .expect("owned > 0");
                if set[victim].dirty {
                    writebacks += 1;
                }
                set.remove(victim);
            }
        }
        self.stats[tenant].writebacks += writebacks;
        Ok(writebacks)
    }

    /// Per-tenant statistics.
    ///
    /// # Errors
    ///
    /// [`PartitionError::UnknownTenant`] for out-of-range tenants.
    pub fn stats(&self, tenant: usize) -> Result<CacheStats, PartitionError> {
        self.stats
            .get(tenant)
            .copied()
            .ok_or(PartitionError::UnknownTenant(tenant))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quotas_are_validated() {
        assert!(WayPartitionedCache::new(4, 8, vec![4, 4]).is_ok());
        assert_eq!(
            WayPartitionedCache::new(4, 8, vec![6, 4]).unwrap_err(),
            PartitionError::QuotaExceedsWays {
                requested: 10,
                available: 8
            }
        );
    }

    #[test]
    fn tenants_are_isolated() {
        let mut c = WayPartitionedCache::new(4, 4, vec![2, 2]).unwrap();
        c.access(0, 100, false);
        assert!(!c.access(1, 100, false), "no cross-tenant hits");
        assert!(c.access(0, 100, false));
        // Tenant 1 thrashing its 2 ways cannot evict tenant 0.
        for line in (0..64u64).map(|x| x * 4) {
            c.access(1, line, false);
        }
        assert!(c.access(0, 100, false), "tenant 0's line survived");
    }

    #[test]
    fn quota_bounds_occupancy_per_set() {
        let mut c = WayPartitionedCache::new(1, 8, vec![2]).unwrap();
        c.access(0, 1, false);
        c.access(0, 2, false);
        c.access(0, 3, false); // evicts LRU (line 1)
        assert!(!c.access(0, 1, false), "line 1 was evicted");
        assert!(c.access(0, 3, false));
    }

    #[test]
    fn repartition_flushes_excess_and_counts_dirty() {
        let mut c = WayPartitionedCache::new(1, 8, vec![4, 0]).unwrap();
        for line in 0..4u64 {
            c.access(0, line, true); // 4 dirty lines
        }
        let wb = c.set_quota(0, 1).unwrap();
        assert_eq!(wb, 3, "three dirty lines flushed");
        // Freed ways can be granted to the other tenant.
        c.set_quota(1, 7).unwrap();
        assert_eq!(c.quota(1).unwrap(), 7);
        // Oversubscription still rejected.
        assert!(c.set_quota(0, 2).is_err());
    }

    #[test]
    fn bigger_quota_means_better_hit_rate() {
        let run = |quota: u32| {
            let mut c = WayPartitionedCache::new(16, 8, vec![quota, 8 - quota]).unwrap();
            // Tenant 0 cycles a working set of 64 lines.
            for pass in 0..4 {
                for line in 0..64u64 {
                    let _ = c.access(0, line, false);
                }
                let _ = pass;
            }
            c.stats(0).unwrap().miss_rate()
        };
        assert!(run(8) < run(2), "8 ways {} vs 2 ways {}", run(8), run(2));
    }

    #[test]
    fn unknown_tenant_errors() {
        let c = WayPartitionedCache::new(2, 2, vec![1]).unwrap();
        assert_eq!(c.quota(3).unwrap_err(), PartitionError::UnknownTenant(3));
        assert!(c.stats(9).is_err());
    }
}
