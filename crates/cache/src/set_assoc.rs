//! LRU set-associative cache core.

use std::fmt;

/// Invalid cache geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GeometryError {
    /// A size/way/line parameter was zero.
    Zero,
    /// Size, line size, or the derived set count is not a power of two.
    NotPowerOfTwo,
    /// The capacity is smaller than `ways * line` (fewer than one set).
    TooSmall,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::Zero => write!(f, "geometry parameter was zero"),
            GeometryError::NotPowerOfTwo => write!(f, "sizes must be powers of two"),
            GeometryError::TooSmall => write!(f, "capacity smaller than one set"),
        }
    }
}

impl std::error::Error for GeometryError {}

/// Shape of a cache: capacity, line size, associativity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u64,
    line_bytes: u64,
    ways: u32,
}

impl CacheGeometry {
    /// Creates and validates a geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] if any parameter is zero, sizes are not
    /// powers of two, or fewer than one set results.
    pub fn new(size_bytes: u64, line_bytes: u64, ways: u32) -> Result<Self, GeometryError> {
        if size_bytes == 0 || line_bytes == 0 || ways == 0 {
            return Err(GeometryError::Zero);
        }
        if !size_bytes.is_power_of_two() || !line_bytes.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo);
        }
        if size_bytes < line_bytes * u64::from(ways) {
            return Err(GeometryError::TooSmall);
        }
        if !size_bytes.is_multiple_of(line_bytes * u64::from(ways)) {
            return Err(GeometryError::NotPowerOfTwo);
        }
        let sets = size_bytes / (line_bytes * u64::from(ways));
        if !sets.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo);
        }
        Ok(CacheGeometry {
            size_bytes,
            line_bytes,
            ways,
        })
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn size_bytes(self) -> u64 {
        self.size_bytes
    }

    /// Line size in bytes.
    #[must_use]
    pub fn line_bytes(self) -> u64 {
        self.line_bytes
    }

    /// Associativity.
    #[must_use]
    pub fn ways(self) -> u32 {
        self.ways
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(self) -> u64 {
        self.size_bytes / (self.line_bytes * u64::from(self.ways))
    }
}

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Lines invalidated externally (coherence).
    pub invalidations: u64,
}

sharing_json::json_struct!(CacheStats {
    accesses,
    hits,
    writebacks,
    invalidations
});

impl CacheStats {
    /// Miss count.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss rate in `[0, 1]`; zero for an untouched cache.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

/// Result of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was resident.
    pub hit: bool,
    /// Line number of a dirty victim that must be written back, if any.
    pub writeback: Option<u64>,
}

#[derive(Clone, Copy, Debug)]
struct LineEntry {
    line: u64,
    dirty: bool,
}

/// An LRU set-associative, write-back, write-allocate cache over *line
/// numbers* (byte address >> line bits). Data values are not stored — the
/// simulator tracks values architecturally — only presence and dirtiness.
///
/// # Example
///
/// ```
/// use sharing_cache::{CacheGeometry, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheGeometry::new(1024, 64, 2)?);
/// c.access(1, true);          // miss, allocate dirty
/// assert!(c.access(1, false).hit);
/// assert_eq!(c.stats().misses(), 1);
/// # Ok::<(), sharing_cache::GeometryError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    geom: CacheGeometry,
    /// Per set, most-recently-used first.
    sets: Vec<Vec<LineEntry>>,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new(geom: CacheGeometry) -> Self {
        SetAssocCache {
            geom,
            sets: vec![Vec::with_capacity(geom.ways() as usize); geom.sets() as usize],
            stats: CacheStats::default(),
        }
    }

    /// The geometry.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_index(&self, line: u64) -> usize {
        (line % self.geom.sets()) as usize
    }

    /// Accesses `line`; allocates on miss, possibly evicting the LRU way.
    /// `is_write` marks the line dirty.
    pub fn access(&mut self, line: u64, is_write: bool) -> AccessOutcome {
        self.stats.accesses += 1;
        let si = self.set_index(line);
        let set = &mut self.sets[si];
        if let Some(pos) = set.iter().position(|e| e.line == line) {
            self.stats.hits += 1;
            let mut e = set.remove(pos);
            e.dirty |= is_write;
            set.insert(0, e);
            return AccessOutcome {
                hit: true,
                writeback: None,
            };
        }
        // Miss: allocate, evicting LRU if the set is full.
        let mut writeback = None;
        if set.len() == self.geom.ways() as usize {
            let victim = set.pop().expect("full set has a victim");
            if victim.dirty {
                self.stats.writebacks += 1;
                writeback = Some(victim.line);
            }
        }
        set.insert(
            0,
            LineEntry {
                line,
                dirty: is_write,
            },
        );
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Checks residency without updating LRU state or statistics.
    #[must_use]
    pub fn probe(&self, line: u64) -> bool {
        let si = self.set_index(line);
        self.sets[si].iter().any(|e| e.line == line)
    }

    /// Invalidates a line (coherence); returns whether it was dirty.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let si = self.set_index(line);
        let set = &mut self.sets[si];
        if let Some(pos) = set.iter().position(|e| e.line == line) {
            let e = set.remove(pos);
            self.stats.invalidations += 1;
            e.dirty
        } else {
            false
        }
    }

    /// Flushes the whole cache (reconfiguration, §3.8); returns the number
    /// of dirty lines written back.
    pub fn flush_all(&mut self) -> u64 {
        let mut dirty = 0;
        for set in &mut self.sets {
            dirty += set.iter().filter(|e| e.dirty).count() as u64;
            set.clear();
        }
        self.stats.writebacks += dirty;
        dirty
    }

    /// Number of resident lines.
    #[must_use]
    pub fn resident_lines(&self) -> u64 {
        self.sets.iter().map(|s| s.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways, 64B lines.
        SetAssocCache::new(CacheGeometry::new(512, 64, 2).unwrap())
    }

    #[test]
    fn geometry_validation() {
        assert!(CacheGeometry::new(16 << 10, 64, 2).is_ok());
        assert_eq!(CacheGeometry::new(0, 64, 2), Err(GeometryError::Zero));
        assert_eq!(
            CacheGeometry::new(1000, 64, 2),
            Err(GeometryError::NotPowerOfTwo)
        );
        assert_eq!(CacheGeometry::new(64, 64, 2), Err(GeometryError::TooSmall));
        // 3-way over power-of-two capacity gives non-power-of-two sets.
        assert_eq!(
            CacheGeometry::new(512, 64, 3),
            Err(GeometryError::NotPowerOfTwo)
        );
        let g = CacheGeometry::new(512, 64, 2).unwrap();
        assert_eq!(g.sets(), 4);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Lines 0, 4, 8 all map to set 0 (line % 4 == 0).
        c.access(0, false);
        c.access(4, false);
        c.access(0, false); // 0 is now MRU
        let out = c.access(8, false); // evicts 4
        assert!(!out.hit);
        assert!(c.probe(0));
        assert!(!c.probe(4));
        assert!(c.probe(8));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0, true);
        c.access(4, false);
        let out = c.access(8, false); // evicts dirty 0? No: LRU is 0 after 4 accessed
                                      // Access order: 0 (dirty), 4 → LRU = 0.
        assert_eq!(out.writeback, Some(0));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        c.access(0, false);
        c.access(4, false);
        let out = c.access(8, false);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(0, false);
        c.access(0, true); // hit, becomes dirty
        c.access(4, false);
        let out = c.access(8, false); // evicts 4? LRU after (0,0,4) = 0? order: 0 MRU→ 4, LRU=0
                                      // After accesses [0,0w,4]: MRU=4, LRU=0(dirty).
        assert_eq!(out.writeback, Some(0));
    }

    #[test]
    fn invalidate_returns_dirtiness() {
        let mut c = small();
        c.access(0, true);
        c.access(1, false);
        assert!(c.invalidate(0));
        assert!(!c.invalidate(1));
        assert!(!c.invalidate(99), "absent line invalidation is a no-op");
        assert_eq!(c.stats().invalidations, 2);
        assert!(!c.probe(0));
    }

    #[test]
    fn flush_counts_dirty_lines_and_empties() {
        let mut c = small();
        c.access(0, true);
        c.access(1, true);
        c.access(2, false);
        assert_eq!(c.flush_all(), 2);
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn probe_does_not_perturb() {
        let mut c = small();
        c.access(0, false);
        c.access(4, false);
        let _ = c.probe(0); // must NOT refresh LRU
        let _ = c.access(8, false); // evicts true LRU = 0
        assert!(!c.probe(0));
        assert!(c.probe(4));
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c = small();
        c.access(0, false);
        c.access(0, false);
        c.access(1, false);
        let s = c.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses(), 2);
        assert!((s.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn miss_rate_of_empty_cache_is_zero() {
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }
}
