//! The configurable, banked L2: a VCore's slice of the sea of cache banks.

use crate::set_assoc::{CacheGeometry, CacheStats, SetAssocCache};

/// Nominal size of one L2 cache bank (the paper assumes 64 KB banks, §3.5).
pub const BANK_BYTES: u64 = 64 << 10;
/// Modeled (scaled) bank capacity; see [`sharing_isa::CAPACITY_SCALE`].
pub const BANK_EFFECTIVE_BYTES: u64 = BANK_BYTES / sharing_isa::CAPACITY_SCALE;
/// Associativity of an L2 bank (Table 3).
pub const BANK_WAYS: u32 = 4;
/// Line size (Table 3).
pub const LINE_BYTES: u64 = 64;

/// The paper's L2 hit-latency model.
///
/// Table 3 gives an L2 hit delay of `distance*2 + 4`; §5.4 models "an
/// additional 2-cycles of communication delay for each additional 256 KB of
/// cache", which is the same statement under the default placement where
/// each additional 256 KB (four banks) sits one mesh hop further out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L2LatencyModel {
    /// Fixed lookup cost.
    pub base: u32,
    /// Cycles per unit of network distance to the bank.
    pub per_distance: u32,
    /// How many banks fit per unit of distance under the default compact
    /// placement (4 banks = 256 KB per hop ring).
    pub banks_per_hop: u32,
}

impl L2LatencyModel {
    /// The paper's model.
    #[must_use]
    pub fn paper() -> Self {
        L2LatencyModel {
            base: 4,
            per_distance: 2,
            banks_per_hop: 4,
        }
    }

    /// Distance of bank `idx` from the VCore under the default compact
    /// placement: banks 0..4 at distance 1, the next four at distance 2, …
    #[must_use]
    pub fn default_distance(self, idx: usize) -> u32 {
        1 + idx as u32 / self.banks_per_hop
    }

    /// Hit latency to a bank at the given distance.
    #[must_use]
    pub fn hit_latency(self, distance: u32) -> u32 {
        self.base + self.per_distance * distance
    }
}

impl Default for L2LatencyModel {
    fn default() -> Self {
        L2LatencyModel::paper()
    }
}

sharing_json::json_struct!(L2LatencyModel {
    base,
    per_distance,
    banks_per_hop
});

/// Outcome of an L2 access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L2Outcome {
    /// Whether the line was resident in its bank.
    pub hit: bool,
    /// Which bank served the access.
    pub bank: usize,
    /// Round-trip-relevant hit latency contribution of the bank (lookup +
    /// distance), regardless of hit/miss — a miss still pays the trip to
    /// the bank before going to memory.
    pub latency: u32,
    /// Dirty victim line written back to memory, if any.
    pub writeback: Option<u64>,
}

/// A VCore's assigned set of L2 banks with low-order line interleaving.
///
/// A VCore may have **zero** banks (the paper's 0 KB configurations), in
/// which case every access misses straight to memory.
///
/// # Example
///
/// ```
/// use sharing_cache::L2Array;
///
/// let mut l2 = L2Array::new(2); // 128 KB
/// assert_eq!(l2.total_bytes(), 128 << 10);
/// let out = l2.access(0x40 >> 6, false);
/// assert!(!out.hit);
/// assert!(l2.access(0x40 >> 6, false).hit);
/// ```
#[derive(Clone, Debug)]
pub struct L2Array {
    banks: Vec<SetAssocCache>,
    distances: Vec<u32>,
    latency: L2LatencyModel,
}

impl L2Array {
    /// Creates an L2 with `n_banks` 64 KB banks at default distances.
    #[must_use]
    pub fn new(n_banks: usize) -> Self {
        Self::with_latency(n_banks, L2LatencyModel::paper())
    }

    /// Creates an L2 with a custom latency model.
    #[must_use]
    pub fn with_latency(n_banks: usize, latency: L2LatencyModel) -> Self {
        let geom = CacheGeometry::new(BANK_EFFECTIVE_BYTES, LINE_BYTES, BANK_WAYS)
            .expect("bank geometry is statically valid");
        L2Array {
            banks: (0..n_banks).map(|_| SetAssocCache::new(geom)).collect(),
            distances: (0..n_banks).map(|i| latency.default_distance(i)).collect(),
            latency,
        }
    }

    /// Overrides bank distances with a real placement (from the
    /// hypervisor's chip map).
    ///
    /// # Panics
    ///
    /// Panics if `distances.len()` differs from the bank count.
    pub fn set_distances(&mut self, distances: Vec<u32>) {
        assert_eq!(
            distances.len(),
            self.banks.len(),
            "one distance per bank required"
        );
        self.distances = distances;
    }

    /// Number of banks.
    #[must_use]
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Total *nominal* capacity in bytes (what experiment reports print).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.banks.len() as u64 * BANK_BYTES
    }

    /// Total modeled capacity in bytes (nominal divided by the simulation's
    /// [`sharing_isa::CAPACITY_SCALE`]).
    #[must_use]
    pub fn effective_bytes(&self) -> u64 {
        self.banks.len() as u64 * BANK_EFFECTIVE_BYTES
    }

    /// The bank serving a given line (low-order interleave).
    ///
    /// # Panics
    ///
    /// Panics if the array has no banks.
    #[must_use]
    pub fn bank_of(&self, line: u64) -> usize {
        assert!(!self.banks.is_empty(), "no banks configured");
        (line % self.banks.len() as u64) as usize
    }

    /// Hit latency to the bank that would serve `line` (also paid by
    /// misses on their way to memory). Zero-bank arrays return 0: the
    /// request goes straight to the memory controller.
    #[must_use]
    pub fn access_latency(&self, line: u64) -> u32 {
        if self.banks.is_empty() {
            return 0;
        }
        let b = self.bank_of(line);
        self.latency.hit_latency(self.distances[b])
    }

    /// Accesses a line. With zero banks this is an unconditional miss with
    /// zero L2 latency.
    pub fn access(&mut self, line: u64, is_write: bool) -> L2Outcome {
        if self.banks.is_empty() {
            return L2Outcome {
                hit: false,
                bank: 0,
                latency: 0,
                writeback: None,
            };
        }
        let b = self.bank_of(line);
        let latency = self.latency.hit_latency(self.distances[b]);
        // Strip the interleave bits so the bank's sets are fully used.
        let local = line / self.banks.len() as u64;
        let out = self.banks[b].access(local, is_write);
        L2Outcome {
            hit: out.hit,
            bank: b,
            latency,
            writeback: out.writeback,
        }
    }

    /// Invalidates a line wherever it lives; returns whether it was dirty.
    pub fn invalidate(&mut self, line: u64) -> bool {
        if self.banks.is_empty() {
            return false;
        }
        let b = self.bank_of(line);
        let local = line / self.banks.len() as u64;
        self.banks[b].invalidate(local)
    }

    /// Flushes every bank (required before reassigning banks to another
    /// VCore, §3.8); returns total dirty lines written back.
    pub fn flush_all(&mut self) -> u64 {
        self.banks.iter_mut().map(SetAssocCache::flush_all).sum()
    }

    /// Aggregated statistics over all banks.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for b in &self.banks {
            let s = b.stats();
            total.accesses += s.accesses;
            total.hits += s.hits;
            total.writebacks += s.writebacks;
            total.invalidations += s.invalidations;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_model_matches_table3() {
        let m = L2LatencyModel::paper();
        assert_eq!(m.hit_latency(1), 6);
        assert_eq!(m.hit_latency(2), 8);
        assert_eq!(m.hit_latency(5), 14);
    }

    #[test]
    fn default_distance_adds_a_hop_per_256kb() {
        let m = L2LatencyModel::paper();
        assert_eq!(m.default_distance(0), 1);
        assert_eq!(m.default_distance(3), 1); // 256 KB all at distance 1
        assert_eq!(m.default_distance(4), 2); // next 256 KB one hop out
        assert_eq!(m.default_distance(15), 4);
    }

    #[test]
    fn interleaving_spreads_lines_round_robin() {
        let l2 = L2Array::new(4);
        for line in 0..16u64 {
            assert_eq!(l2.bank_of(line), (line % 4) as usize);
        }
    }

    #[test]
    fn far_banks_cost_more() {
        let l2 = L2Array::new(8);
        // line 0 → bank 0 (distance 1); line 4 → bank 4 (distance 2).
        assert_eq!(l2.access_latency(0), 6);
        assert_eq!(l2.access_latency(4), 8);
    }

    #[test]
    fn zero_bank_l2_always_misses() {
        let mut l2 = L2Array::new(0);
        let out = l2.access(7, true);
        assert!(!out.hit);
        assert_eq!(out.latency, 0);
        assert_eq!(l2.total_bytes(), 0);
        assert!(!l2.invalidate(7));
        assert_eq!(l2.flush_all(), 0);
    }

    #[test]
    fn hits_after_allocation() {
        let mut l2 = L2Array::new(2);
        assert!(!l2.access(10, false).hit);
        assert!(l2.access(10, false).hit);
        assert_eq!(l2.stats().accesses, 2);
        assert_eq!(l2.stats().hits, 1);
    }

    #[test]
    fn flush_reports_dirty_lines() {
        let mut l2 = L2Array::new(2);
        l2.access(0, true);
        l2.access(1, true);
        l2.access(2, false);
        assert_eq!(l2.flush_all(), 2);
        assert!(!l2.access(0, false).hit, "flush empties the banks");
    }

    #[test]
    fn set_distances_overrides_latency() {
        let mut l2 = L2Array::new(2);
        l2.set_distances(vec![3, 7]);
        assert_eq!(l2.access_latency(0), 4 + 2 * 3);
        assert_eq!(l2.access_latency(1), 4 + 2 * 7);
    }

    #[test]
    #[should_panic(expected = "one distance per bank")]
    fn set_distances_length_checked() {
        let mut l2 = L2Array::new(2);
        l2.set_distances(vec![1]);
    }
}
