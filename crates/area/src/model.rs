//! The Figure 10/11 component model.

use std::fmt;

/// A component of a Slice's area (Figure 10's slices of the pie).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SliceComponent {
    L1ICache,
    L1DCache,
    InstructionBuffer,
    Lsq,
    RegisterFile,
    Rob,
    BtbAndPredictor,
    IssueWindow,
    Multiplier,
    Alus,
    // The sharing overhead (8 % of a Slice, Figure 10): the structures a
    // conventional superscalar would not need.
    GlobalRename,
    LocalRename,
    Routers,
    Waitlist,
    Scoreboard,
    AddedPipeline,
}

impl SliceComponent {
    /// Every component, Figure 10 order.
    pub const ALL: [SliceComponent; 16] = [
        SliceComponent::L1ICache,
        SliceComponent::L1DCache,
        SliceComponent::InstructionBuffer,
        SliceComponent::Lsq,
        SliceComponent::RegisterFile,
        SliceComponent::Rob,
        SliceComponent::BtbAndPredictor,
        SliceComponent::IssueWindow,
        SliceComponent::Multiplier,
        SliceComponent::Alus,
        SliceComponent::GlobalRename,
        SliceComponent::LocalRename,
        SliceComponent::Routers,
        SliceComponent::Waitlist,
        SliceComponent::Scoreboard,
        SliceComponent::AddedPipeline,
    ];

    /// The component's share of total Slice area (Figure 10). Shares sum to
    /// 1.0 (the paper's rounded percentages sum to 98 %; the residual is
    /// folded into the instruction buffer, the largest logic block).
    #[must_use]
    pub fn fraction(self) -> f64 {
        match self {
            SliceComponent::L1ICache => 0.24,
            SliceComponent::L1DCache => 0.24,
            SliceComponent::InstructionBuffer => 0.13,
            SliceComponent::Lsq => 0.08,
            SliceComponent::RegisterFile => 0.06,
            SliceComponent::Rob => 0.06,
            SliceComponent::BtbAndPredictor => 0.04,
            SliceComponent::IssueWindow => 0.04,
            SliceComponent::Multiplier => 0.02,
            SliceComponent::Alus => 0.01,
            SliceComponent::GlobalRename => 0.01,
            SliceComponent::LocalRename => 0.02,
            SliceComponent::Routers => 0.02,
            SliceComponent::Waitlist => 0.01,
            SliceComponent::Scoreboard => 0.02,
            SliceComponent::AddedPipeline => 0.00,
        }
    }

    /// Whether this component exists only because of the Sharing
    /// Architecture (the "Sharing Overhead" group of Figure 10 — the extra
    /// logic over a conventional out-of-order superscalar).
    #[must_use]
    pub fn is_sharing_overhead(self) -> bool {
        matches!(
            self,
            SliceComponent::GlobalRename
                | SliceComponent::LocalRename
                | SliceComponent::Routers
                | SliceComponent::Waitlist
                | SliceComponent::Scoreboard
                | SliceComponent::AddedPipeline
        )
    }

    /// Printable name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SliceComponent::L1ICache => "16 KB 2-way L1 Icache",
            SliceComponent::L1DCache => "16 KB 2-way L1 Dcache",
            SliceComponent::InstructionBuffer => "Instruction Buffer",
            SliceComponent::Lsq => "LSQ",
            SliceComponent::RegisterFile => "Register File",
            SliceComponent::Rob => "ROB",
            SliceComponent::BtbAndPredictor => "BTB&Predictor",
            SliceComponent::IssueWindow => "Issue Window",
            SliceComponent::Multiplier => "Multiplier",
            SliceComponent::Alus => "ALUs",
            SliceComponent::GlobalRename => "Global Rename",
            SliceComponent::LocalRename => "Local Rename",
            SliceComponent::Routers => "Routers",
            SliceComponent::Waitlist => "Waitlist",
            SliceComponent::Scoreboard => "Scoreboard",
            SliceComponent::AddedPipeline => "Added Pipeline",
        }
    }
}

impl fmt::Display for SliceComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Absolute-area model for Slices and cache banks.
///
/// Everything downstream (the market's resource prices, performance-per-
/// area metrics, datacenter area budgets) consumes only ratios of these
/// numbers, which are pinned by the paper's figures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaModel {
    slice_mm2: f64,
    bank_mm2: f64,
}

impl AreaModel {
    /// The paper-calibrated model: Figure 11 puts one 64 KB bank at 35 % of
    /// (Slice + bank), i.e. a Slice is worth ≈ two banks — the equal-area
    /// point the paper's Market 2 uses ("1 Slice costs the same as 128 KB
    /// Cache"). Absolute values are anchored to a CACTI-like 45 nm estimate
    /// of a 64 KB array.
    #[must_use]
    pub fn paper() -> Self {
        let bank = crate::cacti::sram_area_mm2(64 << 10);
        AreaModel {
            slice_mm2: 2.0 * bank,
            bank_mm2: bank,
        }
    }

    /// A custom model (e.g. for a different technology node).
    ///
    /// # Panics
    ///
    /// Panics unless both areas are positive and finite.
    #[must_use]
    pub fn new(slice_mm2: f64, bank_mm2: f64) -> Self {
        assert!(
            slice_mm2 > 0.0 && bank_mm2 > 0.0 && slice_mm2.is_finite() && bank_mm2.is_finite(),
            "areas must be positive and finite"
        );
        AreaModel {
            slice_mm2,
            bank_mm2,
        }
    }

    /// Area of one Slice in mm².
    #[must_use]
    pub fn slice_mm2(&self) -> f64 {
        self.slice_mm2
    }

    /// Area of one 64 KB L2 bank in mm².
    #[must_use]
    pub fn bank_mm2(&self) -> f64 {
        self.bank_mm2
    }

    /// Area of one Slice component in mm².
    #[must_use]
    pub fn component_mm2(&self, c: SliceComponent) -> f64 {
        self.slice_mm2 * c.fraction()
    }

    /// Total area of the sharing-specific structures in one Slice.
    #[must_use]
    pub fn sharing_overhead_mm2(&self) -> f64 {
        SliceComponent::ALL
            .iter()
            .filter(|c| c.is_sharing_overhead())
            .map(|&c| self.component_mm2(c))
            .sum()
    }

    /// Area of a VCore configuration: `slices` Slices plus `banks` 64 KB
    /// banks.
    #[must_use]
    pub fn vcore_mm2(&self, slices: usize, banks: usize) -> f64 {
        slices as f64 * self.slice_mm2 + banks as f64 * self.bank_mm2
    }

    /// Cost of a VCore in *area units*, where one unit is one 64 KB bank
    /// (the market model's natural currency: a Slice costs two units).
    #[must_use]
    pub fn vcore_units(&self, slices: usize, banks: usize) -> f64 {
        self.vcore_mm2(slices, banks) / self.bank_mm2
    }

    /// Figure 11's view: component shares when one 64 KB L2 bank is
    /// included with the Slice. Returns `(component, fraction)` pairs plus
    /// the bank's own share.
    #[must_use]
    pub fn with_bank_fractions(&self) -> (Vec<(SliceComponent, f64)>, f64) {
        let total = self.slice_mm2 + self.bank_mm2;
        let comps = SliceComponent::ALL
            .iter()
            .map(|&c| (c, self.component_mm2(c) / total))
            .collect();
        (comps, self.bank_mm2 / total)
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let sum: f64 = SliceComponent::ALL.iter().map(|c| c.fraction()).sum();
        assert!((sum - 1.0).abs() < 1e-12, "sum = {sum}");
    }

    #[test]
    fn sharing_overhead_is_eight_percent() {
        let overhead: f64 = SliceComponent::ALL
            .iter()
            .filter(|c| c.is_sharing_overhead())
            .map(|c| c.fraction())
            .sum();
        assert!((overhead - 0.08).abs() < 1e-12);
    }

    #[test]
    fn caches_dominate_the_slice() {
        // Figure 10: the two L1s are 48 % of the Slice.
        let l1 = SliceComponent::L1ICache.fraction() + SliceComponent::L1DCache.fraction();
        assert!((l1 - 0.48).abs() < 1e-12);
    }

    #[test]
    fn paper_model_matches_figure_11() {
        let m = AreaModel::paper();
        let (_, bank_share) = m.with_bank_fractions();
        // Figure 11: the 64 KB bank is ≈35 % of Slice+bank (1/3 exactly in
        // our 2:1 calibration; the paper's 35 % includes rounding).
        assert!(
            (bank_share - 1.0 / 3.0).abs() < 0.02,
            "bank share {bank_share}"
        );
    }

    #[test]
    fn vcore_area_is_linear() {
        let m = AreaModel::paper();
        let a = m.vcore_mm2(2, 4);
        assert!((a - (2.0 * m.slice_mm2() + 4.0 * m.bank_mm2())).abs() < 1e-12);
        // In bank units: 2 Slices = 4 units, plus 4 banks.
        assert!((m.vcore_units(2, 4) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn component_names_unique_and_nonempty() {
        let mut names: Vec<_> = SliceComponent::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        assert!(names.iter().all(|n| !n.is_empty()));
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn new_rejects_nonpositive() {
        let _ = AreaModel::new(0.0, 1.0);
    }
}
