//! CACTI-like SRAM area scaling at 45 nm.
//!
//! The paper sizes its caches with CACTI 6.0 at the 45 nm node. For the
//! reproduction we only need a plausible scaling law: SRAM area is roughly
//! linear in capacity with a per-array fixed overhead (decoders, sense
//! amps, control). The constants below give a 64 KB array ≈ 0.45 mm²,
//! in the right range for 45 nm CACTI output, and — more importantly —
//! every downstream experiment uses only area *ratios*.

/// Area in mm² of an SRAM array of the given capacity at 45 nm.
///
/// Linear-in-bits with a fixed per-array overhead. Zero bytes cost zero
/// (no array at all).
///
/// # Example
///
/// ```
/// use sharing_area::sram_area_mm2;
/// let one = sram_area_mm2(64 << 10);
/// let two = sram_area_mm2(128 << 10);
/// // Bigger arrays amortize the fixed overhead.
/// assert!(two < 2.0 * one);
/// assert!(two > 1.5 * one);
/// ```
#[must_use]
pub fn sram_area_mm2(bytes: u64) -> f64 {
    if bytes == 0 {
        return 0.0;
    }
    const MM2_PER_KB: f64 = 0.006_25; // 0.40 mm² per 64 KB of cells
    const FIXED_MM2: f64 = 0.05; // decoders, sense amplifiers, control
    (bytes as f64 / 1024.0) * MM2_PER_KB + FIXED_MM2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_free() {
        assert_eq!(sram_area_mm2(0), 0.0);
    }

    #[test]
    fn calibration_point() {
        let bank = sram_area_mm2(64 << 10);
        assert!((bank - 0.45).abs() < 1e-9, "64 KB bank = {bank} mm²");
    }

    #[test]
    fn monotone_in_capacity() {
        let mut last = 0.0;
        for kb in [1u64, 4, 16, 64, 256, 1024] {
            let a = sram_area_mm2(kb << 10);
            assert!(a > last);
            last = a;
        }
    }
}
