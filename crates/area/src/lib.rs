//! Area model of the Sharing Architecture, calibrated to the paper's
//! synthesis results (§5.1, Figures 10 and 11).
//!
//! The paper implemented a Slice in synthesizable Verilog, took it through
//! Synopsys Design Compiler / IC Compiler on TSMC 45 nm, and sized SRAMs
//! with CACTI. We cannot ship that flow, so this crate substitutes an
//! analytic model **fitted to the published breakdown**: each Slice
//! component's share of area matches Figure 10, a 64 KB L2 bank matches
//! Figure 11's 35 % share (i.e. one Slice ≈ two banks ≈ 128 KB of cache —
//! exactly the equal-area pricing the paper's Market 2 uses), and a
//! CACTI-like scaling law covers non-default SRAM sizes.
//!
//! # Example
//!
//! ```
//! use sharing_area::{AreaModel, SliceComponent};
//!
//! let model = AreaModel::paper();
//! // One Slice has the same area as two 64 KB banks (Market2's 1:128KB).
//! assert!((model.slice_mm2() - 2.0 * model.bank_mm2()).abs() < 1e-9);
//! // The sharing overhead is ≈8 % of a Slice (Figure 10).
//! let overhead = model.sharing_overhead_mm2();
//! assert!((overhead / model.slice_mm2() - 0.08).abs() < 0.005);
//! # let _ = SliceComponent::ALL;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cacti;
pub mod energy;
pub mod model;

pub use cacti::sram_area_mm2;
pub use energy::{EnergyModel, EnergyReport};
pub use model::{AreaModel, SliceComponent};
