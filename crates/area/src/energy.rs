//! Energy estimation for simulated runs.
//!
//! The paper evaluates area, not power, but leans on the energy literature
//! twice: Slices make applications "more area efficient, energy efficient"
//! (§1), and its `performance²`/`performance³` utility metrics are chosen
//! for their kinship with `Energy·Delay²`/`Energy·Delay³` (§2.2). This
//! module closes that loop: per-event dynamic energies (45 nm-plausible
//! CACTI-class constants) applied to the simulator's activity counters,
//! plus area-proportional leakage, yielding energy, EDP and ED²P for any
//! run — so the energy side of a VCore sizing decision can be quantified,
//! not just asserted.

use crate::model::AreaModel;
use sharing_core::{SimResult, VCoreShape};

/// Per-event dynamic energies in picojoules, and leakage density.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// One instruction's worth of pipeline overhead (fetch, decode,
    /// rename, commit).
    pub pipeline_pj: f64,
    /// One ALU operation.
    pub alu_pj: f64,
    /// One L1 access (I or D).
    pub l1_pj: f64,
    /// One L2 bank access.
    pub l2_pj: f64,
    /// One DRAM line fill.
    pub dram_pj: f64,
    /// One network message per hop (operand / LS-sort / rename).
    pub hop_pj: f64,
    /// One LSQ bank search (store commit, §3.6).
    pub lsq_search_pj: f64,
    /// Leakage per mm² per cycle (30 mW/mm² at 1 GHz → 30 pJ/mm²/cycle).
    pub leakage_pj_per_mm2_cycle: f64,
}

impl EnergyModel {
    /// 45 nm-plausible constants.
    #[must_use]
    pub fn node_45nm() -> Self {
        EnergyModel {
            pipeline_pj: 8.0,
            alu_pj: 5.0,
            l1_pj: 12.0,
            l2_pj: 28.0,
            dram_pj: 6_000.0,
            hop_pj: 3.0,
            lsq_search_pj: 6.0,
            leakage_pj_per_mm2_cycle: 30.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::node_45nm()
    }
}

/// Energy accounting for one simulated run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyReport {
    /// Dynamic energy in nanojoules.
    pub dynamic_nj: f64,
    /// Leakage energy in nanojoules.
    pub leakage_nj: f64,
    /// Cycles the run took.
    pub cycles: u64,
}

impl EnergyReport {
    /// Total energy in nanojoules.
    #[must_use]
    pub fn total_nj(&self) -> f64 {
        self.dynamic_nj + self.leakage_nj
    }

    /// Energy–delay product (nJ · cycles).
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.total_nj() * self.cycles as f64
    }

    /// Energy–delay² product (nJ · cycles²) — the metric whose shape the
    /// paper's Utility2 mirrors.
    #[must_use]
    pub fn ed2p(&self) -> f64 {
        self.edp() * self.cycles as f64
    }

    /// Average power in watts, assuming the given clock frequency in GHz
    /// (energy in nJ divided by time in ns).
    #[must_use]
    pub fn avg_power_w(&self, ghz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.total_nj() / (self.cycles as f64 / ghz)
    }
}

/// Estimates the energy of a simulated run from its activity counters.
///
/// # Example
///
/// ```
/// use sharing_area::{energy::{estimate, EnergyModel}, AreaModel};
/// use sharing_core::{RunOptions, SimConfig, Simulator};
/// use sharing_trace::{Benchmark, TraceSpec};
///
/// let cfg = SimConfig::with_shape(2, 2)?;
/// let result = Simulator::new(cfg)?
///     .run_with(&Benchmark::Gcc.generate(&TraceSpec::new(3_000, 1)), RunOptions::new())
///     .result;
/// let report = estimate(&result, &EnergyModel::node_45nm(), &AreaModel::paper());
/// assert!(report.total_nj() > 0.0);
/// assert!(report.edp() > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn estimate(result: &SimResult, model: &EnergyModel, area: &AreaModel) -> EnergyReport {
    let m = &result.mem;
    let dynamic_pj = result.instructions as f64 * (model.pipeline_pj + model.alu_pj)
        + (m.l1d.accesses + m.l1i.accesses) as f64 * model.l1_pj
        + m.l2.accesses as f64 * model.l2_pj
        + m.memory_accesses as f64 * model.dram_pj
        + result.operand_net.hops as f64 * model.hop_pj
        // LS-sort and rename traffic: charged at one hop-equivalent per
        // message (their exact hop counts are folded into the latency
        // model, not counted separately).
        + (result.ls_sort_messages + result.rename_broadcasts) as f64 * model.hop_pj
        + m.l1d.writebacks as f64 * model.l2_pj
        + (m.store_forwards + m.lsq_violations) as f64 * model.lsq_search_pj;
    let shape = result
        .shape
        .unwrap_or(VCoreShape::new(1, 0).expect("fallback shape is valid"));
    let mm2 = area.vcore_mm2(shape.slices, shape.l2_banks);
    let leakage_pj = mm2 * model.leakage_pj_per_mm2_cycle * result.cycles as f64;
    EnergyReport {
        dynamic_nj: dynamic_pj / 1000.0,
        leakage_nj: leakage_pj / 1000.0,
        cycles: result.cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharing_core::{SimConfig, Simulator};
    use sharing_trace::{Benchmark, TraceSpec};

    fn run(slices: usize, banks: usize) -> SimResult {
        let cfg = SimConfig::with_shape(slices, banks).unwrap();
        Simulator::new(cfg)
            .unwrap()
            .run_with(
                &Benchmark::Gcc.generate(&TraceSpec::new(8_000, 3)),
                sharing_core::RunOptions::new(),
            )
            .result
    }

    #[test]
    fn energy_is_positive_and_decomposes() {
        let r = run(2, 2);
        let e = estimate(&r, &EnergyModel::node_45nm(), &AreaModel::paper());
        assert!(e.dynamic_nj > 0.0);
        assert!(e.leakage_nj > 0.0);
        assert!((e.total_nj() - (e.dynamic_nj + e.leakage_nj)).abs() < 1e-9);
        assert!(e.edp() > e.total_nj());
        assert!(e.ed2p() > e.edp());
    }

    #[test]
    fn bigger_vcores_leak_more() {
        let small = estimate(&run(1, 0), &EnergyModel::node_45nm(), &AreaModel::paper());
        let big = estimate(&run(8, 32), &EnergyModel::node_45nm(), &AreaModel::paper());
        // Per-cycle leakage power is area-proportional.
        let small_rate = small.leakage_nj / small.cycles as f64;
        let big_rate = big.leakage_nj / big.cycles as f64;
        assert!(big_rate > 5.0 * small_rate);
    }

    #[test]
    fn cache_reduces_dram_energy_share() {
        let none = run(2, 0);
        let plenty = run(2, 16);
        let m = EnergyModel::node_45nm();
        let a = AreaModel::paper();
        let dram_share = |r: &SimResult| {
            let total = estimate(r, &m, &a).dynamic_nj * 1000.0;
            r.mem.memory_accesses as f64 * m.dram_pj / total
        };
        assert!(
            dram_share(&plenty) < dram_share(&none),
            "L2 should absorb DRAM energy: {} vs {}",
            dram_share(&plenty),
            dram_share(&none)
        );
    }

    #[test]
    fn avg_power_is_sane_for_a_ghz_core() {
        let e = estimate(&run(2, 2), &EnergyModel::node_45nm(), &AreaModel::paper());
        let w = e.avg_power_w(1.0);
        // A two-Slice 45nm core should land in the tenths-of-watts to
        // few-watts range, not milli- or kilo-watts.
        assert!((0.01..50.0).contains(&w), "implausible power {w} W");
    }
}
