//! The result cache: canonical job key → serialized result payload.
//!
//! Keys are the canonical JSON of the job (see
//! [`crate::protocol::RunJob::cache_key`]); values are the *serialized*
//! result payload, so a cache hit replays the exact bytes a fresh run
//! would produce — trace generation and the simulator are deterministic,
//! which is what makes this sound. Capacity is bounded with FIFO
//! eviction; the full key string is compared on lookup, so hash
//! collisions cannot alias jobs.
//!
//! The cache can be persisted to a plain line-oriented file
//! ([`ResultCache::save_to_file`] / [`ResultCache::load_from_file`]) so
//! sweep results survive daemon restarts. Keys and payloads are compact
//! single-line JSON, so the format is simply a header line followed by
//! alternating key / payload lines — and because the stored payload bytes
//! are written and read back verbatim, a reloaded cache replays exactly
//! the bytes the original run produced.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;

/// First line of a persisted cache file.
pub const CACHE_FILE_HEADER: &str = "ssimd-cache v1";

/// A bounded, thread-safe string-keyed result cache.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, String>,
    order: VecDeque<String>,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` entries (0 disables
    /// caching entirely).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner::default()),
            capacity,
        }
    }

    /// Looks up a payload by its canonical key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<String> {
        self.inner.lock().expect("cache lock").map.get(key).cloned()
    }

    /// Inserts a payload, evicting the oldest entry when full. Re-inserting
    /// an existing key refreshes the value without growing the cache.
    pub fn insert(&self, key: &str, payload: &str) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        if inner
            .map
            .insert(key.to_string(), payload.to_string())
            .is_none()
        {
            inner.order.push_back(key.to_string());
            while inner.order.len() > self.capacity {
                let oldest = inner.order.pop_front().expect("non-empty");
                inner.map.remove(&oldest);
            }
        }
    }

    /// All entries in FIFO (insertion) order, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, String)> {
        let inner = self.inner.lock().expect("cache lock");
        inner
            .order
            .iter()
            .filter_map(|k| inner.map.get(k).map(|v| (k.clone(), v.clone())))
            .collect()
    }

    /// Writes the cache to a plain-format file: a header line, then one
    /// key line and one payload line per entry, oldest first (so a reload
    /// into the same capacity evicts the same entries). Returns the
    /// number of entries written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the file is written atomically via a
    /// sibling temp file so a crash cannot leave a torn cache.
    pub fn save_to_file(&self, path: impl AsRef<Path>) -> io::Result<usize> {
        let path = path.as_ref();
        let entries = self.snapshot();
        let tmp = path.with_extension("tmp");
        {
            let mut f = io::BufWriter::new(std::fs::File::create(&tmp)?);
            writeln!(f, "{CACHE_FILE_HEADER}")?;
            for (key, payload) in &entries {
                // Keys and payloads are compact JSON and never contain
                // newlines; skip (rather than corrupt) anything odd.
                if key.contains('\n') || payload.contains('\n') {
                    continue;
                }
                writeln!(f, "{key}")?;
                writeln!(f, "{payload}")?;
            }
            f.flush()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(entries.len())
    }

    /// Loads entries from a file produced by [`ResultCache::save_to_file`],
    /// preserving their order (FIFO eviction applies if the file holds
    /// more than the capacity). A missing file loads zero entries; a file
    /// with the wrong header is rejected. Returns the number loaded.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; `InvalidData` for a bad header or a
    /// truncated trailing entry.
    pub fn load_from_file(&self, path: impl AsRef<Path>) -> io::Result<usize> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut lines = text.lines();
        if lines.next() != Some(CACHE_FILE_HEADER) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an ssimd cache file",
            ));
        }
        let mut loaded = 0usize;
        while let Some(key) = lines.next() {
            let Some(payload) = lines.next() else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "cache file ends with a key but no payload",
                ));
            };
            self.insert(key, payload);
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Drops every entry, e.g. to fall back to a cold cache after a
    /// partial load from a corrupt file.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.map.clear();
        inner.order.clear();
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_after_insert_round_trips() {
        let c = ResultCache::new(4);
        assert_eq!(c.get("k"), None);
        c.insert("k", "payload");
        assert_eq!(c.get("k").as_deref(), Some("payload"));
    }

    #[test]
    fn evicts_oldest_beyond_capacity() {
        let c = ResultCache::new(2);
        c.insert("a", "1");
        c.insert("b", "2");
        c.insert("c", "3");
        assert_eq!(c.get("a"), None, "oldest evicted");
        assert_eq!(c.get("b").as_deref(), Some("2"));
        assert_eq!(c.get("c").as_deref(), Some("3"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_growth() {
        let c = ResultCache::new(2);
        c.insert("a", "1");
        c.insert("a", "updated");
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("a").as_deref(), Some("updated"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = ResultCache::new(0);
        c.insert("a", "1");
        assert!(c.is_empty());
        assert_eq!(c.get("a"), None);
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ssimd-cache-unit-{}-{name}", std::process::id()))
    }

    #[test]
    fn save_and_load_round_trip_preserves_bytes_and_order() {
        let path = temp_path("round-trip");
        let c = ResultCache::new(8);
        c.insert(r#"{"job":1}"#, r#"{"ipc":1.25,"cycles":800}"#);
        c.insert(r#"{"job":2}"#, r#"{"ipc":0.5}"#);
        assert_eq!(c.save_to_file(&path).unwrap(), 2);

        let fresh = ResultCache::new(8);
        assert_eq!(fresh.load_from_file(&path).unwrap(), 2);
        assert_eq!(
            fresh.get(r#"{"job":1}"#).as_deref(),
            Some(r#"{"ipc":1.25,"cycles":800}"#),
            "payload bytes must survive the round trip"
        );
        assert_eq!(fresh.snapshot(), c.snapshot(), "FIFO order preserved");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_respects_capacity_with_fifo_eviction() {
        let path = temp_path("capacity");
        let big = ResultCache::new(8);
        big.insert("old", "1");
        big.insert("mid", "2");
        big.insert("new", "3");
        big.save_to_file(&path).unwrap();

        let small = ResultCache::new(2);
        assert_eq!(small.load_from_file(&path).unwrap(), 3);
        assert_eq!(small.get("old"), None, "oldest entry evicted on load");
        assert_eq!(small.get("new").as_deref(), Some("3"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_a_cold_start_but_garbage_is_an_error() {
        let c = ResultCache::new(4);
        assert_eq!(c.load_from_file(temp_path("nonexistent")).unwrap(), 0);
        assert!(c.is_empty());

        let path = temp_path("garbage");
        std::fs::write(&path, "definitely not a cache\n").unwrap();
        assert!(c.load_from_file(&path).is_err(), "bad header rejected");
        std::fs::write(&path, format!("{CACHE_FILE_HEADER}\nkey-without-payload\n")).unwrap();
        assert!(c.load_from_file(&path).is_err(), "truncated entry rejected");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn clear_discards_partial_loads() {
        let path = temp_path("partial");
        // One good entry, then a trailing key with no payload: the load
        // errors but has already inserted the good entry.
        std::fs::write(
            &path,
            format!("{CACHE_FILE_HEADER}\ngood-key\ngood-payload\ndangling-key\n"),
        )
        .unwrap();
        let c = ResultCache::new(4);
        assert!(c.load_from_file(&path).is_err());
        assert_eq!(c.get("good-key").as_deref(), Some("good-payload"));
        c.clear();
        assert!(c.is_empty(), "cold cache after clearing the partial load");
        std::fs::remove_file(&path).unwrap();
    }
}
