//! The result cache: canonical job key → serialized result payload.
//!
//! Keys are the canonical JSON of the job (see
//! [`crate::protocol::RunJob::cache_key`]); values are the *serialized*
//! result payload, so a cache hit replays the exact bytes a fresh run
//! would produce — trace generation and the simulator are deterministic,
//! which is what makes this sound. Capacity is bounded with FIFO
//! eviction; the full key string is compared on lookup, so hash
//! collisions cannot alias jobs.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Mutex;

/// A bounded, thread-safe string-keyed result cache.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, String>,
    order: VecDeque<String>,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` entries (0 disables
    /// caching entirely).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner::default()),
            capacity,
        }
    }

    /// Looks up a payload by its canonical key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<String> {
        self.inner.lock().expect("cache lock").map.get(key).cloned()
    }

    /// Inserts a payload, evicting the oldest entry when full. Re-inserting
    /// an existing key refreshes the value without growing the cache.
    pub fn insert(&self, key: &str, payload: &str) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        if inner
            .map
            .insert(key.to_string(), payload.to_string())
            .is_none()
        {
            inner.order.push_back(key.to_string());
            while inner.order.len() > self.capacity {
                let oldest = inner.order.pop_front().expect("non-empty");
                inner.map.remove(&oldest);
            }
        }
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_after_insert_round_trips() {
        let c = ResultCache::new(4);
        assert_eq!(c.get("k"), None);
        c.insert("k", "payload");
        assert_eq!(c.get("k").as_deref(), Some("payload"));
    }

    #[test]
    fn evicts_oldest_beyond_capacity() {
        let c = ResultCache::new(2);
        c.insert("a", "1");
        c.insert("b", "2");
        c.insert("c", "3");
        assert_eq!(c.get("a"), None, "oldest evicted");
        assert_eq!(c.get("b").as_deref(), Some("2"));
        assert_eq!(c.get("c").as_deref(), Some("3"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_growth() {
        let c = ResultCache::new(2);
        c.insert("a", "1");
        c.insert("a", "updated");
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("a").as_deref(), Some("updated"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = ResultCache::new(0);
        c.insert("a", "1");
        assert!(c.is_empty());
        assert_eq!(c.get("a"), None);
    }
}
