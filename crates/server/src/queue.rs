//! The bounded job queue with admission control and drain support.
//!
//! `try_push` never blocks: when the queue is at capacity the caller gets
//! an explicit [`PushError::Full`] to turn into a backpressure reply,
//! rather than the connection silently stalling. `pop` blocks workers
//! until work arrives or the queue is closed; `wait_drained` is the
//! graceful-shutdown barrier (queue empty *and* no job still executing).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a job was not admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; retry later (backpressure).
    Full {
        /// The capacity that was hit.
        capacity: usize,
    },
    /// The server is shutting down and admits no new work.
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full { capacity } => {
                write!(f, "queue full (capacity {capacity}); retry later")
            }
            PushError::Closed => write!(f, "server is shutting down"),
        }
    }
}

/// A bounded MPMC queue for jobs of type `T`.
#[derive(Debug)]
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    cv: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    /// Jobs popped but not yet reported done.
    active: usize,
    closed: bool,
}

impl<T> JobQueue<T> {
    /// The admission capacity this queue was created with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Creates a queue admitting at most `capacity` waiting jobs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (the server could never admit work).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                active: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Admits a job without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`JobQueue::close`].
    pub fn try_push(&self, item: T) -> Result<usize, PushError> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full {
                capacity: self.capacity,
            });
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.cv.notify_all();
        Ok(depth)
    }

    /// Blocks for the next job. Returns `None` once the queue is closed
    /// *and* empty — the worker-exit signal. A returned job counts as
    /// active until [`JobQueue::job_done`].
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                inner.active += 1;
                drop(inner);
                // Wake try_push waiters… there are none (non-blocking), but
                // wake drain waiters observing the depth gauge.
                self.cv.notify_all();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).expect("queue lock");
        }
    }

    /// Marks a popped job as finished (drain accounting).
    pub fn job_done(&self) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.active = inner.active.checked_sub(1).expect("job_done without pop");
        drop(inner);
        self.cv.notify_all();
    }

    /// Stops admission and wakes blocked workers.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.cv.notify_all();
    }

    /// Whether [`JobQueue::close`] has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue lock").closed
    }

    /// Blocks until every admitted job has fully executed (queue empty and
    /// nothing active). Used by graceful shutdown after [`JobQueue::close`].
    pub fn wait_drained(&self) {
        let mut inner = self.inner.lock().expect("queue lock");
        while !inner.items.is_empty() || inner.active > 0 {
            inner = self.cv.wait(inner).expect("queue lock");
        }
    }

    /// Jobs currently waiting (not counting active ones).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = JobQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        q.job_done();
        q.job_done();
    }

    #[test]
    fn admission_control_reports_full() {
        let q = JobQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full { capacity: 2 }));
        // Popping frees a slot.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        q.job_done();
    }

    #[test]
    fn closed_queue_rejects_and_unblocks() {
        let q = Arc::new(JobQueue::<u32>::new(2));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None, "blocked pop wakes with None");
        assert_eq!(q.try_push(1), Err(PushError::Closed));
    }

    #[test]
    fn close_drains_remaining_items_before_none() {
        let q = JobQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(1), "closed queue still hands out backlog");
        q.job_done();
        assert_eq!(q.pop(), Some(2));
        q.job_done();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wait_drained_blocks_until_active_done() {
        let q = Arc::new(JobQueue::new(4));
        q.try_push(7).unwrap();
        assert_eq!(q.pop(), Some(7));
        q.close();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            q2.job_done();
        });
        let t0 = std::time::Instant::now();
        q.wait_drained();
        assert!(
            t0.elapsed() >= std::time::Duration::from_millis(25),
            "drain waited for the active job"
        );
        h.join().unwrap();
    }
}
