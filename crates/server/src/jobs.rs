//! Job tracking for the HTTP front door.
//!
//! The TCP protocol streams reply lines back over the submitting
//! connection, so it never needs job identity beyond the envelope id.
//! HTTP clients submit with `POST /jobs` and poll `GET /jobs/<id>`, so
//! the daemon has to *hold* reply lines until they are fetched.
//! [`JobsTable`] is that holding area: a monotonically numbered table
//! of entries, each accumulating the exact reply lines the worker pool
//! produced (byte-identical to what the TCP path would have streamed),
//! with a bounded FIFO of finished entries so an unpolled daemon does
//! not grow without limit.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Finished jobs retained for polling before the oldest are evicted.
const KEEP_FINISHED: usize = 256;

/// One tracked HTTP-submitted job.
#[derive(Clone, Debug)]
pub(crate) struct JobEntry {
    /// Job kind (`run`, `sweep`, `market`, `dc`) as reported at submit.
    pub kind: &'static str,
    /// Reply lines exactly as the worker produced them, in order.
    pub lines: Vec<String>,
    /// Whether the worker has finished (closed the reply channel).
    pub done: bool,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<u64, JobEntry>,
    finished: VecDeque<u64>,
}

/// Table of HTTP-submitted jobs; all methods are thread-safe.
#[derive(Default)]
pub(crate) struct JobsTable {
    next: AtomicU64,
    inner: Mutex<Inner>,
}

impl JobsTable {
    pub(crate) fn new() -> Self {
        JobsTable::default()
    }

    /// Registers a new pending job and returns its id (ids start at 1).
    pub(crate) fn create(&self, kind: &'static str) -> u64 {
        let id = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        let mut inner = self.inner.lock().expect("jobs lock");
        inner.entries.insert(
            id,
            JobEntry {
                kind,
                lines: Vec::new(),
                done: false,
            },
        );
        id
    }

    /// Appends one reply line to a pending job. Lines for an evicted or
    /// unknown id are dropped (the poller already gave up on it).
    pub(crate) fn append(&self, id: u64, line: String) {
        let mut inner = self.inner.lock().expect("jobs lock");
        if let Some(entry) = inner.entries.get_mut(&id) {
            entry.lines.push(line);
        }
    }

    /// Marks a job finished and evicts the oldest finished entries
    /// beyond [`KEEP_FINISHED`].
    pub(crate) fn finish(&self, id: u64) {
        let mut inner = self.inner.lock().expect("jobs lock");
        if let Some(entry) = inner.entries.get_mut(&id) {
            entry.done = true;
            inner.finished.push_back(id);
        }
        while inner.finished.len() > KEEP_FINISHED {
            if let Some(old) = inner.finished.pop_front() {
                inner.entries.remove(&old);
            }
        }
    }

    /// A snapshot of one job's entry.
    pub(crate) fn get(&self, id: u64) -> Option<JobEntry> {
        self.inner
            .lock()
            .expect("jobs lock")
            .entries
            .get(&id)
            .cloned()
    }

    /// Jobs submitted over HTTP that have not finished yet.
    pub(crate) fn pending(&self) -> usize {
        self.inner
            .lock()
            .expect("jobs lock")
            .entries
            .values()
            .filter(|e| !e.done)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_creates_appends_and_finishes() {
        let t = JobsTable::new();
        let id = t.create("run");
        assert_eq!(id, 1);
        assert_eq!(t.pending(), 1);
        t.append(id, "line-1".into());
        t.append(id, "line-2".into());
        t.finish(id);
        let entry = t.get(id).unwrap();
        assert!(entry.done);
        assert_eq!(entry.kind, "run");
        assert_eq!(entry.lines, vec!["line-1", "line-2"]);
        assert_eq!(t.pending(), 0);
    }

    #[test]
    fn finished_entries_are_evicted_fifo_beyond_the_cap() {
        let t = JobsTable::new();
        let first = t.create("run");
        t.finish(first);
        for _ in 0..KEEP_FINISHED {
            let id = t.create("run");
            t.finish(id);
        }
        assert!(t.get(first).is_none(), "oldest finished entry evicted");
        assert!(t.get(first + 1).is_some());
    }

    #[test]
    fn appends_to_unknown_ids_are_dropped() {
        let t = JobsTable::new();
        t.append(999, "orphan".into());
        assert!(t.get(999).is_none());
    }
}
