//! The ssimd daemon: TCP listener, connection handlers, worker pool.
//!
//! ```text
//!  clients ──TCP──▶ connection threads ──try_push──▶ bounded JobQueue
//!                        ▲    │ backpressure reply          │ pop
//!                        │    ▼                             ▼
//!                   reply mpsc  ◀───── lines ─────── worker pool (N threads)
//!                                                           │
//!                                               ResultCache + Metrics
//!                                                           │
//!                                            (coordinator mode only)
//!                                                           ▼
//!                                              WorkerPool ──▶ remote ssimds
//! ```
//!
//! Each connection thread reads requests in order; control requests
//! (`ping`, `hello`, `stats`, `shutdown`) are answered inline, simulation
//! jobs go through admission control into the shared queue and their
//! reply lines stream back through a per-job channel. Shutdown closes
//! admission, drains every in-flight job, answers the requester, then
//! stops the listener.
//!
//! In **coordinator mode** (`ServerConfig::remote_workers` non-empty)
//! the queue and cache work exactly as in single-node mode, but job
//! execution dispatches to remote worker daemons through a
//! [`WorkerPool`] instead of the local simulator — with health checks,
//! per-job timeouts, and retry/re-queue (see [`crate::dispatch`]).
//! Workers run the same deterministic simulator and payloads are spliced
//! verbatim, so results stay byte-identical to single-node execution.

use crate::cache::ResultCache;
use crate::dispatch::{DispatchOpts, WorkerPool};
use crate::exec;
use crate::http;
use crate::jobs::JobsTable;
use crate::metrics::{JobClass, Metrics};
use crate::protocol::{
    self, DcJob, Envelope, ErrorCode, Job, JobWorkload, Request, RunJob, ServerError, MIN_PROTO,
    PROTO_VERSION,
};
use crate::queue::{JobQueue, PushError};
use sharing_core::VCoreShape;
use sharing_json::Json;
use sharing_market::{optimize, PerfSurface};
use sharing_obs::{SpanEvent, TraceBuffer};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (use port 0 for an ephemeral port in tests).
    pub addr: String,
    /// Worker pool size.
    pub workers: usize,
    /// Bounded queue capacity (admission control threshold).
    pub queue_capacity: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// When set, the result cache is loaded from this file at startup and
    /// saved back on graceful shutdown, so cached results (and their
    /// byte-identical replays) survive daemon restarts.
    pub cache_path: Option<String>,
    /// When set, a trace of every job (per-worker wall-clock spans with
    /// queue-wait and execute timings) is written here. A path ending in
    /// `.jsonl` **streams**: spans append through a bounded-buffer
    /// writer thread as they happen, so long daemon runs stay bounded in
    /// memory and a SIGKILL still leaves every completed line on disk
    /// (re-wrap with `ssim trace-pack` / [`sharing_obs::jsonl_to_chrome`]).
    /// Any other path keeps the legacy behaviour: one Chrome-JSON dump
    /// on graceful shutdown.
    pub trace_path: Option<String>,
    /// Remote worker daemon addresses. Non-empty turns this daemon into
    /// a coordinator: jobs dispatch to these workers instead of the
    /// local simulator. Every worker must be reachable and speak a
    /// compatible protocol version at startup.
    pub remote_workers: Vec<String>,
    /// Per-job reply timeout on worker connections (coordinator mode).
    pub job_timeout_ms: u64,
    /// Extra dispatch attempts after a failure (coordinator mode).
    pub dispatch_retries: u32,
    /// Worker health-ping cadence (coordinator mode).
    pub ping_interval_ms: u64,
    /// When set, an HTTP/1.1 front door binds here alongside the TCP
    /// listener: `GET /health`, `GET /metrics`, `GET /status`,
    /// `POST /jobs` + `GET /jobs/<id>`. Use port 0 for an ephemeral
    /// port; [`ServerHandle::http_addr`] resolves it.
    pub http_addr: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: format!("127.0.0.1:{}", protocol::DEFAULT_PORT),
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            queue_capacity: 64,
            cache_capacity: 1024,
            cache_path: None,
            trace_path: None,
            remote_workers: Vec::new(),
            job_timeout_ms: 30_000,
            dispatch_retries: 3,
            ping_interval_ms: 2_000,
            http_addr: None,
        }
    }
}

/// One queued job: the request plus the channel its reply lines go to.
pub(crate) struct Queued {
    pub(crate) id: Option<u64>,
    pub(crate) job: Job,
    /// Distributed trace id from the envelope. Every span this job
    /// produces — queue wait, dispatch, remote execution — carries it,
    /// and single-reply jobs answer with a `"spans"` line ahead of the
    /// result so the submitter (a coordinator, or `ssim submit
    /// --trace`) can merge them into one end-to-end trace.
    pub(crate) trace: Option<u64>,
    pub(crate) reply: mpsc::Sender<String>,
    pub(crate) enqueued: Instant,
}

/// Shared daemon state.
pub(crate) struct State {
    pub(crate) queue: JobQueue<Queued>,
    pub(crate) cache: ResultCache,
    cache_path: Option<String>,
    pub(crate) metrics: Arc<Metrics>,
    trace: TraceBuffer,
    trace_path: Option<String>,
    stopping: AtomicBool,
    /// Set the moment a shutdown begins, *before* the drain completes,
    /// so `GET /health` flips to 503 while in-flight jobs finish.
    pub(crate) draining: AtomicBool,
    /// Jobs submitted over HTTP, held for polling.
    pub(crate) jobs: JobsTable,
    /// The HTTP front door's handle; taken (and stopped) at shutdown.
    http: Mutex<Option<sharing_http::HttpHandle>>,
    /// Remote dispatch pool; `Some` only in coordinator mode.
    pub(crate) pool: Option<Arc<WorkerPool>>,
}

/// The full Prometheus exposition for one daemon: queue/cache/latency
/// families (now histogram-backed), per-worker families in coordinator
/// mode, and the process-global registry. Shared verbatim by the TCP
/// `metrics` request and HTTP `GET /metrics`.
///
/// In coordinator mode the answer is **federated**: every healthy
/// worker's own exposition is pulled over the protocol and appended
/// under `instance="worker:<k>"` labels, so one scrape of the
/// coordinator reads the whole fleet. The coordinator's own samples
/// stay unlabelled.
pub(crate) fn metrics_text(state: &State) -> String {
    let mut text = state.metrics.prometheus_text(
        state.queue.depth(),
        state.queue.capacity(),
        state.cache.len(),
    );
    if let Some(pool) = &state.pool {
        text.push_str(&pool.prometheus_text());
        for (k, doc) in pool.federate() {
            text.push_str(&sharing_obs::inject_label(
                &doc,
                "instance",
                &format!("worker:{k}"),
            ));
        }
    }
    text.push_str(&sharing_obs::prometheus_text());
    text
}

/// A running daemon; dropping the handle does *not* stop it — call
/// [`ServerHandle::shutdown`] or send a `shutdown` request.
pub struct Server;

/// Handle to a started daemon.
pub struct ServerHandle {
    local: SocketAddr,
    http_local: Option<SocketAddr>,
    state: Arc<State>,
    listener_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the daemon: listener thread plus a fixed worker
    /// pool. With `remote_workers` set, registers every remote worker
    /// (connect + `hello` version negotiation) before accepting clients.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors, and in coordinator mode any
    /// unreachable or protocol-mismatched worker.
    pub fn start(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local = listener.local_addr()?;
        let metrics = Arc::new(Metrics::new(cfg.workers));
        let pool = if cfg.remote_workers.is_empty() {
            None
        } else {
            Some(WorkerPool::connect(
                &cfg.remote_workers,
                DispatchOpts {
                    job_timeout: Duration::from_millis(cfg.job_timeout_ms.max(1)),
                    retries: cfg.dispatch_retries,
                    ping_interval: Duration::from_millis(cfg.ping_interval_ms.max(1)),
                    ..DispatchOpts::default()
                },
                Arc::clone(&metrics),
            )?)
        };
        let state = Arc::new(State {
            queue: JobQueue::new(cfg.queue_capacity),
            cache: ResultCache::new(cfg.cache_capacity),
            cache_path: cfg.cache_path,
            metrics,
            trace: TraceBuffer::new(),
            trace_path: cfg.trace_path,
            stopping: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            jobs: JobsTable::new(),
            http: Mutex::new(None),
            pool,
        });
        if let Some(path) = &state.trace_path {
            // Streaming mode: spans hit disk as they happen instead of
            // accumulating until a (possibly never-reached) graceful
            // shutdown. Attached before the workers spawn so no span is
            // lost to the buffered/streamed transition.
            if path.ends_with(".jsonl") {
                match sharing_obs::SpanSink::create(path) {
                    Ok(sink) => state.trace.attach_sink(sink),
                    Err(e) => {
                        eprintln!("ssimd: trace sink {path}: {e}; falling back to exit dump");
                    }
                }
            }
        }
        if let Some(path) = &state.cache_path {
            // An armed corrupt_cache_file rule mangles the persisted
            // bytes here, before we trust them.
            let _ = sharing_chaos::hooks().mangle_cache_file(path);
            // A missing file is a cold start, and so is a corrupt or
            // truncated one: warn and drop whatever half-loaded rather
            // than refusing to come up over a damaged cache.
            if let Err(e) = state.cache.load_from_file(path) {
                eprintln!("ssimd: cache file {path}: {e}; starting with a cold cache");
                sharing_obs::counter("ssimd_cache_load_failures_total").inc();
                state.cache.clear();
            }
        }
        // The HTTP front door binds before the workers spawn so a bind
        // failure aborts startup cleanly (nothing to drain yet).
        let http_local = match &cfg.http_addr {
            Some(addr) => {
                let handle = http::start(addr, &state)?;
                let http_local = handle.local_addr();
                *state.http.lock().expect("http handle lock") = Some(handle);
                Some(http_local)
            }
            None => None,
        };
        let worker_threads = (0..cfg.workers.max(1))
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("ssimd-worker-{i}"))
                    .spawn(move || worker_loop(&state, i as u64))
                    .expect("spawn worker")
            })
            .collect();
        let lstate = Arc::clone(&state);
        let listener_thread = std::thread::Builder::new()
            .name("ssimd-listener".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if lstate.stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let cstate = Arc::clone(&lstate);
                    let _ = std::thread::Builder::new()
                        .name("ssimd-conn".into())
                        .spawn(move || handle_connection(stream, &cstate, local));
                }
            })
            .expect("spawn listener");
        Ok(ServerHandle {
            local,
            http_local,
            state,
            listener_thread: Some(listener_thread),
            worker_threads,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// The HTTP front door's bound address, when one was configured.
    #[must_use]
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_local
    }

    /// Whether the daemon has finished shutting down (drain complete,
    /// listener kicked). Lets signal-driven mains poll for exit without
    /// consuming the handle.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.state.stopping.load(Ordering::SeqCst)
    }

    /// Programmatic graceful shutdown: drain, then stop the listener.
    /// Idempotent.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.state, self.local);
    }

    /// Waits for the daemon to exit (after a shutdown from any source).
    ///
    /// # Panics
    ///
    /// Panics if a daemon thread panicked.
    pub fn join(mut self) {
        if let Some(t) = self.listener_thread.take() {
            t.join().expect("listener thread");
        }
        for t in self.worker_threads.drain(..) {
            t.join().expect("worker thread");
        }
    }

    /// Shuts down and waits; the one-call teardown for tests and examples.
    pub fn stop(self) {
        self.shutdown();
        self.join();
    }
}

/// Closes admission, waits for in-flight jobs, then unblocks `accept`.
fn initiate_shutdown(state: &State, local: SocketAddr) {
    // Draining flips first so `GET /health` answers 503 while the
    // in-flight jobs below finish.
    state.draining.store(true, Ordering::SeqCst);
    state.queue.close();
    state.queue.wait_drained();
    if !state.stopping.swap(true, Ordering::SeqCst) {
        // Exactly-once on the first shutdown path: persist the cache and
        // the job trace (all jobs have drained, so both are quiescent),
        // stop the dispatch pool's health thread, then kick the listener
        // out of accept() with a throwaway connection.
        if let Some(path) = &state.cache_path {
            let _ = state.cache.save_to_file(path);
        }
        if state.trace.has_sink() {
            // Streaming mode: everything is already on disk; this drains
            // the writer and flushes the final lines.
            let _ = state.trace.close_sink();
        } else if let Some(path) = &state.trace_path {
            let _ = state.trace.save_chrome(path);
        }
        if let Some(pool) = &state.pool {
            pool.close();
        }
        // Stop the HTTP front door last: it kept answering (503s on
        // /health, polls on /jobs) throughout the drain above.
        if let Some(http) = state.http.lock().expect("http handle lock").take() {
            http.stop();
        }
        let _ = TcpStream::connect(local);
    }
}

fn ok_head(id: Option<u64>, ty: &str) -> String {
    let mut s = String::from("{");
    if let Some(id) = id {
        s.push_str(&format!("\"id\":{id},"));
    }
    s.push_str(&format!("\"ok\":true,\"type\":\"{ty}\""));
    s
}

/// The streamed per-shape sweep line, shared by the local and
/// coordinator execution paths so both produce identical bytes.
fn sweep_point_line(id: Option<u64>, shape: VCoreShape, payload: &str, cached: bool) -> String {
    let ipc = payload_ipc(payload).unwrap_or(0.0);
    format!(
        "{},\"shape\":{{\"slices\":{},\"l2_banks\":{}}},\"ipc\":{},\"cached\":{cached}}}",
        ok_head(id, "sweep_point"),
        shape.slices,
        shape.l2_banks,
        Json::Float(ipc)
    )
}

/// The 72 per-shape run jobs behind one sweep or market grid.
fn grid_jobs(
    benchmark: sharing_trace::Benchmark,
    len: usize,
    seed: u64,
) -> Vec<(VCoreShape, RunJob)> {
    VCoreShape::sweep_grid()
        .map(|shape| {
            (
                shape,
                RunJob {
                    workload: JobWorkload::Benchmark(benchmark),
                    slices: shape.slices,
                    banks: shape.l2_banks,
                    len,
                    seed,
                },
            )
        })
        .collect()
}

fn handle_connection(stream: TcpStream, state: &Arc<State>, local: SocketAddr) {
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match protocol::read_line(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) | Err(_) => return,
        };
        if line.is_empty() {
            continue;
        }
        let env = match Envelope::parse(&line) {
            Ok(env) => env,
            Err(e) => {
                state.metrics.errors.fetch_add(1, Ordering::Relaxed);
                if protocol::write_line(&mut writer, &e.to_line(None)).is_err() {
                    return;
                }
                continue;
            }
        };
        // Version gate: a request from a protocol this server does not
        // speak gets a structured refusal, never a guess. (`hello` from
        // a newer client lands here too — the error *is* the
        // negotiation answer.)
        if !env.proto_supported() {
            state.metrics.errors.fetch_add(1, Ordering::Relaxed);
            let err = ServerError::version_mismatch(env.proto.unwrap_or(0));
            if protocol::write_line(&mut writer, &err.to_line(env.id)).is_err() {
                return;
            }
            continue;
        }
        let job = match env.req {
            Request::Hello { proto } => {
                let reply = format!(
                    "{},\"proto\":{PROTO_VERSION},\"min_proto\":{MIN_PROTO},\
                     \"client_proto\":{proto}}}",
                    ok_head(env.id, "hello")
                );
                if protocol::write_line(&mut writer, &reply).is_err() {
                    return;
                }
                continue;
            }
            Request::Ping => {
                let reply = ok_head(env.id, "pong") + "}";
                if protocol::write_line(&mut writer, &reply).is_err() {
                    return;
                }
                continue;
            }
            Request::Stats => {
                let snap = state
                    .metrics
                    .snapshot(state.queue.depth(), state.cache.len());
                let reply = format!("{},\"stats\":{snap}}}", ok_head(env.id, "stats"));
                if protocol::write_line(&mut writer, &reply).is_err() {
                    return;
                }
                continue;
            }
            Request::Metrics => {
                // Prometheus text is multi-line; it ships as one JSON
                // string field so the one-line-per-reply protocol holds.
                // Same document as HTTP `GET /metrics`.
                let text = metrics_text(state);
                let reply = format!(
                    "{},\"metrics\":{}}}",
                    ok_head(env.id, "metrics"),
                    Json::Str(text)
                );
                if protocol::write_line(&mut writer, &reply).is_err() {
                    return;
                }
                continue;
            }
            Request::Shutdown => {
                // Drain first, then answer, and only then unblock the
                // listener: once `accept` returns the daemon may exit, and
                // nothing joins this connection thread — replying after
                // the kick races with process teardown.
                state.draining.store(true, Ordering::SeqCst);
                state.queue.close();
                state.queue.wait_drained();
                let done = state.metrics.jobs_completed.load(Ordering::Relaxed);
                let reply = format!(
                    "{},\"jobs_completed\":{done}}}",
                    ok_head(env.id, "shutdown")
                );
                let _ = protocol::write_line(&mut writer, &reply);
                initiate_shutdown(state, local);
                return;
            }
            Request::Job(job) => job,
        };
        let (tx, rx) = mpsc::channel();
        let queued = Queued {
            id: env.id,
            job,
            trace: env.trace,
            reply: tx,
            enqueued: Instant::now(),
        };
        // A chaos queue_full_storm answers queue_full for a window
        // regardless of actual depth; clients must treat it exactly
        // like organic backpressure.
        let admitted = if sharing_chaos::hooks().admission_fault() {
            Err(PushError::Full {
                capacity: state.queue.capacity(),
            })
        } else {
            state.queue.try_push(queued)
        };
        match admitted {
            Ok(_) => {
                state.metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);
                // Stream every reply line for this job; the channel closes
                // when the worker drops the sender.
                for reply_line in rx {
                    if protocol::write_line(&mut writer, &reply_line).is_err() {
                        // Client is gone; keep draining so the worker's
                        // sends fail fast instead of blocking.
                        return;
                    }
                }
            }
            Err(e) => {
                state.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                let code = match e {
                    PushError::Full { .. } => ErrorCode::QueueFull,
                    PushError::Closed => ErrorCode::ShuttingDown,
                };
                let backpressure = matches!(e, PushError::Full { .. });
                let reply = ServerError::new(code, e.to_string()).to_line_with(
                    env.id,
                    vec![
                        ("backpressure", Json::Bool(backpressure)),
                        ("queue_depth", Json::Int(state.queue.depth() as i128)),
                    ],
                );
                if protocol::write_line(&mut writer, &reply).is_err() {
                    return;
                }
            }
        }
    }
}

fn worker_loop(state: &Arc<State>, track: u64) {
    while let Some(job) = state.queue.pop() {
        let queue_wait_us = u64::try_from(job.enqueued.elapsed().as_micros()).unwrap_or(u64::MAX);
        state.metrics.busy_workers.fetch_add(1, Ordering::Relaxed);
        let start_us = state.trace.now_us();
        let t0 = Instant::now();
        let report = execute_job(state, &job);
        let exec_us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
        // Completion metrics are recorded before `job_done()` so that a
        // shutdown drain (which waits on `job_done`) always observes them.
        state.metrics.jobs_completed.fetch_add(1, Ordering::Relaxed);
        state
            .metrics
            .record_job(report.class, report.units, queue_wait_us, exec_us);
        state.metrics.busy_workers.fetch_sub(1, Ordering::Relaxed);
        observe_job(
            state,
            &job,
            &report,
            track,
            start_us,
            queue_wait_us,
            exec_us,
        );
        drop(job);
        state.queue.job_done();
    }
}

/// One executed job's accounting: what it counted as, how many work
/// units it completed, and whether a cache hit served it.
struct JobReport {
    class: JobClass,
    units: u64,
    cached: Option<bool>,
    ok: bool,
}

/// Records one job's wall-clock span (this worker's track) with its
/// structured record: request id, kind, queue wait, execute time, and
/// cache outcome.
#[allow(clippy::too_many_arguments)]
fn observe_job(
    state: &State,
    job: &Queued,
    report: &JobReport,
    track: u64,
    start_us: u64,
    queue_wait_us: u64,
    exec_us: u64,
) {
    let mut args = vec![
        ("kind".to_string(), Json::Str(report.class.name().into())),
        ("units".to_string(), Json::Int(i128::from(report.units))),
        (
            "queue_wait_us".to_string(),
            Json::Int(i128::from(queue_wait_us)),
        ),
        ("exec_us".to_string(), Json::Int(i128::from(exec_us))),
        ("ok".to_string(), Json::Bool(report.ok)),
    ];
    if let Some(id) = job.id {
        args.push(("id".to_string(), Json::Int(i128::from(id))));
    }
    if let Some(trace_id) = job.trace {
        args.push(("trace".to_string(), Json::Int(i128::from(trace_id))));
    }
    if let Some(cached) = report.cached {
        args.push(("cached".to_string(), Json::Bool(cached)));
    }
    state.trace.record(SpanEvent::wall(
        format!("{} job", report.class.name()),
        "ssimd",
        track,
        start_us,
        exec_us,
        args,
    ));
}

/// Extracts IPC from a serialized `SimResult` payload.
fn payload_ipc(payload: &str) -> Option<f64> {
    let v = Json::parse(payload).ok()?;
    let cycles = v.get("cycles")?.as_f64()?;
    let insts = v.get("instructions")?.as_f64()?;
    if cycles > 0.0 {
        Some(insts / cycles)
    } else {
        None
    }
}

/// A run job's payload: local cache, then the dispatch pool
/// (coordinator) or the local simulator (single-node). Returns
/// `(payload, was_cached)`. `trace_id` rides the worker envelope in
/// coordinator mode so the remote execution joins the job's trace.
fn run_payload(
    state: &State,
    run: &RunJob,
    trace_id: Option<u64>,
) -> Result<(String, bool), ServerError> {
    match &state.pool {
        Some(pool) => {
            let key = run.cache_key();
            if let Some(hit) = state.cache.get(&key) {
                state.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((hit, true));
            }
            state.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
            let payload = pool.dispatch_one(&Job::Run(run.clone()), trace_id, &state.trace)?;
            state.cache.insert(&key, &payload);
            Ok((payload, false))
        }
        None => {
            exec::run_cached(&state.cache, &state.metrics, run).map_err(ServerError::exec_failed)
        }
    }
}

/// A dc job's payload, mirroring [`run_payload`].
fn dc_payload(
    state: &State,
    dc: &DcJob,
    trace_id: Option<u64>,
) -> Result<(String, bool), ServerError> {
    match &state.pool {
        Some(pool) => {
            let key = dc.cache_key();
            if let Some(hit) = state.cache.get(&key) {
                state.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((hit, true));
            }
            state.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
            let payload =
                pool.dispatch_one(&Job::Dc(Box::new(dc.clone())), trace_id, &state.trace)?;
            state.cache.insert(&key, &payload);
            Ok((payload, false))
        }
        None => {
            exec::run_dc_cached(&state.cache, &state.metrics, dc).map_err(ServerError::exec_failed)
        }
    }
}

/// Resolves one grid of run jobs (a sweep or a market surface), calling
/// `each(index, payload, was_cached) -> keep_going` **in grid order** —
/// fanned out over the dispatch pool in coordinator mode, computed
/// point-by-point locally otherwise. Returns the points resolved.
fn grid_payloads(
    state: &State,
    jobs: &[(VCoreShape, RunJob)],
    trace_id: Option<u64>,
    mut each: impl FnMut(usize, &str, bool) -> bool,
) -> Result<u64, ServerError> {
    match &state.pool {
        Some(pool) => {
            let runs: Vec<RunJob> = jobs.iter().map(|(_, r)| r.clone()).collect();
            pool.dispatch_grid(
                &runs,
                &state.cache,
                trace_id,
                &state.trace,
                |i, payload, cached| each(i, payload, cached),
            )
        }
        None => {
            let mut points = 0u64;
            for (i, (_, run)) in jobs.iter().enumerate() {
                let (payload, cached) = exec::run_cached(&state.cache, &state.metrics, run)
                    .map_err(ServerError::exec_failed)?;
                points += 1;
                if !each(i, &payload, cached) {
                    break;
                }
            }
            Ok(points)
        }
    }
}

/// Answers a traced job's `"spans"` reply line: this daemon's execution
/// span for the job, sent **before** the final reply line so the final
/// line's bytes (and the coordinator's verbatim splice of them) are
/// identical to an untraced job's. A non-traced job sends nothing.
fn send_spans_line(job: &Queued, kind: &str, started: (u64, Instant), cached: bool) {
    let Some(trace_id) = job.trace else { return };
    let (start_us, t0) = started;
    let exec_us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
    let queue_wait = job.enqueued.elapsed().saturating_sub(t0.elapsed());
    let queue_wait_us = u64::try_from(queue_wait.as_micros()).unwrap_or(u64::MAX);
    let span = SpanEvent::wall(
        format!("{kind} exec"),
        "ssimd",
        0,
        start_us,
        exec_us,
        vec![
            ("trace".to_string(), Json::Int(i128::from(trace_id))),
            ("kind".to_string(), Json::Str(kind.into())),
            (
                "queue_wait_us".to_string(),
                Json::Int(i128::from(queue_wait_us)),
            ),
            ("cached".to_string(), Json::Bool(cached)),
        ],
    );
    let line = format!(
        "{},\"trace\":{trace_id},\"spans\":[{}]}}",
        ok_head(job.id, "spans"),
        span.to_json()
    );
    let _ = job.reply.send(line);
}

fn execute_job(state: &Arc<State>, job: &Queued) -> JobReport {
    match &job.job {
        Job::Run(run) => {
            let started = (state.trace.now_us(), Instant::now());
            match run_payload(state, run, job.trace) {
                Ok((payload, cached)) => {
                    send_spans_line(job, "run", started, cached);
                    // The payload is spliced verbatim so cache hits (and
                    // coordinator dispatches) are byte-identical to the
                    // fresh run that filled them.
                    let line = format!(
                        "{},\"cached\":{cached},\"result\":{payload}}}",
                        ok_head(job.id, "result")
                    );
                    let _ = job.reply.send(line);
                    JobReport {
                        class: JobClass::Simulate,
                        units: 1,
                        cached: Some(cached),
                        ok: true,
                    }
                }
                Err(e) => {
                    state.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(e.to_line(job.id));
                    JobReport {
                        class: JobClass::Simulate,
                        units: 0,
                        cached: None,
                        ok: false,
                    }
                }
            }
        }
        Job::Sweep(sweep) => {
            let jobs = grid_jobs(sweep.benchmark, sweep.len, sweep.seed);
            let report = |points, ok| JobReport {
                class: JobClass::SweepPoint,
                units: points,
                cached: None,
                ok,
            };
            let streamed = grid_payloads(state, &jobs, job.trace, |i, payload, cached| {
                let line = sweep_point_line(job.id, jobs[i].0, payload, cached);
                // A failed send means the client disconnected; stop the
                // grid early but still account for points already swept.
                job.reply.send(line).is_ok()
            });
            match streamed {
                Ok(points) if points == jobs.len() as u64 => {
                    let line = format!("{},\"points\":{points}}}", ok_head(job.id, "sweep_done"));
                    let _ = job.reply.send(line);
                    report(points, true)
                }
                Ok(points) => report(points, true), // client went away
                Err(e) => {
                    state.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(e.to_line(job.id));
                    report(0, false)
                }
            }
        }
        Job::Market(market) => {
            let jobs = grid_jobs(market.benchmark, market.len, market.seed);
            let mut points: BTreeMap<VCoreShape, f64> = BTreeMap::new();
            let gathered = grid_payloads(state, &jobs, job.trace, |i, payload, _| {
                points.insert(jobs[i].0, payload_ipc(payload).unwrap_or(0.0));
                true
            });
            if let Err(e) = gathered {
                state.metrics.errors.fetch_add(1, Ordering::Relaxed);
                let _ = job.reply.send(e.to_line(job.id));
                return JobReport {
                    class: JobClass::Market,
                    units: 0,
                    cached: None,
                    ok: false,
                };
            }
            let surface = PerfSurface::new(market.benchmark.name(), points);
            let chosen =
                optimize::best_utility(&surface, market.utility, &market.market, market.budget);
            let cores = market.market.affordable_cores(chosen.shape, market.budget);
            let line = format!(
                "{},\"benchmark\":\"{}\",\"utility\":\"{}\",\"market\":\"{}\",\
                 \"budget\":{},\"shape\":{{\"slices\":{},\"l2_banks\":{}}},\
                 \"cores\":{},\"perf\":{},\"value\":{}}}",
                ok_head(job.id, "market_result"),
                market.benchmark.name(),
                market.utility.name(),
                market.market.name,
                Json::Float(market.budget),
                chosen.shape.slices,
                chosen.shape.l2_banks,
                Json::Float(cores),
                Json::Float(chosen.perf),
                Json::Float(chosen.value),
            );
            let _ = job.reply.send(line);
            JobReport {
                class: JobClass::Market,
                units: 1,
                cached: None,
                ok: true,
            }
        }
        Job::Dc(dc) => {
            let started = (state.trace.now_us(), Instant::now());
            match dc_payload(state, dc, job.trace) {
                Ok((payload, cached)) => {
                    send_spans_line(job, "dc", started, cached);
                    // Spliced verbatim, like run results, so cache hits
                    // (and reloads from a persisted cache file) replay
                    // the exact bytes of the original run.
                    let line = format!(
                        "{},\"cached\":{cached},\"result\":{payload}}}",
                        ok_head(job.id, "dc_result")
                    );
                    let _ = job.reply.send(line);
                    JobReport {
                        class: JobClass::Dc,
                        units: 1,
                        cached: Some(cached),
                        ok: true,
                    }
                }
                Err(e) => {
                    state.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(e.to_line(job.id));
                    JobReport {
                        class: JobClass::Dc,
                        units: 0,
                        cached: None,
                        ok: false,
                    }
                }
            }
        }
    }
}
