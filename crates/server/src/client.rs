//! A blocking client for the ssimd protocol.
//!
//! One `Client` wraps one TCP connection. Requests are answered in order,
//! so the typed helpers below send a request and read exactly the reply
//! lines it produces. For pipelining, use [`Client::send`] /
//! [`Client::recv`] directly with distinct `id`s.

use crate::protocol::{self, DcJob, Envelope, JobWorkload, MarketJob, Request, RunJob, SweepJob};
use sharing_dc::{BillingMode, Scenario};
use sharing_json::Json;
use sharing_market::{Market, UtilityFn};
use sharing_trace::{Benchmark, WorkloadProfile};
use std::io::{BufReader, Error, ErrorKind};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected ssimd client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn bad_data(msg: impl Into<String>) -> Error {
    Error::new(ErrorKind::InvalidData, msg.into())
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn send(&mut self, env: &Envelope) -> std::io::Result<()> {
        protocol::write_line(&mut self.writer, &env.to_line())
    }

    /// Reads one reply line as JSON.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` if the server closed the connection; `InvalidData`
    /// for non-JSON replies.
    pub fn recv(&mut self) -> std::io::Result<Json> {
        let line = protocol::read_line(&mut self.reader)?
            .ok_or_else(|| Error::new(ErrorKind::UnexpectedEof, "server closed connection"))?;
        Json::parse(&line).map_err(|e| bad_data(e.to_string()))
    }

    /// Sends a request and reads its single reply.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::send`] / [`Client::recv`] errors.
    pub fn call(&mut self, env: &Envelope) -> std::io::Result<Json> {
        self.send(env)?;
        self.recv()
    }

    /// Liveness check; `true` when the server answers `pong`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn ping(&mut self) -> std::io::Result<bool> {
        let v = self.call(&Envelope {
            id: None,
            req: Request::Ping,
        })?;
        Ok(v.get("type").and_then(Json::as_str) == Some("pong"))
    }

    /// Fetches the server's metrics snapshot (the `"stats"` object).
    ///
    /// # Errors
    ///
    /// `InvalidData` if the reply carries no stats object.
    pub fn stats(&mut self) -> std::io::Result<Json> {
        let v = self.call(&Envelope {
            id: None,
            req: Request::Stats,
        })?;
        v.get("stats")
            .cloned()
            .ok_or_else(|| bad_data("stats reply missing `stats`"))
    }

    /// Fetches the server's metrics as Prometheus text exposition.
    ///
    /// # Errors
    ///
    /// `InvalidData` if the reply carries no metrics text.
    pub fn metrics(&mut self) -> std::io::Result<String> {
        let v = self.call(&Envelope {
            id: None,
            req: Request::Metrics,
        })?;
        v.get("metrics")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| bad_data("metrics reply missing `metrics`"))
    }

    /// Requests graceful shutdown; returns the final reply.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn shutdown(&mut self) -> std::io::Result<Json> {
        self.call(&Envelope {
            id: None,
            req: Request::Shutdown,
        })
    }

    /// Submits a single run job and waits for its result line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; server-side failures come back as
    /// `{"ok":false}` replies, not `Err`.
    pub fn run(&mut self, job: RunJob) -> std::io::Result<Json> {
        self.call(&Envelope {
            id: None,
            req: Request::Run(job),
        })
    }

    /// Convenience: runs a named benchmark.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for an unknown benchmark name; otherwise as
    /// [`Client::run`].
    pub fn run_benchmark(
        &mut self,
        name: &str,
        slices: usize,
        banks: usize,
        len: usize,
        seed: u64,
    ) -> std::io::Result<Json> {
        let bench = Benchmark::from_name(name).ok_or_else(|| {
            Error::new(
                ErrorKind::InvalidInput,
                format!("unknown benchmark `{name}`"),
            )
        })?;
        self.run(RunJob {
            workload: JobWorkload::Benchmark(bench),
            slices,
            banks,
            len,
            seed,
        })
    }

    /// Convenience: runs an inline workload profile.
    ///
    /// # Errors
    ///
    /// As [`Client::run`].
    pub fn run_profile(
        &mut self,
        profile: WorkloadProfile,
        slices: usize,
        banks: usize,
        len: usize,
        seed: u64,
    ) -> std::io::Result<Json> {
        self.run(RunJob {
            workload: JobWorkload::Profile(Box::new(profile)),
            slices,
            banks,
            len,
            seed,
        })
    }

    /// Submits a sweep and collects its streamed lines: every
    /// `sweep_point` plus the trailing `sweep_done` (or a single error
    /// line).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn sweep(
        &mut self,
        benchmark: Benchmark,
        len: usize,
        seed: u64,
    ) -> std::io::Result<Vec<Json>> {
        self.send(&Envelope {
            id: None,
            req: Request::Sweep(SweepJob {
                benchmark,
                len,
                seed,
            }),
        })?;
        let mut lines = Vec::new();
        loop {
            let v = self.recv()?;
            let done = v.get("ok").and_then(Json::as_bool) != Some(true)
                || v.get("type").and_then(Json::as_str) == Some("sweep_done");
            lines.push(v);
            if done {
                return Ok(lines);
            }
        }
    }

    /// Submits a datacenter-scenario job and waits for its result line;
    /// `mode` of `None` runs both billing modes and reports the
    /// comparison.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn dc(
        &mut self,
        scenario: Scenario,
        seed: u64,
        mode: Option<BillingMode>,
    ) -> std::io::Result<Json> {
        self.call(&Envelope {
            id: None,
            req: Request::Dc(Box::new(DcJob {
                scenario,
                seed,
                mode,
            })),
        })
    }

    /// Submits a market evaluation and waits for its result line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn market(
        &mut self,
        benchmark: Benchmark,
        utility: UtilityFn,
        market: Market,
        budget: f64,
        len: usize,
        seed: u64,
    ) -> std::io::Result<Json> {
        self.call(&Envelope {
            id: None,
            req: Request::Market(MarketJob {
                benchmark,
                utility,
                market,
                budget,
                len,
                seed,
            }),
        })
    }
}
