//! A blocking client for the ssimd protocol.
//!
//! One `Client` wraps one TCP connection. Requests are answered in order,
//! so the typed helpers below send a request and read exactly the reply
//! lines it produces. For pipelining, use [`Client::send`] /
//! [`Client::recv`] directly with distinct `id`s.
//!
//! Jobs go through one door: [`Client::submit`] (single reply) or
//! [`Client::submit_all`] (streamed replies, e.g. sweeps).

use crate::protocol::{self, Envelope, Job, Request, ServerError, MIN_PROTO, PROTO_VERSION};
use sharing_json::Json;
use std::io::{BufReader, Error, ErrorKind};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected ssimd client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn bad_data(msg: impl Into<String>) -> Error {
    Error::new(ErrorKind::InvalidData, msg.into())
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Connects with a connect timeout (the first resolved address is
    /// used). Coordinators use this so a dead worker can't stall
    /// registration.
    ///
    /// # Errors
    ///
    /// `InvalidInput` if `addr` resolves to nothing; otherwise propagates
    /// connection errors (including `TimedOut`).
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Client> {
        let sock = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| Error::new(ErrorKind::InvalidInput, "address resolved to nothing"))?;
        let stream = TcpStream::connect_timeout(&sock, timeout)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Bounds every subsequent reply read; `None` blocks forever.
    /// A read that times out surfaces as `WouldBlock`/`TimedOut`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn send(&mut self, env: &Envelope) -> std::io::Result<()> {
        protocol::write_line(&mut self.writer, &env.to_line())
    }

    /// Reads one raw reply line (the exact bytes the server sent, minus
    /// the newline). The coordinator uses this to splice result payloads
    /// byte-identically instead of re-serializing parsed JSON.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` if the server closed the connection.
    pub fn recv_line(&mut self) -> std::io::Result<String> {
        protocol::read_line(&mut self.reader)?
            .ok_or_else(|| Error::new(ErrorKind::UnexpectedEof, "server closed connection"))
    }

    /// Reads one reply line as JSON.
    ///
    /// # Errors
    ///
    /// `UnexpectedEof` if the server closed the connection; `InvalidData`
    /// for non-JSON replies.
    pub fn recv(&mut self) -> std::io::Result<Json> {
        let line = self.recv_line()?;
        Json::parse(&line).map_err(|e| bad_data(e.to_string()))
    }

    /// Sends a request and reads its single reply.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::send`] / [`Client::recv`] errors.
    pub fn call(&mut self, env: &Envelope) -> std::io::Result<Json> {
        self.send(env)?;
        self.recv()
    }

    fn control(&mut self, req: Request) -> std::io::Result<Json> {
        self.call(&Envelope {
            id: None,
            proto: Some(PROTO_VERSION),
            trace: None,
            req,
        })
    }

    /// Negotiates the protocol version: sends `hello` announcing
    /// [`PROTO_VERSION`] and returns the version the server speaks.
    ///
    /// # Errors
    ///
    /// `InvalidData` carrying the server's [`ServerError`] text when the
    /// server rejects this client's version (`version_mismatch`), or when
    /// the advertised window `[min, proto]` doesn't overlap ours. The
    /// coordinator calls this at worker registration so mismatches fail
    /// fast instead of mid-sweep.
    pub fn hello(&mut self) -> std::io::Result<u64> {
        let v = self.control(Request::Hello {
            proto: PROTO_VERSION,
        })?;
        if let Some(err) = ServerError::from_reply(&v) {
            return Err(bad_data(err.to_string()));
        }
        let server_proto = v
            .get("proto")
            .and_then(Json::as_int)
            .ok_or_else(|| bad_data("hello reply missing `proto`"))?;
        let server_min = v.get("min_proto").and_then(Json::as_int).unwrap_or(1);
        let (proto, min) = (server_proto as u64, server_min as u64);
        if min > PROTO_VERSION || proto < MIN_PROTO {
            return Err(bad_data(format!(
                "server speaks protocol {min}..={proto}, this client speaks \
                 {MIN_PROTO}..={PROTO_VERSION}"
            )));
        }
        Ok(proto)
    }

    /// Liveness check; `true` when the server answers `pong`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn ping(&mut self) -> std::io::Result<bool> {
        let v = self.control(Request::Ping)?;
        Ok(v.get("type").and_then(Json::as_str) == Some("pong"))
    }

    /// Fetches the server's metrics snapshot (the `"stats"` object).
    ///
    /// # Errors
    ///
    /// `InvalidData` if the reply carries no stats object.
    pub fn stats(&mut self) -> std::io::Result<Json> {
        let v = self.control(Request::Stats)?;
        v.get("stats")
            .cloned()
            .ok_or_else(|| bad_data("stats reply missing `stats`"))
    }

    /// Fetches the server's metrics as Prometheus text exposition.
    ///
    /// # Errors
    ///
    /// `InvalidData` if the reply carries no metrics text.
    pub fn metrics(&mut self) -> std::io::Result<String> {
        let v = self.control(Request::Metrics)?;
        v.get("metrics")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| bad_data("metrics reply missing `metrics`"))
    }

    /// Requests graceful shutdown; returns the final reply.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn shutdown(&mut self) -> std::io::Result<Json> {
        self.control(Request::Shutdown)
    }

    /// Submits a job and returns its final reply line. For streaming jobs
    /// (sweeps) this is the terminal line only — use
    /// [`Client::submit_all`] to keep the streamed points.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; server-side failures come back as
    /// `{"ok":false,"code":...}` replies, not `Err` — use
    /// [`ServerError::from_reply`] to type them.
    pub fn submit(&mut self, job: Job) -> std::io::Result<Json> {
        let mut lines = self.submit_all(job)?;
        lines.pop().ok_or_else(|| bad_data("job produced no reply"))
    }

    /// Submits a job and collects every reply line it produces: one line
    /// for `run`/`market`/`dc`, 72 `sweep_point` lines plus the trailing
    /// `sweep_done` for `sweep` (or a single error line).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn submit_all(&mut self, job: Job) -> std::io::Result<Vec<Json>> {
        self.submit_all_traced(job, None)
    }

    /// [`Client::submit_all`] with an explicit distributed-trace id
    /// stamped on the envelope; the server correlates every span the job
    /// produces (queue wait, dispatch, remote execution) under this id.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn submit_all_traced(
        &mut self,
        job: Job,
        trace: Option<u64>,
    ) -> std::io::Result<Vec<Json>> {
        self.send(&Envelope {
            id: None,
            proto: Some(PROTO_VERSION),
            trace,
            req: Request::Job(job),
        })?;
        let mut lines = Vec::new();
        loop {
            let v = self.recv()?;
            // `sweep_point` lines stream ahead of `sweep_done`; traced
            // jobs additionally interleave `spans` lines ahead of the
            // final result. Both are kept and neither is terminal.
            let streamed = matches!(
                v.get("type").and_then(Json::as_str),
                Some("sweep_point" | "spans")
            );
            let done = v.get("ok").and_then(Json::as_bool) != Some(true) || !streamed;
            lines.push(v);
            if done {
                return Ok(lines);
            }
        }
    }
}
