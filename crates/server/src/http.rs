//! The HTTP front door: routes `sharing-http` requests onto daemon state.
//!
//! Every route reuses the exact machinery behind the TCP protocol —
//! the same bounded [`crate::queue::JobQueue`] admission, the same
//! worker pool, the same reply lines — so a job submitted over HTTP
//! produces byte-identical results to the same job over TCP. The
//! mapping:
//!
//! | Route                | Answers                                       |
//! |----------------------|-----------------------------------------------|
//! | `GET /health`        | 200 normally, 503 while draining              |
//! | `GET /metrics`       | Prometheus text exposition                    |
//! | `GET /status`        | JSON metrics snapshot plus lifecycle state    |
//! | `POST /jobs`         | submit a protocol envelope, 202 + job id      |
//! | `GET /jobs/<id>`     | JSON poll: pending / done with reply lines    |
//! | `GET /jobs/<id>/raw` | the raw newline-delimited reply lines         |
//!
//! Unknown paths and wrong methods (404/405) and malformed or oversized
//! requests (400/413) are handled by `sharing-http` itself.

use crate::protocol::{Envelope, ErrorCode, Request as ProtoRequest, ServerError};
use crate::queue::PushError;
use crate::server::{metrics_text, Queued, State};
use sharing_http::{HttpConfig, HttpHandle, HttpServer, Request, Response, Router};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Binds the HTTP front door on `addr` and returns its handle.
pub(crate) fn start(addr: &str, state: &Arc<State>) -> std::io::Result<HttpHandle> {
    let health_state = Arc::clone(state);
    let metrics_state = Arc::clone(state);
    let status_state = Arc::clone(state);
    let submit_state = Arc::clone(state);
    let poll_state = Arc::clone(state);
    let router = Router::new()
        .get("/health", move |_req| health(&health_state))
        .get("/metrics", move |_req| {
            Response::new(200)
                .with_header("Content-Type", "text/plain; version=0.0.4")
                .with_body(metrics_text(&metrics_state).into_bytes())
        })
        .get("/status", move |_req| status(&status_state))
        .post("/jobs", move |req| submit_job(&submit_state, req))
        .get("/jobs/*", move |req| poll_job(&poll_state, req));

    HttpServer::start(
        HttpConfig {
            addr: addr.to_string(),
            ..HttpConfig::default()
        },
        router.into_handler(),
    )
}

/// Liveness: 200 while accepting work, 503 once draining has begun, so
/// load balancers stop routing to a daemon that is on its way out.
fn health(state: &State) -> Response {
    if state.draining.load(Ordering::SeqCst) {
        Response::json(503, "{\"ok\":false,\"status\":\"draining\"}")
    } else {
        Response::json(200, "{\"ok\":true,\"status\":\"ok\"}")
    }
}

/// The `stats` snapshot plus lifecycle state, as one JSON object.
fn status(state: &State) -> Response {
    let snap = state
        .metrics
        .snapshot(state.queue.depth(), state.cache.len());
    let draining = state.draining.load(Ordering::SeqCst);
    let pending = state.jobs.pending();
    Response::json(
        200,
        format!(
            "{{\"ok\":true,\"draining\":{draining},\
             \"http_jobs_pending\":{pending},\"stats\":{snap}}}"
        ),
    )
}

/// `POST /jobs`: the body is one protocol envelope, exactly the line a
/// TCP client would send. Control requests (`ping`, `stats`, ...) have
/// dedicated routes and are rejected here; only jobs enter the queue.
fn submit_job(state: &Arc<State>, req: &Request) -> Response {
    let Some(body) = req.body_str() else {
        let err = ServerError::bad_request("request body is not UTF-8");
        return Response::json(400, err.to_line(None));
    };
    let env = match Envelope::parse(body.trim()) {
        Ok(env) => env,
        Err(e) => {
            state.metrics.errors.fetch_add(1, Ordering::Relaxed);
            return Response::json(400, e.to_line(None));
        }
    };
    if !env.proto_supported() {
        state.metrics.errors.fetch_add(1, Ordering::Relaxed);
        let err = ServerError::version_mismatch(env.proto.unwrap_or(0));
        return Response::json(400, err.to_line(env.id));
    }
    let job = match env.req {
        ProtoRequest::Job(job) => job,
        other => {
            let err = ServerError::bad_request(format!(
                "only job requests may be posted to /jobs (got {:?}); \
                 use /health, /status, or /metrics for control requests",
                control_name(&other)
            ));
            return Response::json(400, err.to_line(env.id));
        }
    };
    let kind = job.kind();
    let (tx, rx) = mpsc::channel();
    let queued = Queued {
        id: env.id,
        job,
        trace: env.trace,
        reply: tx,
        enqueued: Instant::now(),
    };
    match state.queue.try_push(queued) {
        Ok(_) => {
            state.metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);
            let id = state.jobs.create(kind);
            let jstate = Arc::clone(state);
            // The collector stands in for the TCP connection thread:
            // it drains the reply channel into the jobs table and marks
            // the entry done when the worker drops the sender.
            let spawned = std::thread::Builder::new()
                .name("ssimd-http-job".into())
                .spawn(move || {
                    for line in rx {
                        jstate.jobs.append(id, line);
                    }
                    jstate.jobs.finish(id);
                });
            if spawned.is_err() {
                let err = ServerError::new(ErrorCode::ShuttingDown, "cannot spawn job collector");
                return Response::json(503, err.to_line(env.id));
            }
            Response::json(
                202,
                format!(
                    "{{\"ok\":true,\"id\":{id},\"kind\":\"{kind}\",\
                     \"status\":\"pending\",\"poll\":\"/jobs/{id}\"}}"
                ),
            )
        }
        Err(e) => {
            state.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            let code = match e {
                PushError::Full { .. } => ErrorCode::QueueFull,
                PushError::Closed => ErrorCode::ShuttingDown,
            };
            let err = ServerError::new(code, e.to_string());
            Response::json(503, err.to_line(env.id))
        }
    }
}

fn control_name(req: &ProtoRequest) -> &'static str {
    match req {
        ProtoRequest::Hello { .. } => "hello",
        ProtoRequest::Ping => "ping",
        ProtoRequest::Stats => "stats",
        ProtoRequest::Metrics => "metrics",
        ProtoRequest::Shutdown => "shutdown",
        ProtoRequest::Job(_) => "job",
    }
}

/// `GET /jobs/<id>` (JSON poll) and `GET /jobs/<id>/raw` (the exact
/// reply bytes the TCP path would have streamed).
fn poll_job(state: &State, req: &Request) -> Response {
    let rest = req.path.strip_prefix("/jobs/").unwrap_or("");
    let (id_part, raw) = match rest.strip_suffix("/raw") {
        Some(stripped) => (stripped, true),
        None => (rest, false),
    };
    let Ok(id) = id_part.parse::<u64>() else {
        return Response::json(404, "{\"ok\":false,\"error\":\"no such job\"}");
    };
    let Some(entry) = state.jobs.get(id) else {
        return Response::json(404, "{\"ok\":false,\"error\":\"no such job\"}");
    };
    if raw {
        if !entry.done {
            return Response::json(
                202,
                format!("{{\"ok\":true,\"id\":{id},\"status\":\"pending\"}}"),
            );
        }
        let mut body = entry.lines.join("\n");
        body.push('\n');
        return Response::new(200)
            .with_body(body.into_bytes())
            .with_header("Content-Type", "application/x-ndjson");
    }
    let status = if entry.done { "done" } else { "pending" };
    // Reply lines are themselves JSON objects, so they splice verbatim
    // into the `lines` array.
    let lines = entry.lines.join(",");
    Response::json(
        200,
        format!(
            "{{\"ok\":true,\"id\":{id},\"kind\":\"{}\",\
             \"status\":\"{status}\",\"lines\":[{lines}]}}",
            entry.kind
        ),
    )
}
