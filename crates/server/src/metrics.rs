//! Server-wide metrics, queryable via the `stats` request.
//!
//! Counters are atomics (lock-free on the hot path); completed-job
//! latencies go to a bounded ring so p50/p99 reflect the recent window
//! without unbounded growth.

use sharing_json::Json;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many recent job latencies the percentile window keeps.
const LATENCY_WINDOW: usize = 1024;

/// Shared server metrics.
#[derive(Debug)]
pub struct Metrics {
    /// Jobs admitted to the queue.
    pub jobs_submitted: AtomicU64,
    /// Jobs fully executed.
    pub jobs_completed: AtomicU64,
    /// Jobs refused by admission control (queue full).
    pub jobs_rejected: AtomicU64,
    /// Requests that failed to parse or execute.
    pub errors: AtomicU64,
    /// Result-cache hits.
    pub cache_hits: AtomicU64,
    /// Result-cache misses.
    pub cache_misses: AtomicU64,
    /// Workers currently executing a job.
    pub busy_workers: AtomicUsize,
    /// Total worker count (fixed at startup).
    pub workers: usize,
    latencies: Mutex<LatencyRing>,
}

#[derive(Debug)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl Metrics {
    /// Fresh metrics for a pool of `workers` workers.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Metrics {
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            busy_workers: AtomicUsize::new(0),
            workers,
            latencies: Mutex::new(LatencyRing {
                samples: Vec::with_capacity(LATENCY_WINDOW),
                next: 0,
            }),
        }
    }

    /// Records one completed job's latency in microseconds.
    pub fn record_latency_us(&self, us: u64) {
        let mut ring = self.latencies.lock().expect("latency lock");
        if ring.samples.len() < LATENCY_WINDOW {
            ring.samples.push(us);
        } else {
            let i = ring.next;
            ring.samples[i] = us;
        }
        ring.next = (ring.next + 1) % LATENCY_WINDOW;
    }

    /// The (p50, p99) of the recent latency window, in microseconds.
    /// Zeros until the first job completes.
    #[must_use]
    pub fn latency_percentiles_us(&self) -> (u64, u64) {
        let ring = self.latencies.lock().expect("latency lock");
        if ring.samples.is_empty() {
            return (0, 0);
        }
        let mut sorted = ring.samples.clone();
        sorted.sort_unstable();
        let pick = |p: f64| {
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[idx]
        };
        (pick(0.50), pick(0.99))
    }

    /// The cache hit rate in `[0, 1]` (zero before any lookup).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let h = self.cache_hits.load(Ordering::Relaxed) as f64;
        let m = self.cache_misses.load(Ordering::Relaxed) as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// A JSON snapshot for the `stats` reply. `queue_depth` and
    /// `cache_entries` are gauges owned elsewhere, passed in.
    #[must_use]
    pub fn snapshot(&self, queue_depth: usize, cache_entries: usize) -> Json {
        let (p50, p99) = self.latency_percentiles_us();
        let busy = self.busy_workers.load(Ordering::Relaxed);
        Json::obj(vec![
            ("queue_depth", Json::Int(queue_depth as i128)),
            (
                "jobs_submitted",
                Json::Int(i128::from(self.jobs_submitted.load(Ordering::Relaxed))),
            ),
            (
                "jobs_completed",
                Json::Int(i128::from(self.jobs_completed.load(Ordering::Relaxed))),
            ),
            (
                "jobs_rejected",
                Json::Int(i128::from(self.jobs_rejected.load(Ordering::Relaxed))),
            ),
            (
                "errors",
                Json::Int(i128::from(self.errors.load(Ordering::Relaxed))),
            ),
            (
                "cache_hits",
                Json::Int(i128::from(self.cache_hits.load(Ordering::Relaxed))),
            ),
            (
                "cache_misses",
                Json::Int(i128::from(self.cache_misses.load(Ordering::Relaxed))),
            ),
            ("cache_hit_rate", Json::Float(self.cache_hit_rate())),
            ("cache_entries", Json::Int(cache_entries as i128)),
            ("workers", Json::Int(self.workers as i128)),
            ("busy_workers", Json::Int(busy as i128)),
            (
                "worker_utilization",
                Json::Float(if self.workers == 0 {
                    0.0
                } else {
                    busy as f64 / self.workers as f64
                }),
            ),
            ("latency_p50_us", Json::Int(i128::from(p50))),
            ("latency_p99_us", Json::Int(i128::from(p99))),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_empty_window_are_zero() {
        assert_eq!(Metrics::new(2).latency_percentiles_us(), (0, 0));
    }

    #[test]
    fn percentiles_order_correctly() {
        let m = Metrics::new(2);
        for us in 1..=100 {
            m.record_latency_us(us);
        }
        let (p50, p99) = m.latency_percentiles_us();
        assert!((49..=51).contains(&p50), "p50 {p50}");
        assert!((98..=100).contains(&p99), "p99 {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn latency_window_is_bounded() {
        let m = Metrics::new(1);
        for us in 0..5_000 {
            m.record_latency_us(us);
        }
        // Window holds the most recent LATENCY_WINDOW samples only.
        let (p50, _) = m.latency_percentiles_us();
        assert!(p50 >= 5_000 - LATENCY_WINDOW as u64, "old samples evicted");
    }

    #[test]
    fn hit_rate_tracks_counters() {
        let m = Metrics::new(1);
        assert_eq!(m.cache_hit_rate(), 0.0);
        m.cache_hits.store(3, Ordering::Relaxed);
        m.cache_misses.store(1, Ordering::Relaxed);
        assert!((m.cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn snapshot_is_well_formed() {
        let m = Metrics::new(4);
        m.record_latency_us(10);
        let v = m.snapshot(3, 7);
        assert_eq!(v.get("queue_depth").and_then(Json::as_int), Some(3));
        assert_eq!(v.get("cache_entries").and_then(Json::as_int), Some(7));
        assert_eq!(v.get("workers").and_then(Json::as_int), Some(4));
        assert!(v.get("worker_utilization").and_then(Json::as_f64).is_some());
    }
}
