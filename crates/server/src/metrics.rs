//! Server-wide metrics, queryable via the `stats` and `metrics` requests.
//!
//! Counters are atomics (lock-free on the hot path); completed-job
//! latencies land twice: in bounded rings — queue wait and execute
//! time are tracked separately — whose windowed p50/p99 feed the JSON
//! `stats` reply, and in fixed log-scale [`Histogram`]s that back the
//! Prometheus export (`*_bucket`/`*_sum`/`*_count` families a scraper
//! can aggregate across daemons). Percentile reads snapshot the ring
//! under the lock and sort *outside* it, so a `stats` poll never
//! stalls the workers recording completions.

use sharing_json::Json;
use sharing_obs::{percentile, Histogram, PromWriter};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How many recent job latencies each percentile window keeps.
const LATENCY_WINDOW: usize = 1024;

/// The unit of work a completed job counts as, for per-kind accounting.
/// A streamed sweep completes as 72 `SweepPoint` units, not one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobClass {
    /// One single-configuration simulation (`run`).
    Simulate,
    /// One shape within a grid sweep (`sweep` streams 72 of these).
    SweepPoint,
    /// One market evaluation (`market`).
    Market,
    /// One datacenter scenario (`dc`).
    Dc,
}

impl JobClass {
    /// Every class, in exposition order.
    pub const ALL: [JobClass; 4] = [
        JobClass::Simulate,
        JobClass::SweepPoint,
        JobClass::Market,
        JobClass::Dc,
    ];

    /// The wire/exposition name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobClass::Simulate => "simulate",
            JobClass::SweepPoint => "sweep_point",
            JobClass::Market => "market",
            JobClass::Dc => "dc",
        }
    }

    fn index(self) -> usize {
        match self {
            JobClass::Simulate => 0,
            JobClass::SweepPoint => 1,
            JobClass::Market => 2,
            JobClass::Dc => 3,
        }
    }
}

/// Shared server metrics.
#[derive(Debug)]
pub struct Metrics {
    /// Jobs admitted to the queue.
    pub jobs_submitted: AtomicU64,
    /// Jobs fully executed.
    pub jobs_completed: AtomicU64,
    /// Jobs refused by admission control (queue full).
    pub jobs_rejected: AtomicU64,
    /// Requests that failed to parse or execute.
    pub errors: AtomicU64,
    /// Result-cache hits.
    pub cache_hits: AtomicU64,
    /// Result-cache misses.
    pub cache_misses: AtomicU64,
    /// Workers currently executing a job.
    pub busy_workers: AtomicUsize,
    /// Total worker count (fixed at startup).
    pub workers: usize,
    /// Jobs executed on remote workers (coordinator mode).
    pub dispatched_jobs: AtomicU64,
    /// Dispatch retries: re-sends after a failed or refused exchange,
    /// including points re-queued when a worker died mid-grid.
    pub dispatch_retries: AtomicU64,
    /// Remote workers registered at startup (0 in single-node mode).
    pub workers_configured: AtomicUsize,
    /// Remote workers currently passing health probes.
    pub workers_healthy: AtomicUsize,
    /// When this daemon's metrics came up; backs `ssimd_uptime_seconds`.
    started: Instant,
    /// Work units completed, indexed by [`JobClass::index`].
    completed_by_kind: [AtomicU64; 4],
    /// End-to-end (queue wait + execute) latency window.
    latencies: Mutex<LatencyRing>,
    /// Time-in-queue window.
    queue_waits: Mutex<LatencyRing>,
    /// Execute-time window.
    execs: Mutex<LatencyRing>,
    /// End-to-end latency distribution (Prometheus export path).
    latency_hist: Histogram,
    /// Time-in-queue distribution.
    queue_wait_hist: Histogram,
    /// Execute-time distribution.
    exec_hist: Histogram,
}

#[derive(Debug)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl LatencyRing {
    fn new() -> Self {
        LatencyRing {
            samples: Vec::with_capacity(LATENCY_WINDOW),
            next: 0,
        }
    }

    fn push(&mut self, us: u64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(us);
        } else {
            let i = self.next;
            self.samples[i] = us;
        }
        self.next = (self.next + 1) % LATENCY_WINDOW;
    }
}

/// Snapshots the ring under the lock, then sorts and ranks outside it.
fn ring_percentiles(ring: &Mutex<LatencyRing>) -> (u64, u64) {
    let mut samples = ring.lock().expect("latency lock").samples.clone();
    if samples.is_empty() {
        return (0, 0);
    }
    samples.sort_unstable();
    (percentile(&samples, 0.50), percentile(&samples, 0.99))
}

impl Metrics {
    /// Fresh metrics for a pool of `workers` workers.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Metrics {
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            busy_workers: AtomicUsize::new(0),
            workers,
            dispatched_jobs: AtomicU64::new(0),
            dispatch_retries: AtomicU64::new(0),
            workers_configured: AtomicUsize::new(0),
            workers_healthy: AtomicUsize::new(0),
            started: Instant::now(),
            completed_by_kind: Default::default(),
            latencies: Mutex::new(LatencyRing::new()),
            queue_waits: Mutex::new(LatencyRing::new()),
            execs: Mutex::new(LatencyRing::new()),
            latency_hist: Histogram::log_scale_us(),
            queue_wait_hist: Histogram::log_scale_us(),
            exec_hist: Histogram::log_scale_us(),
        }
    }

    /// Records one completed job: its class (scaled by `units` — a sweep
    /// completes 72 `SweepPoint` units), its time in queue, and its
    /// execute time. End-to-end latency is their sum.
    pub fn record_job(&self, class: JobClass, units: u64, queue_wait_us: u64, exec_us: u64) {
        self.completed_by_kind[class.index()].fetch_add(units, Ordering::Relaxed);
        self.queue_waits
            .lock()
            .expect("latency lock")
            .push(queue_wait_us);
        self.queue_wait_hist.observe(queue_wait_us);
        self.execs.lock().expect("latency lock").push(exec_us);
        self.exec_hist.observe(exec_us);
        self.record_latency_us(queue_wait_us.saturating_add(exec_us));
    }

    /// Records one end-to-end job latency in microseconds (window and
    /// histogram).
    pub fn record_latency_us(&self, us: u64) {
        self.latencies.lock().expect("latency lock").push(us);
        self.latency_hist.observe(us);
    }

    /// Work units completed for one class.
    #[must_use]
    pub fn completed_for(&self, class: JobClass) -> u64 {
        self.completed_by_kind[class.index()].load(Ordering::Relaxed)
    }

    /// The (p50, p99) of the recent end-to-end latency window, in
    /// microseconds. Zeros until the first job completes.
    #[must_use]
    pub fn latency_percentiles_us(&self) -> (u64, u64) {
        ring_percentiles(&self.latencies)
    }

    /// The (p50, p99) of the recent queue-wait window, in microseconds.
    #[must_use]
    pub fn queue_wait_percentiles_us(&self) -> (u64, u64) {
        ring_percentiles(&self.queue_waits)
    }

    /// The (p50, p99) of the recent execute-time window, in microseconds.
    #[must_use]
    pub fn exec_percentiles_us(&self) -> (u64, u64) {
        ring_percentiles(&self.execs)
    }

    /// The cache hit rate in `[0, 1]` (zero before any lookup).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let h = self.cache_hits.load(Ordering::Relaxed) as f64;
        let m = self.cache_misses.load(Ordering::Relaxed) as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// A JSON snapshot for the `stats` reply. `queue_depth` and
    /// `cache_entries` are gauges owned elsewhere, passed in.
    #[must_use]
    pub fn snapshot(&self, queue_depth: usize, cache_entries: usize) -> Json {
        let (p50, p99) = self.latency_percentiles_us();
        let (qw50, qw99) = self.queue_wait_percentiles_us();
        let (ex50, ex99) = self.exec_percentiles_us();
        let busy = self.busy_workers.load(Ordering::Relaxed);
        let by_kind = JobClass::ALL
            .iter()
            .map(|&c| (c.name(), Json::Int(i128::from(self.completed_for(c)))))
            .collect();
        Json::obj(vec![
            ("queue_depth", Json::Int(queue_depth as i128)),
            (
                "jobs_submitted",
                Json::Int(i128::from(self.jobs_submitted.load(Ordering::Relaxed))),
            ),
            (
                "jobs_completed",
                Json::Int(i128::from(self.jobs_completed.load(Ordering::Relaxed))),
            ),
            ("completed_by_kind", Json::obj(by_kind)),
            (
                "jobs_rejected",
                Json::Int(i128::from(self.jobs_rejected.load(Ordering::Relaxed))),
            ),
            (
                "errors",
                Json::Int(i128::from(self.errors.load(Ordering::Relaxed))),
            ),
            (
                "cache_hits",
                Json::Int(i128::from(self.cache_hits.load(Ordering::Relaxed))),
            ),
            (
                "cache_misses",
                Json::Int(i128::from(self.cache_misses.load(Ordering::Relaxed))),
            ),
            ("cache_hit_rate", Json::Float(self.cache_hit_rate())),
            ("cache_entries", Json::Int(cache_entries as i128)),
            ("workers", Json::Int(self.workers as i128)),
            ("busy_workers", Json::Int(busy as i128)),
            (
                "dispatched_jobs",
                Json::Int(i128::from(self.dispatched_jobs.load(Ordering::Relaxed))),
            ),
            (
                "dispatch_retries",
                Json::Int(i128::from(self.dispatch_retries.load(Ordering::Relaxed))),
            ),
            (
                "workers_configured",
                Json::Int(self.workers_configured.load(Ordering::Relaxed) as i128),
            ),
            (
                "workers_healthy",
                Json::Int(self.workers_healthy.load(Ordering::Relaxed) as i128),
            ),
            (
                "worker_utilization",
                Json::Float(if self.workers == 0 {
                    0.0
                } else {
                    busy as f64 / self.workers as f64
                }),
            ),
            ("latency_p50_us", Json::Int(i128::from(p50))),
            ("latency_p99_us", Json::Int(i128::from(p99))),
            ("queue_wait_p50_us", Json::Int(i128::from(qw50))),
            ("queue_wait_p99_us", Json::Int(i128::from(qw99))),
            ("exec_p50_us", Json::Int(i128::from(ex50))),
            ("exec_p99_us", Json::Int(i128::from(ex99))),
        ])
    }

    /// The Prometheus text exposition (format 0.0.4) of every metric,
    /// for the `metrics` request and scrape endpoints.
    #[must_use]
    pub fn prometheus_text(
        &self,
        queue_depth: usize,
        queue_capacity: usize,
        cache_entries: usize,
    ) -> String {
        let by_kind: Vec<(&str, u64)> = JobClass::ALL
            .iter()
            .map(|&c| (c.name(), self.completed_for(c)))
            .collect();
        let mut w = PromWriter::new();
        // The info-gauge idiom: identity in the labels, value pinned at
        // 1, so dashboards can join any family against the build that
        // produced it.
        w.info(
            "ssimd_build_info",
            "Build identity of this daemon (constant 1).",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                ("features", sharing_core::profile::compiled_features()),
            ],
        );
        w.gauge_f64(
            "ssimd_uptime_seconds",
            "Seconds since this daemon came up.",
            self.started.elapsed().as_secs_f64(),
        );
        w.counter(
            "ssimd_jobs_submitted_total",
            "Jobs admitted to the queue.",
            self.jobs_submitted.load(Ordering::Relaxed),
        );
        w.counter_family(
            "ssimd_jobs_completed_total",
            "Work units completed, by job kind (a sweep counts one unit per shape).",
            "kind",
            &by_kind,
        );
        w.counter(
            "ssimd_jobs_rejected_total",
            "Jobs refused by admission control.",
            self.jobs_rejected.load(Ordering::Relaxed),
        );
        w.counter(
            "ssimd_errors_total",
            "Requests that failed to parse or execute.",
            self.errors.load(Ordering::Relaxed),
        );
        w.counter_family(
            "ssimd_cache_lookups_total",
            "Result-cache lookups, by outcome.",
            "outcome",
            &[
                ("hit", self.cache_hits.load(Ordering::Relaxed)),
                ("miss", self.cache_misses.load(Ordering::Relaxed)),
            ],
        );
        w.gauge_i64(
            "ssimd_queue_depth",
            "Jobs waiting in the bounded queue.",
            queue_depth as i64,
        );
        w.gauge_i64(
            "ssimd_queue_capacity",
            "Bounded queue capacity (admission-control threshold).",
            queue_capacity as i64,
        );
        w.gauge_i64(
            "ssimd_cache_entries",
            "Entries resident in the result cache.",
            cache_entries as i64,
        );
        w.gauge_i64("ssimd_workers", "Worker pool size.", self.workers as i64);
        w.gauge_i64(
            "ssimd_busy_workers",
            "Workers currently executing a job.",
            self.busy_workers.load(Ordering::Relaxed) as i64,
        );
        w.counter(
            "ssimd_dispatched_total",
            "Jobs executed on remote workers (coordinator mode).",
            self.dispatched_jobs.load(Ordering::Relaxed),
        );
        w.counter(
            "ssimd_dispatch_retries_total",
            "Dispatch retries, including points re-queued off a dead worker.",
            self.dispatch_retries.load(Ordering::Relaxed),
        );
        w.gauge_i64(
            "ssimd_workers_configured",
            "Remote workers registered at startup (0 in single-node mode).",
            self.workers_configured.load(Ordering::Relaxed) as i64,
        );
        w.gauge_i64(
            "ssimd_workers_healthy",
            "Remote workers currently passing health probes.",
            self.workers_healthy.load(Ordering::Relaxed) as i64,
        );
        // Histograms, not summaries: a scraper can aggregate buckets
        // across daemons and derive any quantile, where pre-computed
        // p50/p99 (still in the JSON `stats` reply) cannot be merged.
        w.histogram(
            "ssimd_queue_wait_us",
            "Time jobs spent queued before a worker picked them up.",
            &self.queue_wait_hist,
        );
        w.histogram(
            "ssimd_exec_us",
            "Time workers spent executing jobs.",
            &self.exec_hist,
        );
        w.histogram(
            "ssimd_latency_us",
            "End-to-end job latency (queue wait + execute).",
            &self.latency_hist,
        );
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_empty_window_are_zero() {
        assert_eq!(Metrics::new(2).latency_percentiles_us(), (0, 0));
        assert_eq!(Metrics::new(2).queue_wait_percentiles_us(), (0, 0));
        assert_eq!(Metrics::new(2).exec_percentiles_us(), (0, 0));
    }

    #[test]
    fn percentiles_order_correctly() {
        let m = Metrics::new(2);
        for us in 1..=100 {
            m.record_latency_us(us);
        }
        let (p50, p99) = m.latency_percentiles_us();
        assert!((49..=51).contains(&p50), "p50 {p50}");
        assert!((98..=100).contains(&p99), "p99 {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn latency_window_is_bounded() {
        let m = Metrics::new(1);
        for us in 0..5_000 {
            m.record_latency_us(us);
        }
        // Window holds the most recent LATENCY_WINDOW samples only.
        let (p50, _) = m.latency_percentiles_us();
        assert!(p50 >= 5_000 - LATENCY_WINDOW as u64, "old samples evicted");
    }

    #[test]
    fn record_job_splits_wait_and_exec() {
        let m = Metrics::new(1);
        for _ in 0..10 {
            m.record_job(JobClass::Simulate, 1, 100, 900);
        }
        m.record_job(JobClass::SweepPoint, 72, 50, 400);
        m.record_job(JobClass::Dc, 1, 7, 3);
        assert_eq!(m.completed_for(JobClass::Simulate), 10);
        assert_eq!(m.completed_for(JobClass::SweepPoint), 72);
        assert_eq!(m.completed_for(JobClass::Market), 0);
        assert_eq!(m.completed_for(JobClass::Dc), 1);
        let (qw50, _) = m.queue_wait_percentiles_us();
        let (ex50, _) = m.exec_percentiles_us();
        let (p50, _) = m.latency_percentiles_us();
        assert_eq!(qw50, 100);
        assert_eq!(ex50, 900);
        assert_eq!(p50, 1000, "end-to-end = wait + exec");
    }

    #[test]
    fn hit_rate_tracks_counters() {
        let m = Metrics::new(1);
        assert_eq!(m.cache_hit_rate(), 0.0);
        m.cache_hits.store(3, Ordering::Relaxed);
        m.cache_misses.store(1, Ordering::Relaxed);
        assert!((m.cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn snapshot_is_well_formed() {
        let m = Metrics::new(4);
        m.record_job(JobClass::Market, 1, 4, 6);
        let v = m.snapshot(3, 7);
        assert_eq!(v.get("queue_depth").and_then(Json::as_int), Some(3));
        assert_eq!(v.get("cache_entries").and_then(Json::as_int), Some(7));
        assert_eq!(v.get("workers").and_then(Json::as_int), Some(4));
        assert!(v.get("worker_utilization").and_then(Json::as_f64).is_some());
        assert_eq!(v.get("queue_wait_p50_us").and_then(Json::as_int), Some(4));
        assert_eq!(v.get("exec_p99_us").and_then(Json::as_int), Some(6));
        let by_kind = v.get("completed_by_kind").expect("kind breakdown");
        assert_eq!(by_kind.get("market").and_then(Json::as_int), Some(1));
        assert_eq!(by_kind.get("simulate").and_then(Json::as_int), Some(0));
    }

    #[test]
    fn prometheus_text_exposes_required_families() {
        let m = Metrics::new(2);
        m.jobs_submitted.store(5, Ordering::Relaxed);
        m.jobs_completed.store(5, Ordering::Relaxed);
        m.record_job(JobClass::Simulate, 1, 120, 880);
        let text = m.prometheus_text(2, 64, 9);
        assert!(text.contains("# TYPE ssimd_build_info gauge"));
        assert!(text.contains("ssimd_build_info{version=\"") && text.contains("features=\""));
        assert!(text.contains("# TYPE ssimd_uptime_seconds gauge"));
        assert!(text.contains("ssimd_queue_capacity 64"));
        assert!(text.contains("# TYPE ssimd_jobs_completed_total counter"));
        assert!(text.contains("ssimd_jobs_completed_total{kind=\"simulate\"} 1"));
        assert!(text.contains("ssimd_jobs_completed_total{kind=\"sweep_point\"} 0"));
        assert!(text.contains("# TYPE ssimd_queue_wait_us histogram"));
        // 120µs lands in the le="200" bucket of the 1-2-5 log scale.
        assert!(text.contains("ssimd_queue_wait_us_bucket{le=\"200\"} 1"));
        assert!(text.contains("ssimd_queue_wait_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("ssimd_queue_wait_us_count 1"));
        assert!(text.contains("ssimd_queue_wait_us_sum 120"));
        assert!(text.contains("# TYPE ssimd_exec_us histogram"));
        assert!(text.contains("ssimd_exec_us_bucket{le=\"1000\"} 1"));
        assert!(text.contains("# TYPE ssimd_latency_us histogram"));
        // 120 + 880 = 1000µs end to end: exactly on the le="1000" bound.
        assert!(text.contains("ssimd_latency_us_bucket{le=\"1000\"} 1"));
        assert!(text.contains("ssimd_latency_us_sum 1000"));
        assert!(text.contains("ssimd_queue_depth 2"));
        assert!(text.contains("ssimd_cache_entries 9"));
        assert!(text.contains("ssimd_cache_lookups_total{outcome=\"hit\"} 0"));
        assert!(text.contains("# TYPE ssimd_dispatch_retries_total counter"));
        assert!(text.contains("ssimd_dispatched_total 0"));
        assert!(text.contains("ssimd_workers_configured 0"));
        assert!(text.contains("ssimd_workers_healthy 0"));
    }

    #[test]
    fn dispatch_metrics_land_in_snapshot_and_prometheus() {
        let m = Metrics::new(2);
        m.dispatched_jobs.store(40, Ordering::Relaxed);
        m.dispatch_retries.store(3, Ordering::Relaxed);
        m.workers_configured.store(2, Ordering::Relaxed);
        m.workers_healthy.store(1, Ordering::Relaxed);
        let snap = m.snapshot(0, 0);
        assert_eq!(snap.get("dispatched_jobs").and_then(Json::as_int), Some(40));
        assert_eq!(snap.get("dispatch_retries").and_then(Json::as_int), Some(3));
        assert_eq!(
            snap.get("workers_configured").and_then(Json::as_int),
            Some(2)
        );
        assert_eq!(snap.get("workers_healthy").and_then(Json::as_int), Some(1));
        let text = m.prometheus_text(0, 0, 0);
        assert!(text.contains("ssimd_dispatched_total 40"));
        assert!(text.contains("ssimd_dispatch_retries_total 3"));
        assert!(text.contains("ssimd_workers_configured 2"));
        assert!(text.contains("ssimd_workers_healthy 1"));
    }

    #[test]
    fn snapshots_stay_consistent_under_concurrent_recording() {
        // 8 threads hammer the metrics while the main thread snapshots;
        // nothing should tear, panic, or go backwards.
        let m = std::sync::Arc::new(Metrics::new(8));
        let mut threads = Vec::new();
        for t in 0..8u64 {
            let m = std::sync::Arc::clone(&m);
            threads.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    m.jobs_submitted.fetch_add(1, Ordering::Relaxed);
                    let class = JobClass::ALL[(t as usize + i as usize) % 4];
                    m.record_job(class, 1, i % 97, i % 31);
                    m.jobs_completed.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        let mut last_completed = 0i128;
        for _ in 0..200 {
            let snap = m.snapshot(1, 1);
            let completed = snap.get("jobs_completed").and_then(Json::as_int).unwrap();
            assert!(
                completed >= last_completed,
                "completed must not go backwards"
            );
            last_completed = completed;
            let _ = m.prometheus_text(1, 1, 1);
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.jobs_completed.load(Ordering::Relaxed), 16_000);
        let total: u64 = JobClass::ALL.iter().map(|&c| m.completed_for(c)).sum();
        assert_eq!(total, 16_000, "every unit lands in exactly one kind");
        let (qw50, qw99) = m.queue_wait_percentiles_us();
        assert!(qw50 <= qw99);
        assert!(qw99 <= 96);
    }
}
