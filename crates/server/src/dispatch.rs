//! Multi-node dispatch: the coordinator's pool of remote workers.
//!
//! ```text
//!  coordinator ssimd ──Client──▶ worker ssimd (same protocol, same sim)
//!        │                          ▲
//!        ├── health pings ──────────┤   fresh connection per probe
//!        └── job dispatch ──────────┘   persistent connection per worker
//! ```
//!
//! A [`WorkerPool`] holds one persistent connection per remote worker
//! daemon plus a background health thread that pings every worker on an
//! interval over *fresh* connections (a draining daemon still answers
//! pings on established connections, so only a new connect detects that
//! it stopped accepting). Jobs dispatch to healthy workers with a
//! per-job read timeout, bounded retries with exponential backoff, and
//! re-queue onto another healthy worker when one dies mid-job.
//!
//! Workers run the same deterministic simulator, and result payloads are
//! spliced out of the worker's reply *verbatim* (never re-serialized),
//! so coordinator results are byte-identical to single-node execution.
//!
//! Registration is strict: every listed worker must accept a connection
//! and pass [`Client::hello`] version negotiation, so a mismatched or
//! dead worker fails the coordinator's startup instead of a sweep.

use crate::client::Client;
use crate::metrics::Metrics;
use crate::protocol::{Envelope, ErrorCode, Job, Request, RunJob, ServerError, PROTO_VERSION};
use sharing_chaos::IoFault;
use sharing_json::Json;
use sharing_obs::{PromWriter, SpanEvent, TraceBuffer};
use sharing_trace::Rng64;
use std::collections::VecDeque;
use std::io::{Error, ErrorKind};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Trace tracks for dispatch spans start here, clear of the local worker
/// pool's per-thread tracks (one per remote worker: `BASE + index`).
const DISPATCH_TRACK_BASE: u64 = 1000;

/// Trace tracks for *relayed* worker spans — execution spans a worker
/// returned with its reply — one track per remote worker, clear of the
/// dispatch tracks above.
const WORKER_TRACK_BASE: u64 = 2000;

/// Hard cap on `"spans"` reply lines accepted per exchange; a worker
/// that streams more is treated as desynced.
const MAX_SPAN_LINES: usize = 64;

/// Tunables for the dispatch layer.
#[derive(Clone, Debug)]
pub struct DispatchOpts {
    /// Per-job reply timeout on worker connections.
    pub job_timeout: Duration,
    /// Extra attempts after a failed dispatch (0 = try once).
    pub retries: u32,
    /// Health-ping cadence.
    pub ping_interval: Duration,
    /// First retry backoff; doubles per attempt, jittered by
    /// `backoff_seed`.
    pub backoff_base: Duration,
    /// Connect timeout for registration, reconnects, and health probes.
    pub connect_timeout: Duration,
    /// Seed for retry-backoff jitter. Each delay is the exponential
    /// step scaled into `[50%, 100%]` by an `Rng64` draw that is pure
    /// in `(backoff_seed, attempt, draw index)`, so chaos replays see
    /// the same delays instead of clock-dependent randomness.
    pub backoff_seed: u64,
    /// Hard cap on the total time one job may spend in retry backoff;
    /// once the next delay would cross it, the job stops retrying and
    /// surfaces its last error.
    pub max_retry_time: Duration,
}

impl Default for DispatchOpts {
    fn default() -> Self {
        DispatchOpts {
            job_timeout: Duration::from_secs(30),
            retries: 3,
            ping_interval: Duration::from_secs(2),
            backoff_base: Duration::from_millis(50),
            connect_timeout: Duration::from_secs(2),
            backoff_seed: 2014,
            max_retry_time: Duration::from_secs(60),
        }
    }
}

/// One remote worker daemon: its address, the persistent job connection,
/// and health/accounting state.
struct RemoteWorker {
    addr: String,
    index: usize,
    /// The persistent job connection; `None` until (re)connected. Held
    /// locked for a whole request/reply exchange, which also serializes
    /// jobs per worker (the wire protocol answers in order).
    conn: Mutex<Option<Client>>,
    healthy: AtomicBool,
    dispatched: AtomicU64,
    failures: AtomicU64,
}

impl RemoteWorker {
    /// Marks the worker unusable and drops its connection; the health
    /// thread will re-admit it once a fresh ping succeeds.
    fn mark_broken(&self) {
        self.healthy.store(false, Ordering::SeqCst);
        *self.conn.lock().expect("worker conn lock") = None;
    }
}

/// How one dispatch attempt failed.
enum TryError {
    /// The worker answered but can't take work right now (`queue_full`);
    /// its connection is still good — back off and retry.
    Busy(ServerError),
    /// The connection is gone or the worker is draining; give the job to
    /// another worker.
    Broken(ServerError),
    /// The job itself is bad (`exec_failed`, `bad_request`, …); no
    /// worker will do better, propagate to the client.
    Fatal(ServerError),
}

/// Shared state of one in-flight grid fan-out.
struct GridState {
    /// Per-point results; `Some` once resolved (payload, was-cached).
    results: Vec<Option<(String, bool)>>,
    /// Indices not yet claimed by a worker thread.
    pending: VecDeque<usize>,
    /// Points still unresolved (claimed or pending).
    remaining: usize,
    /// Worker threads still running.
    live_threads: usize,
    /// First unrecoverable failure; stops everything.
    fatal: Option<ServerError>,
    /// Set when the client disconnected; stops everything quietly.
    cancelled: bool,
}

/// The coordinator's pool of remote workers.
pub struct WorkerPool {
    workers: Vec<Arc<RemoteWorker>>,
    opts: DispatchOpts,
    metrics: Arc<Metrics>,
    closed: Arc<AtomicBool>,
    next: AtomicUsize,
    /// Jitter draws consumed so far; each backoff sleep takes the next
    /// index so concurrent retries spread instead of thundering.
    backoff_draws: AtomicU64,
    health_thread: Mutex<Option<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Connects to every worker, negotiates the protocol version with
    /// each ([`Client::hello`]), and starts the health thread.
    ///
    /// # Errors
    ///
    /// Fails if any listed worker is unreachable or speaks an
    /// incompatible protocol version — a coordinator with a bad roster
    /// should not come up.
    pub fn connect(
        addrs: &[String],
        opts: DispatchOpts,
        metrics: Arc<Metrics>,
    ) -> std::io::Result<Arc<WorkerPool>> {
        if addrs.is_empty() {
            return Err(Error::new(ErrorKind::InvalidInput, "no workers listed"));
        }
        let mut workers = Vec::with_capacity(addrs.len());
        for (index, addr) in addrs.iter().enumerate() {
            let client = register(addr, &opts)
                .map_err(|e| Error::new(e.kind(), format!("worker {addr}: {e}")))?;
            workers.push(Arc::new(RemoteWorker {
                addr: addr.clone(),
                index,
                conn: Mutex::new(Some(client)),
                healthy: AtomicBool::new(true),
                dispatched: AtomicU64::new(0),
                failures: AtomicU64::new(0),
            }));
        }
        metrics
            .workers_configured
            .store(workers.len(), Ordering::SeqCst);
        metrics
            .workers_healthy
            .store(workers.len(), Ordering::SeqCst);
        let pool = Arc::new(WorkerPool {
            workers,
            opts,
            metrics,
            closed: Arc::new(AtomicBool::new(false)),
            next: AtomicUsize::new(0),
            backoff_draws: AtomicU64::new(0),
            health_thread: Mutex::new(None),
        });
        let hpool = Arc::clone(&pool);
        let handle = std::thread::Builder::new()
            .name("ssimd-health".into())
            .spawn(move || health_loop(&hpool))
            .expect("spawn health thread");
        *pool.health_thread.lock().expect("health handle lock") = Some(handle);
        Ok(pool)
    }

    /// Worker addresses, in registration order.
    #[must_use]
    pub fn worker_addrs(&self) -> Vec<String> {
        self.workers.iter().map(|w| w.addr.clone()).collect()
    }

    /// Workers currently marked healthy.
    #[must_use]
    pub fn healthy_count(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.healthy.load(Ordering::SeqCst))
            .count()
    }

    /// Stops the health thread. Idempotent; called on coordinator
    /// shutdown.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        if let Some(t) = self
            .health_thread
            .lock()
            .expect("health handle lock")
            .take()
        {
            let _ = t.join();
        }
    }

    /// Dispatches one single-reply job (`run` or `dc`) to a healthy
    /// worker and returns its result payload, spliced verbatim from the
    /// worker's reply.
    ///
    /// # Errors
    ///
    /// A fatal [`ServerError`] from the worker propagates as-is (the job
    /// is bad everywhere); transport failures and busy workers retry up
    /// to `opts.retries` times with exponential backoff, then surface as
    /// [`ErrorCode::WorkerUnavailable`].
    ///
    /// With `trace_id` set the worker envelope carries the distributed
    /// trace id: the worker answers with its execution spans ahead of
    /// the result, and those spans land in `trace` on this worker's
    /// relay track.
    pub fn dispatch_one(
        &self,
        job: &Job,
        trace_id: Option<u64>,
        trace: &TraceBuffer,
    ) -> Result<String, ServerError> {
        let expect = match job {
            Job::Run(_) => "result",
            Job::Dc(_) => "dc_result",
            Job::Sweep(_) | Job::Market(_) => {
                // Grid jobs fan out point-by-point; see `dispatch_grid`.
                return Err(ServerError::new(
                    ErrorCode::ExecFailed,
                    "grid jobs dispatch via dispatch_grid",
                ));
            }
        };
        let env = job_envelope(job, trace_id);
        let mut last: Option<ServerError> = None;
        let retry_deadline = Instant::now() + self.opts.max_retry_time;
        for attempt in 0..=self.opts.retries {
            if attempt > 0 {
                let delay = self.backoff_delay(attempt);
                if Instant::now() + delay > retry_deadline {
                    break; // total per-job retry time is capped
                }
                self.metrics
                    .dispatch_retries
                    .fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(delay);
            }
            let Some(worker) = self.pick_worker() else {
                last.get_or_insert_with(|| {
                    ServerError::new(ErrorCode::WorkerUnavailable, "no healthy workers")
                });
                continue;
            };
            match self.try_worker(&worker, &env, expect, trace) {
                Ok(payload) => return Ok(payload),
                Err(TryError::Fatal(e)) => return Err(e),
                Err(TryError::Busy(e)) => last = Some(e),
                Err(TryError::Broken(e)) => {
                    self.note_broken(&worker);
                    last = Some(e);
                }
            }
        }
        Err(unavailable(last))
    }

    /// Fans a grid of independent run jobs out over every healthy
    /// worker, streaming results back **in grid order** through `emit`
    /// (`emit(index, payload, was_cached)`; return `false` to cancel,
    /// e.g. when the requesting client disconnected).
    ///
    /// Cached points are served locally; misses go to a shared work
    /// queue that one thread per healthy worker drains over its
    /// persistent connection, inserting fresh payloads into `cache`.
    /// When a worker dies mid-grid its claimed point is re-queued for
    /// the survivors ([`Metrics::dispatch_retries`] counts each
    /// re-queue). Returns the number of points emitted.
    ///
    /// # Errors
    ///
    /// A fatal worker error propagates; if every worker dies with points
    /// outstanding, [`ErrorCode::WorkerUnavailable`].
    pub fn dispatch_grid(
        &self,
        jobs: &[RunJob],
        cache: &crate::cache::ResultCache,
        trace_id: Option<u64>,
        trace: &TraceBuffer,
        mut emit: impl FnMut(usize, &str, bool) -> bool,
    ) -> Result<u64, ServerError> {
        let n = jobs.len();
        let mut results: Vec<Option<(String, bool)>> = Vec::with_capacity(n);
        let mut pending = VecDeque::new();
        for (i, job) in jobs.iter().enumerate() {
            if let Some(hit) = cache.get(&job.cache_key()) {
                self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                results.push(Some((hit, true)));
            } else {
                self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
                results.push(None);
                pending.push_back(i);
            }
        }
        let remaining = pending.len();
        let threads: Vec<Arc<RemoteWorker>> = self
            .workers
            .iter()
            .filter(|w| w.healthy.load(Ordering::SeqCst))
            .cloned()
            .collect();
        if remaining > 0 && threads.is_empty() {
            return Err(ServerError::new(
                ErrorCode::WorkerUnavailable,
                "no healthy workers",
            ));
        }
        let shared = Mutex::new(GridState {
            results,
            pending,
            remaining,
            live_threads: threads.len(),
            fatal: None,
            cancelled: false,
        });
        let cv = Condvar::new();
        std::thread::scope(|s| {
            for worker in &threads {
                s.spawn(|| self.grid_worker(worker, jobs, cache, trace_id, trace, &shared, &cv));
            }
            // The coordinator thread emits results in grid order as they
            // resolve, so a sweep streams through the coordinator exactly
            // like it streams from a single node.
            let mut emitted = 0u64;
            let mut guard = shared.lock().expect("grid lock");
            while (emitted as usize) < n {
                let next = match guard.results[emitted as usize].take() {
                    Some(point) => point,
                    None => {
                        if guard.fatal.is_some() {
                            return Err(guard.fatal.take().expect("checked"));
                        }
                        guard = cv.wait(guard).expect("grid lock");
                        continue;
                    }
                };
                drop(guard);
                let keep_going = emit(emitted as usize, &next.0, next.1);
                emitted += 1;
                guard = shared.lock().expect("grid lock");
                if !keep_going {
                    guard.cancelled = true;
                    cv.notify_all();
                    return Ok(emitted);
                }
            }
            Ok(emitted)
        })
    }

    /// One grid worker thread: claim a point, execute it on this
    /// worker's connection, publish the result; on a broken worker,
    /// re-queue the claimed point for the survivors and exit.
    #[allow(clippy::too_many_arguments)]
    fn grid_worker(
        &self,
        worker: &RemoteWorker,
        jobs: &[RunJob],
        cache: &crate::cache::ResultCache,
        trace_id: Option<u64>,
        trace: &TraceBuffer,
        shared: &Mutex<GridState>,
        cv: &Condvar,
    ) {
        loop {
            let i = {
                let mut guard = shared.lock().expect("grid lock");
                loop {
                    if guard.fatal.is_some() || guard.cancelled || guard.remaining == 0 {
                        guard.live_threads -= 1;
                        return;
                    }
                    if let Some(i) = guard.pending.pop_front() {
                        break i;
                    }
                    guard = cv.wait(guard).expect("grid lock");
                }
            };
            match self.grid_attempt(worker, &jobs[i], trace_id, trace) {
                Ok(payload) => {
                    cache.insert(&jobs[i].cache_key(), &payload);
                    let mut guard = shared.lock().expect("grid lock");
                    guard.results[i] = Some((payload, false));
                    guard.remaining -= 1;
                    cv.notify_all();
                }
                Err(TryError::Fatal(e)) => {
                    let mut guard = shared.lock().expect("grid lock");
                    guard.fatal.get_or_insert(e);
                    guard.live_threads -= 1;
                    cv.notify_all();
                    return;
                }
                Err(TryError::Busy(e)) | Err(TryError::Broken(e)) => {
                    // This worker is out: grid_attempt already burned the
                    // per-worker retry budget on it. Hand the point to
                    // the survivors; if there are none, the grid is stuck.
                    self.note_broken(worker);
                    self.metrics
                        .dispatch_retries
                        .fetch_add(1, Ordering::Relaxed);
                    let mut guard = shared.lock().expect("grid lock");
                    guard.pending.push_front(i);
                    guard.live_threads -= 1;
                    if guard.live_threads == 0 && guard.remaining > 0 {
                        guard.fatal.get_or_insert(ServerError::new(
                            ErrorCode::WorkerUnavailable,
                            format!("every worker failed; last: {e}"),
                        ));
                    }
                    cv.notify_all();
                    return;
                }
            }
        }
    }

    /// One point on one worker, retrying `queue_full` *and* transport
    /// failures in place with backoff — the next attempt reconnects, so
    /// a chaos-dropped connection to a live worker heals here instead
    /// of evicting the worker from the grid. Only a worker that keeps
    /// failing past the retry budget (or the retry-time cap) hands the
    /// point to the survivors.
    fn grid_attempt(
        &self,
        worker: &RemoteWorker,
        job: &RunJob,
        trace_id: Option<u64>,
        trace: &TraceBuffer,
    ) -> Result<String, TryError> {
        let env = job_envelope(&Job::Run(job.clone()), trace_id);
        let mut last: Option<TryError> = None;
        let retry_deadline = Instant::now() + self.opts.max_retry_time;
        for attempt in 0..=self.opts.retries {
            if attempt > 0 {
                let delay = self.backoff_delay(attempt);
                if Instant::now() + delay > retry_deadline {
                    break; // total per-job retry time is capped
                }
                self.metrics
                    .dispatch_retries
                    .fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(delay);
            }
            match self.try_worker(worker, &env, "result", trace) {
                Ok(payload) => return Ok(payload),
                Err(fatal @ TryError::Fatal(_)) => return Err(fatal),
                Err(retryable) => last = Some(retryable),
            }
        }
        Err(last.unwrap_or_else(|| TryError::Busy(unavailable(None))))
    }

    /// One request/reply exchange on one worker's persistent connection.
    fn try_worker(
        &self,
        worker: &RemoteWorker,
        env: &Envelope,
        expect: &str,
        trace: &TraceBuffer,
    ) -> Result<String, TryError> {
        let broken = |addr: &str, e: &dyn std::fmt::Display| {
            TryError::Broken(ServerError::new(
                ErrorCode::WorkerUnavailable,
                format!("worker {addr}: {e}"),
            ))
        };
        let mut conn = worker.conn.lock().expect("worker conn lock");
        match sharing_chaos::hooks().on_dispatch_exchange(&worker.addr) {
            IoFault::Pass => {}
            IoFault::Drop => {
                *conn = None;
                return Err(broken(&worker.addr, &"chaos: connection dropped"));
            }
            IoFault::Delay(d) => std::thread::sleep(d),
        }
        if conn.is_none() {
            *conn = Some(register(&worker.addr, &self.opts).map_err(|e| broken(&worker.addr, &e))?);
        }
        let start_us = trace.now_us();
        let t0 = Instant::now();
        // A traced worker answers with `"spans"` lines (its execution
        // spans for this job) *before* the final reply line; collect
        // them so the final line splices exactly as before.
        let mut span_lines: Vec<String> = Vec::new();
        let exchanged = {
            let client = conn.as_mut().expect("just connected");
            client.send(env).and_then(|()| loop {
                let line = client.recv_line()?;
                if span_lines.len() < MAX_SPAN_LINES && is_spans_line(&line) {
                    span_lines.push(line);
                    continue;
                }
                break Ok(line);
            })
        };
        let line = match exchanged {
            Ok(line) => line,
            Err(e) => {
                // The connection is desynced or gone; force a reconnect.
                *conn = None;
                return Err(broken(&worker.addr, &e));
            }
        };
        let exec_us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
        drop(conn);
        let v = Json::parse(&line).map_err(|e| broken(&worker.addr, &e))?;
        let outcome = if let Some(err) = ServerError::from_reply(&v) {
            worker.failures.fetch_add(1, Ordering::Relaxed);
            match err.code {
                ErrorCode::QueueFull => Err(TryError::Busy(err)),
                ErrorCode::ShuttingDown | ErrorCode::WorkerUnavailable => {
                    Err(TryError::Broken(err))
                }
                _ => Err(TryError::Fatal(err)),
            }
        } else if v.get("type").and_then(Json::as_str) != Some(expect) {
            worker.failures.fetch_add(1, Ordering::Relaxed);
            Err(broken(
                &worker.addr,
                &format!("unexpected reply type (wanted {expect})"),
            ))
        } else {
            match splice_payload(&line) {
                Some(payload) => {
                    worker.dispatched.fetch_add(1, Ordering::Relaxed);
                    self.metrics.dispatched_jobs.fetch_add(1, Ordering::Relaxed);
                    Ok(payload.to_string())
                }
                None => {
                    worker.failures.fetch_add(1, Ordering::Relaxed);
                    Err(broken(&worker.addr, &"reply carried no result payload"))
                }
            }
        };
        let mut args = vec![
            ("worker".to_string(), Json::Str(worker.addr.clone())),
            ("ok".to_string(), Json::Bool(outcome.is_ok())),
        ];
        if let Some(t) = env.trace {
            args.push(("trace".to_string(), Json::Int(i128::from(t))));
        }
        trace.record(SpanEvent::wall(
            format!("dispatch {expect}"),
            "dispatch",
            DISPATCH_TRACK_BASE + worker.index as u64,
            start_us,
            exec_us,
            args,
        ));
        relay_worker_spans(worker, &span_lines, start_us, trace);
        outcome
    }

    /// Round-robin over healthy workers.
    fn pick_worker(&self) -> Option<Arc<RemoteWorker>> {
        let n = self.workers.len();
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        (0..n)
            .map(|i| &self.workers[(start + i) % n])
            .find(|w| w.healthy.load(Ordering::SeqCst))
            .cloned()
    }

    /// The next retry delay: exponential step for `attempt`, jittered
    /// by the pool-wide draw counter so concurrent retries spread out.
    fn backoff_delay(&self, attempt: u32) -> Duration {
        let draw = self.backoff_draws.fetch_add(1, Ordering::Relaxed);
        backoff(&self.opts, attempt, draw)
    }

    /// Marks a worker broken and refreshes the healthy gauge.
    fn note_broken(&self, worker: &RemoteWorker) {
        worker.mark_broken();
        self.metrics
            .workers_healthy
            .store(self.healthy_count(), Ordering::SeqCst);
    }

    /// Per-worker Prometheus families, appended after the server-wide
    /// exposition (`ssimd_worker_*{worker="addr"}`).
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        let mut w = PromWriter::new();
        let healthy: Vec<(&str, u64)> = self
            .workers
            .iter()
            .map(|wk| {
                (
                    wk.addr.as_str(),
                    u64::from(wk.healthy.load(Ordering::SeqCst)),
                )
            })
            .collect();
        let dispatched: Vec<(&str, u64)> = self
            .workers
            .iter()
            .map(|wk| (wk.addr.as_str(), wk.dispatched.load(Ordering::Relaxed)))
            .collect();
        let failures: Vec<(&str, u64)> = self
            .workers
            .iter()
            .map(|wk| (wk.addr.as_str(), wk.failures.load(Ordering::Relaxed)))
            .collect();
        w.gauge_family(
            "ssimd_worker_healthy",
            "Per-worker health (1 healthy, 0 not) from the last probe or dispatch.",
            "worker",
            &healthy
                .iter()
                .map(|&(a, v)| (a, v as i64))
                .collect::<Vec<_>>(),
        );
        w.counter_family(
            "ssimd_worker_dispatched_total",
            "Jobs completed per remote worker.",
            "worker",
            &dispatched,
        );
        w.counter_family(
            "ssimd_worker_failures_total",
            "Failed dispatch exchanges per remote worker.",
            "worker",
            &failures,
        );
        w.finish()
    }

    /// Pulls every healthy worker's own Prometheus exposition over a
    /// fresh connection (the persistent job connection stays free for
    /// jobs). Returns `(worker index, document)` pairs; the caller
    /// stamps each document with `instance="worker:<k>"` via
    /// [`sharing_obs::inject_label`] and appends it to its own scrape —
    /// one federated `/metrics` answer for the whole fleet. A worker
    /// that fails to answer is skipped and counted in
    /// `ssimd_federation_errors_total`.
    #[must_use]
    pub fn federate(&self) -> Vec<(usize, String)> {
        let mut docs = Vec::new();
        for worker in &self.workers {
            if !worker.healthy.load(Ordering::SeqCst) {
                continue;
            }
            let fetched = Client::connect_timeout(&worker.addr, self.opts.connect_timeout)
                .and_then(|mut c| {
                    c.set_read_timeout(Some(self.opts.connect_timeout))?;
                    c.metrics()
                });
            match fetched {
                Ok(doc) => docs.push((worker.index, doc)),
                Err(_) => sharing_obs::counter("ssimd_federation_errors_total").inc(),
            }
        }
        docs
    }
}

/// Seeded jittered backoff: the exponential step `base * 2^(attempt-1)`
/// scaled into `[50%, 100%]` by an `Rng64` draw pure in
/// `(backoff_seed, attempt, draw)` — replayable, unlike clock- or
/// thread-id-derived jitter.
fn backoff(opts: &DispatchOpts, attempt: u32, draw: u64) -> Duration {
    let step = opts.backoff_base.saturating_mul(1 << (attempt - 1).min(16));
    let mut rng = Rng64::seed_from_u64(
        opts.backoff_seed ^ draw.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(attempt),
    );
    step.mul_f64(0.5 + 0.5 * rng.f64())
}

fn unavailable(last: Option<ServerError>) -> ServerError {
    last.unwrap_or_else(|| ServerError::new(ErrorCode::WorkerUnavailable, "no healthy workers"))
}

fn job_envelope(job: &Job, trace_id: Option<u64>) -> Envelope {
    Envelope {
        id: None,
        proto: Some(PROTO_VERSION),
        trace: trace_id,
        req: Request::Job(job.clone()),
    }
}

/// Whether a reply line is a `"spans"` batch (a traced worker sends
/// these ahead of its final reply).
fn is_spans_line(line: &str) -> bool {
    Json::parse(line)
        .ok()
        .and_then(|v| v.get("type").and_then(Json::as_str).map(str::to_string))
        .as_deref()
        == Some("spans")
}

/// Re-records the execution spans a worker returned with its reply onto
/// this worker's relay track. Worker timestamps are measured against the
/// *worker's* trace epoch, which the coordinator cannot translate, so
/// each span is rebased to the start of the dispatch exchange that
/// carried it — durations (the honest part) are preserved verbatim.
fn relay_worker_spans(
    worker: &RemoteWorker,
    span_lines: &[String],
    start_us: u64,
    trace: &TraceBuffer,
) {
    for line in span_lines {
        let Ok(v) = Json::parse(line) else { continue };
        let Some(spans) = v.get("spans").and_then(Json::as_arr) else {
            continue;
        };
        for sv in spans {
            let Some(mut ev) = SpanEvent::from_json(sv) else {
                continue;
            };
            ev.ts = start_us;
            ev.track = WORKER_TRACK_BASE + worker.index as u64;
            ev.args
                .push(("worker".to_string(), Json::Str(worker.addr.clone())));
            trace.record(ev);
        }
    }
}

/// Connect + version-negotiate + arm the per-job read timeout: the full
/// worker registration handshake, also used for reconnects.
fn register(addr: &str, opts: &DispatchOpts) -> std::io::Result<Client> {
    if sharing_chaos::hooks().connect_fault(addr) {
        return Err(Error::new(
            ErrorKind::ConnectionRefused,
            "chaos: partitioned",
        ));
    }
    let mut client = Client::connect_timeout(addr, opts.connect_timeout)?;
    client.set_read_timeout(Some(opts.job_timeout))?;
    client.hello()?;
    Ok(client)
}

/// Splices the result payload out of a worker's reply line *verbatim*.
/// Worker replies put `"result"` last (`…,"result":{…}}`), and the
/// coordinator sends worker requests without an `id`, so the first
/// occurrence is the envelope's own key and the payload runs to the
/// line's closing brace.
fn splice_payload(line: &str) -> Option<&str> {
    const KEY: &str = "\"result\":";
    let idx = line.find(KEY)?;
    if !line.ends_with('}') {
        return None;
    }
    Some(&line[idx + KEY.len()..line.len() - 1])
}

/// Pings every worker over a fresh connection on the configured
/// interval, updating per-worker health and the `workers_healthy` gauge.
fn health_loop(pool: &WorkerPool) {
    while !pool.closed.load(Ordering::SeqCst) {
        let mut healthy = 0usize;
        for worker in &pool.workers {
            // A chaos partition window makes the worker look dead to
            // probes without consuming an injection-schedule slot.
            let alive = !sharing_chaos::hooks().partitioned(&worker.addr)
                && Client::connect_timeout(&worker.addr, pool.opts.connect_timeout)
                    .and_then(|mut c| {
                        c.set_read_timeout(Some(pool.opts.connect_timeout))?;
                        c.ping()
                    })
                    .unwrap_or(false);
            if alive {
                healthy += 1;
            } else {
                // Drop the job connection too: a worker that refuses new
                // connections is draining or dead, and an exchange on the
                // old connection would only stall until the job timeout.
                worker.mark_broken();
            }
            worker.healthy.store(alive, Ordering::SeqCst);
        }
        pool.metrics
            .workers_healthy
            .store(healthy, Ordering::SeqCst);
        // Sleep in short slices so close() is prompt.
        let mut slept = Duration::ZERO;
        while slept < pool.opts.ping_interval && !pool.closed.load(Ordering::SeqCst) {
            let slice = Duration::from_millis(50).min(pool.opts.ping_interval - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splice_extracts_the_exact_payload_bytes() {
        let line =
            r#"{"ok":true,"type":"result","cached":false,"result":{"cycles":10,"instructions":7}}"#;
        assert_eq!(
            splice_payload(line),
            Some(r#"{"cycles":10,"instructions":7}"#)
        );
        // Nested `"result":` keys inside the payload don't confuse the
        // splice — the envelope's key comes first.
        let nested = r#"{"ok":true,"type":"result","cached":true,"result":{"result":1}}"#;
        assert_eq!(splice_payload(nested), Some(r#"{"result":1}"#));
        assert_eq!(splice_payload(r#"{"ok":true}"#), None);
    }

    #[test]
    fn backoff_jitter_is_seeded_and_bounded() {
        let opts = DispatchOpts::default();
        for attempt in 1..=4 {
            let step = opts.backoff_base.saturating_mul(1 << (attempt - 1));
            for draw in 0..8 {
                let d = backoff(&opts, attempt, draw);
                assert!(
                    d >= step / 2 && d <= step,
                    "attempt {attempt} draw {draw}: {d:?} outside [{:?}, {step:?}]",
                    step / 2
                );
            }
        }
        // Pure in (seed, attempt, draw): replays sleep identically.
        assert_eq!(backoff(&opts, 2, 7), backoff(&opts, 2, 7));
        let other = DispatchOpts {
            backoff_seed: opts.backoff_seed + 1,
            ..opts.clone()
        };
        let same_everywhere = (0..16).all(|d| backoff(&opts, 2, d) == backoff(&other, 2, d));
        assert!(!same_everywhere, "the seed must matter");
        // Huge attempt counts must not overflow the shift.
        let _ = backoff(&opts, 40, 0);
    }

    #[test]
    fn registration_refuses_a_dead_worker() {
        // Nothing listens here: bind, learn the port, drop the listener.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let opts = DispatchOpts {
            connect_timeout: Duration::from_millis(200),
            ..DispatchOpts::default()
        };
        let metrics = Arc::new(Metrics::new(1));
        let err = match WorkerPool::connect(&[format!("127.0.0.1:{port}")], opts, metrics) {
            Ok(_) => panic!("dead worker must fail registration"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("worker 127.0.0.1"));
    }
}
