//! Job execution: the bridge from protocol jobs to the simulator.
//!
//! Everything here is deterministic — same job, same bytes out — which is
//! the contract the result cache relies on.

use crate::cache::ResultCache;
use crate::metrics::Metrics;
use crate::protocol::{DcJob, JobWorkload, RunJob};
use sharing_core::{RunOptions, SimConfig, SimResult, Simulator, VmSimulator};
use sharing_dc::DcSim;
use sharing_json::{Json, ToJson};
use sharing_trace::{TraceCache, TraceSpec};
use std::sync::atomic::Ordering;

/// Runs one job on a fresh simulator.
///
/// Traces come from the process-wide [`TraceCache`]: a daemon serving
/// repeated jobs for the same `(workload, len, seed)` generates the trace
/// once and every worker thread shares the same `Arc`.
///
/// # Errors
///
/// Returns a human-readable message for invalid shapes or profiles;
/// simulation itself is total.
pub fn simulate(job: &RunJob) -> Result<SimResult, String> {
    let cfg = SimConfig::with_shape(job.slices, job.banks).map_err(|e| e.to_string())?;
    let spec = TraceSpec::new(job.len, job.seed);
    let traces = TraceCache::global();
    match &job.workload {
        JobWorkload::Benchmark(b) => {
            if b.is_parsec() {
                Ok(VmSimulator::new(cfg)
                    .expect("validated config")
                    .run(&traces.threaded(*b, &spec)))
            } else {
                Ok(Simulator::new(cfg)
                    .expect("validated config")
                    .run_with(&traces.single(*b, &spec), RunOptions::new())
                    .result)
            }
        }
        JobWorkload::Profile(p) => {
            if p.threads > 1 {
                let trace = traces.profile_threaded(p, &spec)?;
                Ok(VmSimulator::new(cfg).expect("validated config").run(&trace))
            } else {
                let trace = traces.profile_single(p, &spec)?;
                Ok(Simulator::new(cfg)
                    .expect("validated config")
                    .run_with(&trace, RunOptions::new())
                    .result)
            }
        }
    }
}

/// Runs a job through the result cache: on a hit, the stored payload is
/// returned verbatim (byte-identical to the fresh run that produced it).
/// Returns `(payload_json, was_cached)`.
///
/// # Errors
///
/// Propagates [`simulate`]'s message. Failures are not cached.
pub fn run_cached(
    cache: &ResultCache,
    metrics: &Metrics,
    job: &RunJob,
) -> Result<(String, bool), String> {
    let key = job.cache_key();
    if let Some(hit) = cache.get(&key) {
        metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        return Ok((hit, true));
    }
    metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
    let payload = sharing_json::to_string(&simulate(job)?);
    cache.insert(&key, &payload);
    Ok((payload, false))
}

/// Runs a datacenter-scenario job and serializes its totals: one
/// `Totals` object per mode run, under `"sharing"` / `"fixed"` keys,
/// plus the scenario name and seed.
///
/// # Errors
///
/// Returns the scenario validation message; simulation itself is total.
pub fn run_dc(job: &DcJob) -> Result<String, String> {
    let sim = DcSim::new(job.scenario.clone())?;
    let mut pairs: Vec<(&str, Json)> = vec![
        ("scenario", Json::Str(job.scenario.name.clone())),
        ("seed", Json::Int(i128::from(job.seed))),
    ];
    match job.mode {
        Some(mode) => {
            let totals = sim.run(mode, job.seed).totals();
            pairs.push((mode.name(), totals.to_json()));
        }
        None => {
            let cmp = sim.run_comparison(job.seed);
            pairs.push(("sharing", cmp.sharing.totals().to_json()));
            pairs.push(("fixed", cmp.fixed.totals().to_json()));
        }
    }
    Ok(Json::obj(pairs).to_string())
}

/// [`run_dc`] through the result cache, mirroring [`run_cached`]:
/// hits replay the stored payload verbatim. Returns
/// `(payload_json, was_cached)`.
///
/// # Errors
///
/// Propagates [`run_dc`]'s message. Failures are not cached.
pub fn run_dc_cached(
    cache: &ResultCache,
    metrics: &Metrics,
    job: &DcJob,
) -> Result<(String, bool), String> {
    let key = job.cache_key();
    if let Some(hit) = cache.get(&key) {
        metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        return Ok((hit, true));
    }
    metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
    let payload = run_dc(job)?;
    cache.insert(&key, &payload);
    Ok((payload, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharing_trace::Benchmark;

    fn job(len: usize, seed: u64) -> RunJob {
        RunJob {
            workload: JobWorkload::Benchmark(Benchmark::Gcc),
            slices: 2,
            banks: 2,
            len,
            seed,
        }
    }

    #[test]
    fn simulate_is_deterministic() {
        let a = sharing_json::to_string(&simulate(&job(600, 3)).unwrap());
        let b = sharing_json::to_string(&simulate(&job(600, 3)).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn bad_shape_is_an_error_not_a_panic() {
        let mut j = job(100, 1);
        j.slices = 0;
        assert!(simulate(&j).is_err());
        j.slices = 999;
        assert!(simulate(&j).is_err());
    }

    #[test]
    fn cached_payload_is_byte_identical_to_fresh() {
        let cache = ResultCache::new(16);
        let metrics = Metrics::new(1);
        let (fresh, was_cached) = run_cached(&cache, &metrics, &job(500, 9)).unwrap();
        assert!(!was_cached);
        let (hit, was_cached) = run_cached(&cache, &metrics, &job(500, 9)).unwrap();
        assert!(was_cached);
        assert_eq!(fresh, hit, "cache replay must be byte-identical");
        assert_eq!(metrics.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.cache_misses.load(Ordering::Relaxed), 1);
    }

    fn dc_job(mode: Option<sharing_dc::BillingMode>) -> DcJob {
        let mut sc = sharing_dc::Scenario::example_bursty();
        sc.chips = 2;
        sc.epochs = 8;
        sc.epoch_cycles = 10_000;
        DcJob {
            scenario: sc,
            seed: 5,
            mode,
        }
    }

    #[test]
    fn dc_payload_is_deterministic_and_cached() {
        let cache = ResultCache::new(8);
        let metrics = Metrics::new(1);
        let job = dc_job(None);
        let (fresh, c0) = run_dc_cached(&cache, &metrics, &job).unwrap();
        assert!(!c0);
        let (hit, c1) = run_dc_cached(&cache, &metrics, &job).unwrap();
        assert!(c1);
        assert_eq!(fresh, hit, "cache replay must be byte-identical");
        let v = Json::parse(&fresh).unwrap();
        assert!(v.get("sharing").is_some(), "comparison carries sharing");
        assert!(v.get("fixed").is_some(), "comparison carries fixed");
    }

    #[test]
    fn dc_single_mode_reports_only_that_mode() {
        let payload = run_dc(&dc_job(Some(sharing_dc::BillingMode::Sharing))).unwrap();
        let v = Json::parse(&payload).unwrap();
        assert!(v.get("sharing").is_some());
        assert!(v.get("fixed").is_none());
    }

    #[test]
    fn different_jobs_do_not_alias() {
        let cache = ResultCache::new(16);
        let metrics = Metrics::new(1);
        let (a, _) = run_cached(&cache, &metrics, &job(500, 1)).unwrap();
        let (b, _) = run_cached(&cache, &metrics, &job(500, 2)).unwrap();
        assert_ne!(a, b, "different seeds are different cache entries");
        assert_eq!(metrics.cache_misses.load(Ordering::Relaxed), 2);
    }
}
