//! The ssimd wire protocol: newline-delimited JSON over TCP.
//!
//! Every request is one JSON object on one line; every reply is one JSON
//! object on one line. A request may produce several reply lines (sweeps
//! stream one line per shape before their final line). Replies always
//! carry `"ok"` and echo the request's `"id"` when one was given, so
//! clients can pipeline.
//!
//! # Versioning
//!
//! The protocol is versioned. A request may carry a `"proto"` field; the
//! server rejects versions outside `[MIN_PROTO, PROTO_VERSION]` with a
//! structured `version_mismatch` error instead of guessing. A `hello`
//! request negotiates up front: the reply names the server's current and
//! minimum versions, so a coordinator can refuse a mismatched worker at
//! registration time rather than mid-sweep. Requests without `"proto"`
//! are treated as the oldest supported dialect (v1 predates the field).
//!
//! Request shapes:
//!
//! ```text
//! {"type":"hello","proto":2}
//! {"type":"ping"}
//! {"type":"stats"}
//! {"type":"metrics"}
//! {"type":"shutdown"}
//! {"type":"run","benchmark":"gcc","slices":4,"banks":8,"len":60000,"seed":7}
//! {"type":"run","profile":{...WorkloadProfile...},"slices":2,...}
//! {"type":"sweep","benchmark":"mcf","len":30000,"seed":7}
//! {"type":"market","benchmark":"gcc","utility":"throughput",
//!  "market":"Market2","budget":100.0,"len":30000,"seed":7}
//! {"type":"dc","scenario":{"name":"bursty",...},"seed":7,"mode":"sharing"}
//! ```
//!
//! Error replies are structured: `{"ok":false,"code":"queue_full",
//! "error":"..."}` — assert on [`ErrorCode`]s, not message substrings.

use sharing_dc::{BillingMode, Scenario};
use sharing_json::{Json, JsonError};
use sharing_market::{Market, UtilityFn};
use sharing_trace::{Benchmark, WorkloadProfile};
use std::io::{BufRead, Read, Write};

/// Default TCP port (`0xA5` + `2014`, the paper's year).
pub const DEFAULT_PORT: u16 = 42014;

/// The protocol version this build speaks (and advertises in `hello`).
///
/// v1 was the unversioned PR 1–3 dialect; v2 added `proto`, `hello`,
/// and structured error codes.
pub const PROTO_VERSION: u64 = 2;

/// The oldest protocol version the server still accepts. Requests
/// without a `"proto"` field are treated as this version.
pub const MIN_PROTO: u64 = 1;

/// Maximum accepted request line length (1 MiB) — bounds memory per
/// connection against hostile input.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// What a `run` job simulates.
#[derive(Clone, Debug, PartialEq)]
pub enum JobWorkload {
    /// One of the calibrated paper benchmarks.
    Benchmark(Benchmark),
    /// An inline workload profile.
    Profile(Box<WorkloadProfile>),
}

/// A single-configuration simulation job.
#[derive(Clone, Debug, PartialEq)]
pub struct RunJob {
    /// The workload.
    pub workload: JobWorkload,
    /// Slice count.
    pub slices: usize,
    /// L2 bank count.
    pub banks: usize,
    /// Trace length.
    pub len: usize,
    /// Trace seed.
    pub seed: u64,
}

/// A full-grid sweep job (72 shapes, streamed).
#[derive(Clone, Debug, PartialEq)]
pub struct SweepJob {
    /// The benchmark to sweep.
    pub benchmark: Benchmark,
    /// Trace length.
    pub len: usize,
    /// Trace seed.
    pub seed: u64,
}

/// A market-evaluation job: sweep the grid, then pick the
/// budget-constrained utility-optimal shape (paper §5.6).
#[derive(Clone, Debug, PartialEq)]
pub struct MarketJob {
    /// The benchmark whose surface is evaluated.
    pub benchmark: Benchmark,
    /// The customer's utility function.
    pub utility: UtilityFn,
    /// The pricing market.
    pub market: Market,
    /// The customer's budget.
    pub budget: f64,
    /// Trace length.
    pub len: usize,
    /// Trace seed.
    pub seed: u64,
}

/// A datacenter-scenario job: run the discrete-event simulator over a
/// full scenario (see `sharing-dc`), in one billing mode or both.
#[derive(Clone, Debug, PartialEq)]
pub struct DcJob {
    /// The scenario to simulate.
    pub scenario: Scenario,
    /// Event seed.
    pub seed: u64,
    /// Billing mode; `None` runs both and reports the comparison.
    pub mode: Option<BillingMode>,
}

/// One simulation job, unifying every kind the daemon executes.
///
/// This is the payload of [`Request::Job`] and the argument to
/// `Client::submit`; control requests (`ping`, `stats`, …) are *not*
/// jobs — they never enter the queue.
#[derive(Clone, Debug, PartialEq)]
pub enum Job {
    /// A single simulation.
    Run(RunJob),
    /// A grid sweep (streams one line per shape).
    Sweep(SweepJob),
    /// A market evaluation.
    Market(MarketJob),
    /// A datacenter scenario simulation.
    Dc(Box<DcJob>),
}

impl Job {
    /// The canonical cache key for this job: compact JSON with a fixed
    /// field order, independent of how the request spelled it. Identical
    /// keys mean identical results (the simulator is deterministic), so
    /// cached payloads replay byte-identically. Sweeps and markets are
    /// executed as grids of [`RunJob`]s and cached per point, but their
    /// keys are still canonical so batch-level caches can layer on top.
    #[must_use]
    pub fn cache_key(&self) -> String {
        match self {
            Job::Run(job) => job.cache_key(),
            Job::Dc(job) => job.cache_key(),
            Job::Sweep(job) => Json::obj(vec![(
                "sweep",
                Json::obj(vec![
                    ("benchmark", Json::Str(job.benchmark.name().into())),
                    ("len", Json::Int(job.len as i128)),
                    ("seed", Json::Int(i128::from(job.seed))),
                ]),
            )])
            .to_string(),
            Job::Market(job) => Json::obj(vec![(
                "market",
                Json::obj(vec![
                    ("benchmark", Json::Str(job.benchmark.name().into())),
                    ("utility", Json::Str(job.utility.name().into())),
                    ("market", Json::Str(job.market.name.into())),
                    ("budget", Json::Float(job.budget)),
                    ("len", Json::Int(job.len as i128)),
                    ("seed", Json::Int(i128::from(job.seed))),
                ]),
            )])
            .to_string(),
        }
    }

    /// The wire name of this job kind (`run`, `sweep`, `market`, `dc`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Job::Run(_) => "run",
            Job::Sweep(_) => "sweep",
            Job::Market(_) => "market",
            Job::Dc(_) => "dc",
        }
    }
}

/// A parsed request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Version negotiation: the reply advertises the server's
    /// `[MIN_PROTO, PROTO_VERSION]` range.
    Hello {
        /// The protocol version the client speaks.
        proto: u64,
    },
    /// Liveness check.
    Ping,
    /// Server-wide metrics as a JSON snapshot.
    Stats,
    /// Server-wide metrics as Prometheus text exposition.
    Metrics,
    /// Graceful shutdown: drain in-flight jobs, then exit.
    Shutdown,
    /// A simulation job (run, sweep, market, or dc).
    Job(Job),
}

/// A request plus its optional client-chosen correlation id and
/// protocol version.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Echoed verbatim in every reply line for this request.
    pub id: Option<u64>,
    /// The protocol version the sender speaks; `None` means the v1
    /// dialect, which predates the field.
    pub proto: Option<u64>,
    /// Distributed-trace correlation id. A coordinator stamps every job
    /// it fans out with the submitting job's trace id; a worker that
    /// sees one returns its execution spans (a `"spans"` reply line)
    /// ahead of the result so the coordinator can merge one fleet-wide
    /// trace. Absent on v1/v2 clients and ignored by cache keys.
    pub trace: Option<u64>,
    /// The request itself.
    pub req: Request,
}

/// Machine-readable failure class, carried in every error reply's
/// `"code"` field. Tests and clients dispatch on these, never on
/// message text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line failed to parse or validate.
    BadRequest,
    /// The request `type` is not one the server knows.
    UnknownRequest,
    /// The envelope's `proto` is outside the supported range.
    VersionMismatch,
    /// Admission control refused the job (bounded queue at capacity).
    QueueFull,
    /// The server is draining and admits no new work.
    ShuttingDown,
    /// No healthy remote worker could take the job (coordinator mode).
    WorkerUnavailable,
    /// The job was admitted but failed to execute.
    ExecFailed,
}

impl ErrorCode {
    /// Every code, in exposition order.
    pub const ALL: [ErrorCode; 7] = [
        ErrorCode::BadRequest,
        ErrorCode::UnknownRequest,
        ErrorCode::VersionMismatch,
        ErrorCode::QueueFull,
        ErrorCode::ShuttingDown,
        ErrorCode::WorkerUnavailable,
        ErrorCode::ExecFailed,
    ];

    /// The wire name of this code.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownRequest => "unknown_request",
            ErrorCode::VersionMismatch => "version_mismatch",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::WorkerUnavailable => "worker_unavailable",
            ErrorCode::ExecFailed => "exec_failed",
        }
    }

    /// Parses a wire name back to a code.
    #[must_use]
    pub fn parse(name: &str) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|c| c.name() == name)
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed server-side failure: a machine-readable [`ErrorCode`] plus a
/// human-readable message. Serializes into the response envelope as
/// `{"ok":false,"code":...,"error":...}`.
#[derive(Clone, Debug, PartialEq)]
pub struct ServerError {
    /// The failure class.
    pub code: ErrorCode,
    /// Human-readable detail; never dispatch on this.
    pub message: String,
}

impl ServerError {
    /// A new error.
    #[must_use]
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ServerError {
            code,
            message: message.into(),
        }
    }

    /// Shorthand for [`ErrorCode::BadRequest`].
    #[must_use]
    pub fn bad_request(message: impl Into<String>) -> Self {
        ServerError::new(ErrorCode::BadRequest, message)
    }

    /// Shorthand for [`ErrorCode::ExecFailed`].
    #[must_use]
    pub fn exec_failed(message: impl Into<String>) -> Self {
        ServerError::new(ErrorCode::ExecFailed, message)
    }

    /// Shorthand for [`ErrorCode::VersionMismatch`], naming the
    /// offending version and the supported range.
    #[must_use]
    pub fn version_mismatch(got: u64) -> Self {
        ServerError::new(
            ErrorCode::VersionMismatch,
            format!("protocol version {got} unsupported (speaks {MIN_PROTO}..={PROTO_VERSION})"),
        )
    }

    /// The error reply line for this failure, echoing `id` when given.
    #[must_use]
    pub fn to_line(&self, id: Option<u64>) -> String {
        self.to_line_with(id, vec![])
    }

    /// [`ServerError::to_line`] plus extra reply fields (e.g. the
    /// backpressure hint on `queue_full`).
    #[must_use]
    pub fn to_line_with(&self, id: Option<u64>, extra: Vec<(&str, Json)>) -> String {
        let mut pairs: Vec<(&str, Json)> = Vec::new();
        if let Some(id) = id {
            pairs.push(("id", Json::Int(i128::from(id))));
        }
        pairs.push(("ok", Json::Bool(false)));
        pairs.push(("code", Json::Str(self.code.name().into())));
        pairs.push(("error", Json::Str(self.message.clone())));
        pairs.extend(extra);
        Json::obj(pairs).to_string()
    }

    /// Extracts the typed error from a parsed reply line, if the line is
    /// an error reply. Replies predating v2 (no `"code"`) map to
    /// [`ErrorCode::ExecFailed`].
    #[must_use]
    pub fn from_reply(v: &Json) -> Option<ServerError> {
        if v.get("ok").and_then(Json::as_bool) != Some(false) {
            return None;
        }
        let code = v
            .get("code")
            .and_then(Json::as_str)
            .and_then(ErrorCode::parse)
            .unwrap_or(ErrorCode::ExecFailed);
        let message = v
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("request failed")
            .to_string();
        Some(ServerError { code, message })
    }
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.name(), self.message)
    }
}

impl std::error::Error for ServerError {}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, JsonError> {
    v.get(key)
        .ok_or_else(|| JsonError(format!("request missing field `{key}`")))
}

fn num_field<T: sharing_json::FromJson>(v: &Json, key: &str, default: T) -> Result<T, JsonError> {
    match v.get(key) {
        Some(x) => T::from_json(x),
        None => Ok(default),
    }
}

fn parse_benchmark(v: &Json) -> Result<Benchmark, JsonError> {
    let name = field(v, "benchmark")?
        .as_str()
        .ok_or_else(|| JsonError("`benchmark` must be a string".into()))?;
    Benchmark::from_name(name).ok_or_else(|| JsonError(format!("unknown benchmark `{name}`")))
}

/// A `run` job's `benchmark` field resolves against the paper suite
/// first, then the extra seeded profiles (`bursty`, `phaseshift`) —
/// which ship as inline profiles so the cache key carries their full
/// calibration, exactly as if the client had sent `profile`.
fn parse_run_workload(v: &Json) -> Result<JobWorkload, JsonError> {
    let name = field(v, "benchmark")?
        .as_str()
        .ok_or_else(|| JsonError("`benchmark` must be a string".into()))?;
    if let Some(b) = Benchmark::from_name(name) {
        return Ok(JobWorkload::Benchmark(b));
    }
    if let Some(p) = sharing_trace::extra_profile(name) {
        return Ok(JobWorkload::Profile(Box::new(p)));
    }
    Err(JsonError(format!("unknown benchmark `{name}`")))
}

fn parse_utility(name: &str) -> Result<UtilityFn, JsonError> {
    match name.to_ascii_lowercase().as_str() {
        "throughput" | "utility1" => Ok(UtilityFn::Throughput),
        "balanced" | "utility2" => Ok(UtilityFn::Balanced),
        "latency" | "latencycritical" | "latency-critical" | "utility3" => {
            Ok(UtilityFn::LatencyCritical)
        }
        other => Err(JsonError(format!("unknown utility `{other}`"))),
    }
}

fn parse_market(name: &str) -> Result<Market, JsonError> {
    Market::ALL
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| JsonError(format!("unknown market `{name}`")))
}

impl Envelope {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ServerError`] — [`ErrorCode::UnknownRequest`]
    /// for an unrecognized `type`, [`ErrorCode::BadRequest`] for
    /// everything else; the server turns either into an `"ok": false`
    /// reply rather than dropping the connection. Version checking is
    /// the *server's* job (it knows what it speaks); parse only requires
    /// `proto`, when present, to be a u64.
    pub fn parse(line: &str) -> Result<Envelope, ServerError> {
        let v = Json::parse(line).map_err(|e| ServerError::bad_request(e.to_string()))?;
        let id = match v.get("id") {
            Some(x) => Some(
                u64::from_json(x).map_err(|_| ServerError::bad_request("`id` must be a u64"))?,
            ),
            None => None,
        };
        let proto = match v.get("proto") {
            Some(x) => Some(
                u64::from_json(x).map_err(|_| ServerError::bad_request("`proto` must be a u64"))?,
            ),
            None => None,
        };
        let trace = match v.get("trace") {
            Some(x) => Some(
                u64::from_json(x).map_err(|_| ServerError::bad_request("`trace` must be a u64"))?,
            ),
            None => None,
        };
        let ty = field(&v, "type")
            .and_then(|t| {
                t.as_str()
                    .ok_or_else(|| JsonError("`type` must be a string".into()))
            })
            .map_err(|e| ServerError::bad_request(e.to_string()))?;
        let req = Envelope::parse_request(ty, &v, proto)
            .map_err(|e| ServerError::bad_request(e.to_string()))?
            .ok_or_else(|| {
                ServerError::new(
                    ErrorCode::UnknownRequest,
                    format!("unknown request type `{ty}`"),
                )
            })?;
        Ok(Envelope {
            id,
            proto,
            trace,
            req,
        })
    }

    /// Parses the typed request body; `Ok(None)` means an unknown type.
    fn parse_request(ty: &str, v: &Json, proto: Option<u64>) -> Result<Option<Request>, JsonError> {
        let req = match ty {
            "hello" => Request::Hello {
                proto: num_field(v, "proto", proto.unwrap_or(PROTO_VERSION))?,
            },
            "ping" => Request::Ping,
            "stats" => Request::Stats,
            "metrics" => Request::Metrics,
            "shutdown" => Request::Shutdown,
            "run" => {
                let workload = if let Some(p) = v.get("profile") {
                    JobWorkload::Profile(Box::new(WorkloadProfile::from_json(p)?))
                } else {
                    parse_run_workload(v)?
                };
                Request::Job(Job::Run(RunJob {
                    workload,
                    slices: num_field(v, "slices", 1usize)?,
                    banks: num_field(v, "banks", 2usize)?,
                    len: num_field(v, "len", 60_000usize)?,
                    seed: num_field(v, "seed", 0xA5_2014u64)?,
                }))
            }
            "sweep" => Request::Job(Job::Sweep(SweepJob {
                benchmark: parse_benchmark(v)?,
                len: num_field(v, "len", 30_000usize)?,
                seed: num_field(v, "seed", 0xA5_2014u64)?,
            })),
            "market" => Request::Job(Job::Market(MarketJob {
                benchmark: parse_benchmark(v)?,
                utility: parse_utility(
                    field(v, "utility")?
                        .as_str()
                        .ok_or_else(|| JsonError("`utility` must be a string".into()))?,
                )?,
                market: parse_market(
                    field(v, "market")?
                        .as_str()
                        .ok_or_else(|| JsonError("`market` must be a string".into()))?,
                )?,
                budget: num_field(v, "budget", 100.0f64)?,
                len: num_field(v, "len", 30_000usize)?,
                seed: num_field(v, "seed", 0xA5_2014u64)?,
            })),
            "dc" => {
                let scenario_json = field(v, "scenario")?;
                if scenario_json.get("name").is_none() {
                    return Err(JsonError("`scenario` must carry a `name`".into()));
                }
                let scenario = Scenario::from_json(scenario_json)?;
                scenario.validate().map_err(JsonError)?;
                let mode = match v.get("mode") {
                    Some(m) => {
                        let name = m
                            .as_str()
                            .ok_or_else(|| JsonError("`mode` must be a string".into()))?;
                        Some(BillingMode::parse(name).map_err(JsonError)?)
                    }
                    None => None,
                };
                Request::Job(Job::Dc(Box::new(DcJob {
                    scenario,
                    seed: num_field(v, "seed", 0xA5_2014u64)?,
                    mode,
                })))
            }
            _ => return Ok(None),
        };
        Ok(Some(req))
    }

    /// Serializes the envelope back to its wire line (the client side of
    /// [`Envelope::parse`]).
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut pairs: Vec<(&str, Json)> = Vec::new();
        if let Some(id) = self.id {
            pairs.push(("id", Json::Int(i128::from(id))));
        }
        // `hello` owns the `proto` key below; writing the envelope-level
        // copy too would duplicate it.
        if let (Some(proto), false) = (self.proto, matches!(self.req, Request::Hello { .. })) {
            pairs.push(("proto", Json::Int(i128::from(proto))));
        }
        if let Some(trace) = self.trace {
            pairs.push(("trace", Json::Int(i128::from(trace))));
        }
        match &self.req {
            Request::Hello { proto } => {
                pairs.push(("type", Json::Str("hello".into())));
                pairs.push(("proto", Json::Int(i128::from(*proto))));
            }
            Request::Ping => pairs.push(("type", Json::Str("ping".into()))),
            Request::Stats => pairs.push(("type", Json::Str("stats".into()))),
            Request::Metrics => pairs.push(("type", Json::Str("metrics".into()))),
            Request::Shutdown => pairs.push(("type", Json::Str("shutdown".into()))),
            Request::Job(Job::Run(job)) => {
                pairs.push(("type", Json::Str("run".into())));
                match &job.workload {
                    JobWorkload::Benchmark(b) => {
                        pairs.push(("benchmark", Json::Str(b.name().into())));
                    }
                    JobWorkload::Profile(p) => pairs.push(("profile", p.to_json())),
                }
                pairs.push(("slices", Json::Int(job.slices as i128)));
                pairs.push(("banks", Json::Int(job.banks as i128)));
                pairs.push(("len", Json::Int(job.len as i128)));
                pairs.push(("seed", Json::Int(i128::from(job.seed))));
            }
            Request::Job(Job::Sweep(job)) => {
                pairs.push(("type", Json::Str("sweep".into())));
                pairs.push(("benchmark", Json::Str(job.benchmark.name().into())));
                pairs.push(("len", Json::Int(job.len as i128)));
                pairs.push(("seed", Json::Int(i128::from(job.seed))));
            }
            Request::Job(Job::Market(job)) => {
                pairs.push(("type", Json::Str("market".into())));
                pairs.push(("benchmark", Json::Str(job.benchmark.name().into())));
                pairs.push(("utility", Json::Str(job.utility.name().into())));
                pairs.push(("market", Json::Str(job.market.name.into())));
                pairs.push(("budget", Json::Float(job.budget)));
                pairs.push(("len", Json::Int(job.len as i128)));
                pairs.push(("seed", Json::Int(i128::from(job.seed))));
            }
            Request::Job(Job::Dc(job)) => {
                pairs.push(("type", Json::Str("dc".into())));
                pairs.push(("scenario", job.scenario.to_json()));
                pairs.push(("seed", Json::Int(i128::from(job.seed))));
                if let Some(mode) = job.mode {
                    pairs.push(("mode", Json::Str(mode.name().into())));
                }
            }
        }
        Json::obj(pairs).to_string()
    }

    /// Whether this envelope's declared protocol version is one the
    /// server speaks (`None` is treated as [`MIN_PROTO`]).
    #[must_use]
    pub fn proto_supported(&self) -> bool {
        proto_supported(self.proto.unwrap_or(MIN_PROTO))
    }
}

/// Whether `proto` is within the supported `[MIN_PROTO, PROTO_VERSION]`
/// range.
#[must_use]
pub fn proto_supported(proto: u64) -> bool {
    (MIN_PROTO..=PROTO_VERSION).contains(&proto)
}

impl RunJob {
    /// The canonical cache key for this job: a compact JSON string with a
    /// fixed field order, independent of how the request spelled it.
    /// Identical keys mean identical simulations (trace generation and the
    /// simulator are deterministic), so cached payloads replay
    /// byte-identically.
    #[must_use]
    pub fn cache_key(&self) -> String {
        let workload = match &self.workload {
            JobWorkload::Benchmark(b) => Json::Str(b.name().into()),
            JobWorkload::Profile(p) => p.to_json(),
        };
        Json::obj(vec![
            ("workload", workload),
            ("slices", Json::Int(self.slices as i128)),
            ("banks", Json::Int(self.banks as i128)),
            ("len", Json::Int(self.len as i128)),
            ("seed", Json::Int(i128::from(self.seed))),
        ])
        .to_string()
    }
}

impl DcJob {
    /// The canonical cache key for this job (see [`RunJob::cache_key`]):
    /// the scenario's canonical JSON plus seed and mode. The simulator is
    /// fully deterministic in `(scenario, seed, mode)`, so identical keys
    /// replay byte-identical results.
    #[must_use]
    pub fn cache_key(&self) -> String {
        let mode = match self.mode {
            Some(m) => Json::Str(m.name().into()),
            None => Json::Str("both".into()),
        };
        Json::obj(vec![
            ("dc", self.scenario.to_json()),
            ("seed", Json::Int(i128::from(self.seed))),
            ("mode", mode),
        ])
        .to_string()
    }
}

/// Reads one protocol line. Returns `Ok(None)` on a clean EOF.
///
/// # Errors
///
/// I/O errors propagate; an over-long line is reported as
/// [`std::io::ErrorKind::InvalidData`].
pub fn read_line(reader: &mut impl BufRead) -> std::io::Result<Option<String>> {
    let mut line = String::new();
    let n = reader
        .by_ref()
        .take(MAX_LINE_BYTES as u64 + 1)
        .read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if n > MAX_LINE_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "request line exceeds 1 MiB",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// Writes one protocol line and flushes it.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_line(writer: &mut impl Write, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

use sharing_json::{FromJson, ToJson};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_round_trips() {
        let env = Envelope {
            id: Some(7),
            proto: Some(PROTO_VERSION),
            trace: None,
            req: Request::Job(Job::Run(RunJob {
                workload: JobWorkload::Benchmark(Benchmark::Gcc),
                slices: 4,
                banks: 8,
                len: 1000,
                seed: 42,
            })),
        };
        let back = Envelope::parse(&env.to_line()).unwrap();
        assert_eq!(env, back);
    }

    #[test]
    fn every_job_kind_round_trips_through_the_job_enum() {
        let jobs = [
            Job::Run(RunJob {
                workload: JobWorkload::Benchmark(Benchmark::Gcc),
                slices: 2,
                banks: 4,
                len: 900,
                seed: 3,
            }),
            Job::Sweep(SweepJob {
                benchmark: Benchmark::Mcf,
                len: 500,
                seed: 1,
            }),
            Job::Market(MarketJob {
                benchmark: Benchmark::Astar,
                utility: UtilityFn::Balanced,
                market: Market::MARKET3,
                budget: 64.0,
                len: 500,
                seed: 1,
            }),
            Job::Dc(Box::new(DcJob {
                scenario: Scenario::example_bursty(),
                seed: 99,
                mode: None,
            })),
        ];
        for job in jobs {
            let env = Envelope {
                id: Some(5),
                proto: Some(PROTO_VERSION),
                trace: None,
                req: Request::Job(job.clone()),
            };
            let back = Envelope::parse(&env.to_line()).unwrap();
            assert_eq!(env, back, "{} must round-trip", job.kind());
            match back.req {
                Request::Job(j) => assert_eq!(j.cache_key(), job.cache_key()),
                other => panic!("expected job, got {other:?}"),
            }
        }
    }

    #[test]
    fn trace_id_rides_the_envelope() {
        let env = Envelope {
            id: Some(3),
            proto: Some(PROTO_VERSION),
            trace: Some(0xBEEF),
            req: Request::Job(Job::Run(RunJob {
                workload: JobWorkload::Benchmark(Benchmark::Mcf),
                slices: 2,
                banks: 2,
                len: 500,
                seed: 1,
            })),
        };
        let line = env.to_line();
        assert!(line.contains(r#""trace":48879"#), "wire form: {line}");
        let back = Envelope::parse(&line).unwrap();
        assert_eq!(back, env);
        // Absent on old clients; a non-integer is a typed rejection.
        let bare = Envelope::parse(r#"{"type":"ping"}"#).unwrap();
        assert_eq!(bare.trace, None);
        assert_eq!(
            Envelope::parse(r#"{"type":"ping","trace":"abc"}"#)
                .unwrap_err()
                .code,
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn cache_key_ignores_trace_id() {
        let job = RunJob {
            workload: JobWorkload::Benchmark(Benchmark::Gcc),
            slices: 1,
            banks: 2,
            len: 100,
            seed: 5,
        };
        let traced = Envelope {
            id: Some(1),
            proto: Some(2),
            trace: Some(777),
            req: Request::Job(Job::Run(job.clone())),
        };
        match Envelope::parse(&traced.to_line()).unwrap().req {
            Request::Job(j) => assert_eq!(j.cache_key(), job.cache_key()),
            other => panic!("expected job, got {other:?}"),
        }
    }

    #[test]
    fn control_requests_round_trip() {
        for env in [
            Envelope {
                id: None,
                proto: None,
                trace: None,
                req: Request::Ping,
            },
            Envelope {
                id: Some(0),
                proto: None,
                trace: None,
                req: Request::Stats,
            },
            Envelope {
                id: Some(12),
                proto: Some(2),
                trace: None,
                req: Request::Metrics,
            },
            Envelope {
                id: None,
                proto: None,
                trace: None,
                req: Request::Shutdown,
            },
        ] {
            let back = Envelope::parse(&env.to_line()).unwrap();
            assert_eq!(env, back);
        }
    }

    #[test]
    fn hello_round_trips_and_negotiates() {
        let env = Envelope {
            id: Some(1),
            proto: None,
            trace: None,
            req: Request::Hello {
                proto: PROTO_VERSION,
            },
        };
        // `hello` writes its version into the top-level `proto` field, so
        // the parse reads it back into both places.
        let back = Envelope::parse(&env.to_line()).unwrap();
        assert_eq!(back.proto, Some(PROTO_VERSION));
        assert_eq!(
            back.req,
            Request::Hello {
                proto: PROTO_VERSION
            }
        );
        // A bare hello defaults to the current version.
        let bare = Envelope::parse(r#"{"type":"hello"}"#).unwrap();
        assert_eq!(
            bare.req,
            Request::Hello {
                proto: PROTO_VERSION
            }
        );
    }

    #[test]
    fn proto_support_window() {
        assert!(proto_supported(MIN_PROTO));
        assert!(proto_supported(PROTO_VERSION));
        assert!(!proto_supported(PROTO_VERSION + 1));
        assert!(!proto_supported(0));
        let v1 = Envelope::parse(r#"{"type":"ping"}"#).unwrap();
        assert!(v1.proto_supported(), "missing proto means v1, supported");
        let future = Envelope::parse(r#"{"type":"ping","proto":99}"#).unwrap();
        assert!(!future.proto_supported());
    }

    #[test]
    fn profile_workload_round_trips() {
        let profile = WorkloadProfile::builder("svc")
            .chains(3)
            .mem_frac(0.2)
            .build();
        let env = Envelope {
            id: None,
            proto: None,
            trace: None,
            req: Request::Job(Job::Run(RunJob {
                workload: JobWorkload::Profile(Box::new(profile)),
                slices: 2,
                banks: 2,
                len: 700,
                seed: 9,
            })),
        };
        let back = Envelope::parse(&env.to_line()).unwrap();
        assert_eq!(env, back);
    }

    #[test]
    fn defaults_fill_missing_fields() {
        let env = Envelope::parse(r#"{"type":"run","benchmark":"gcc"}"#).unwrap();
        match env.req {
            Request::Job(Job::Run(job)) => {
                assert_eq!(job.slices, 1);
                assert_eq!(job.banks, 2);
                assert_eq!(job.len, 60_000);
                assert_eq!(job.seed, 0xA5_2014);
            }
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_requests_with_typed_codes() {
        let code = |line: &str| Envelope::parse(line).unwrap_err().code;
        assert_eq!(code("not json"), ErrorCode::BadRequest);
        assert_eq!(code(r#"{"no":"type"}"#), ErrorCode::BadRequest);
        assert_eq!(code(r#"{"type":"explode"}"#), ErrorCode::UnknownRequest);
        assert_eq!(code(r#"{"type":"run"}"#), ErrorCode::BadRequest);
        assert_eq!(
            code(r#"{"type":"run","benchmark":"doom"}"#),
            ErrorCode::BadRequest
        );
        assert_eq!(
            code(r#"{"type":"market","benchmark":"gcc","utility":"x","market":"Market1"}"#),
            ErrorCode::BadRequest
        );
        assert_eq!(
            code(r#"{"type":"ping","proto":"two"}"#),
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn cache_key_ignores_request_id_and_proto() {
        let job = RunJob {
            workload: JobWorkload::Benchmark(Benchmark::Gcc),
            slices: 1,
            banks: 2,
            len: 100,
            seed: 5,
        };
        let a = Envelope {
            id: Some(1),
            proto: Some(1),
            trace: None,
            req: Request::Job(Job::Run(job.clone())),
        };
        let b = Envelope {
            id: Some(99),
            proto: Some(2),
            trace: None,
            req: Request::Job(Job::Run(job.clone())),
        };
        match (
            Envelope::parse(&a.to_line()).unwrap().req,
            Envelope::parse(&b.to_line()).unwrap().req,
        ) {
            (Request::Job(x), Request::Job(y)) => {
                assert_eq!(x.cache_key(), y.cache_key());
                assert_eq!(x.cache_key(), job.cache_key());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn job_cache_keys_are_distinct_across_kinds() {
        let sweep = Job::Sweep(SweepJob {
            benchmark: Benchmark::Gcc,
            len: 100,
            seed: 5,
        });
        let market = Job::Market(MarketJob {
            benchmark: Benchmark::Gcc,
            utility: UtilityFn::Throughput,
            market: Market::MARKET2,
            budget: 100.0,
            len: 100,
            seed: 5,
        });
        let run = Job::Run(RunJob {
            workload: JobWorkload::Benchmark(Benchmark::Gcc),
            slices: 1,
            banks: 2,
            len: 100,
            seed: 5,
        });
        let keys = [sweep.cache_key(), market.cache_key(), run.cache_key()];
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
        assert_ne!(keys[1], keys[2]);
    }

    #[test]
    fn dc_round_trips_and_validates() {
        for mode in [None, Some(BillingMode::Sharing), Some(BillingMode::Fixed)] {
            let env = Envelope {
                id: Some(11),
                proto: None,
                trace: None,
                req: Request::Job(Job::Dc(Box::new(DcJob {
                    scenario: Scenario::example_bursty(),
                    seed: 99,
                    mode,
                }))),
            };
            let back = Envelope::parse(&env.to_line()).unwrap();
            assert_eq!(env, back);
        }
        // A scenario without a name is rejected, as is a bad mode.
        assert!(Envelope::parse(r#"{"type":"dc","scenario":{}}"#).is_err());
        assert!(Envelope::parse(r#"{"type":"dc"}"#).is_err());
        let line = Envelope {
            id: None,
            proto: None,
            trace: None,
            req: Request::Job(Job::Dc(Box::new(DcJob {
                scenario: Scenario::example_bursty(),
                seed: 1,
                mode: None,
            }))),
        }
        .to_line()
        .replace(r#""seed":1"#, r#""seed":1,"mode":"weird""#);
        assert!(Envelope::parse(&line).is_err());
    }

    #[test]
    fn dc_cache_key_distinguishes_seed_and_mode() {
        let base = DcJob {
            scenario: Scenario::example_bursty(),
            seed: 7,
            mode: None,
        };
        let other_seed = DcJob {
            seed: 8,
            ..base.clone()
        };
        let other_mode = DcJob {
            mode: Some(BillingMode::Fixed),
            ..base.clone()
        };
        assert_ne!(base.cache_key(), other_seed.cache_key());
        assert_ne!(base.cache_key(), other_mode.cache_key());
        assert_eq!(base.cache_key(), base.clone().cache_key());
    }

    #[test]
    fn error_line_is_parseable_and_typed() {
        let err = ServerError::new(ErrorCode::QueueFull, "queue full");
        let line = err.to_line(Some(5));
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("id").and_then(Json::as_int), Some(5));
        assert_eq!(v.get("code").and_then(Json::as_str), Some("queue_full"));
        let back = ServerError::from_reply(&v).unwrap();
        assert_eq!(back.code, ErrorCode::QueueFull);

        // Extra fields ride along without disturbing the code.
        let line = err.to_line_with(None, vec![("backpressure", Json::Bool(true))]);
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("backpressure").and_then(Json::as_bool), Some(true));
        assert_eq!(
            ServerError::from_reply(&v).unwrap().code,
            ErrorCode::QueueFull
        );

        // Success replies are not errors.
        let okv = Json::parse(r#"{"ok":true,"type":"pong"}"#).unwrap();
        assert!(ServerError::from_reply(&okv).is_none());
    }

    #[test]
    fn error_codes_round_trip_by_name() {
        for code in ErrorCode::ALL {
            assert_eq!(ErrorCode::parse(code.name()), Some(code));
        }
        assert_eq!(ErrorCode::parse("explode"), None);
    }
}
